//! k-fold cross-validation and grid search (§3.5.3: "Using grid search to
//! tune the hyperparameters … With 5-fold cross-validation, we achieve an
//! F1 score of 0.87").
//!
//! ADASYN is applied **inside** each fold, to the training split only —
//! oversampling before splitting would leak synthetic copies of test
//! samples into training, inflating F1.
//!
//! Folds are independent given the fold assignment, so CV parallelizes
//! per fold ([`cross_validate_sharded`]); each fold's ADASYN draws from
//! its own seed stream split by the stable fold id ([`run_fold`]), so
//! serial and sharded execution produce identical confusions.

use crate::adasyn::{adasyn_sharded, AdasynConfig};
use crate::metrics::Confusion;
use crate::shard;
use crate::svm::{LinearSvm, SparseVec, SvmConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Assign each of `n` samples to one of `k` folds, shuffled by `seed`.
pub fn fold_assignment(n: usize, k: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 2, "need at least two folds");
    assert!(n >= k, "fewer samples than folds");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds = vec![0usize; n];
    for (pos, &i) in idx.iter().enumerate() {
        folds[i] = pos % k;
    }
    folds
}

/// Result of one cross-validated evaluation.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// Pooled confusion matrix across folds.
    pub confusion: Confusion,
    /// Hyperparameters used.
    pub config: SvmConfig,
}

impl CvResult {
    /// Support-weighted F1 (the headline metric).
    pub fn weighted_f1(&self) -> f64 {
        self.confusion.weighted_f1()
    }
}

/// Train on everything outside `fold` (ADASYN on the training split when
/// `oversample` is set) and score the held-out fold.
///
/// The fold's ADASYN seed is split from the base config by the stable
/// fold id — never the thread that runs the fold — so a pool executing
/// folds in any order reproduces the serial confusion exactly.
pub fn run_fold(
    samples: &[(SparseVec, usize)],
    folds: &[usize],
    fold: usize,
    classes: usize,
    svm_cfg: SvmConfig,
    oversample: Option<AdasynConfig>,
) -> Confusion {
    let train: Vec<(SparseVec, usize)> = samples
        .iter()
        .zip(folds)
        .filter(|(_, &f)| f != fold)
        .map(|(s, _)| s.clone())
        .collect();
    let train = match oversample {
        Some(cfg) => {
            let fold_cfg =
                AdasynConfig { seed: shard::stream_seed(cfg.seed, fold as u64), ..cfg };
            adasyn_sharded(&train, classes, fold_cfg, 1)
        }
        None => train,
    };
    let model = LinearSvm::train(&train, classes, svm_cfg);
    let mut confusion = Confusion::new(classes);
    for (s, &f) in samples.iter().zip(folds) {
        if f == fold {
            confusion.add(s.1, model.predict(&s.0));
        }
    }
    confusion
}

/// Evaluate one SVM configuration with k-fold CV; ADASYN applied per-fold
/// when `oversample` is set. Serial; identical to
/// [`cross_validate_sharded`] at any worker count.
pub fn cross_validate(
    samples: &[(SparseVec, usize)],
    classes: usize,
    k: usize,
    svm_cfg: SvmConfig,
    oversample: Option<AdasynConfig>,
    seed: u64,
) -> CvResult {
    cross_validate_sharded(samples, classes, k, svm_cfg, oversample, seed, 1)
}

/// [`cross_validate`] with folds executed on `workers` threads and the
/// per-fold confusions merged in ascending fold order.
#[allow(clippy::too_many_arguments)]
pub fn cross_validate_sharded(
    samples: &[(SparseVec, usize)],
    classes: usize,
    k: usize,
    svm_cfg: SvmConfig,
    oversample: Option<AdasynConfig>,
    seed: u64,
    workers: usize,
) -> CvResult {
    let folds = fold_assignment(samples.len(), k, seed);
    let fold_ids: Vec<usize> = (0..k).collect();
    let per_fold: Vec<Confusion> = shard::map_sharded(&fold_ids, 1, workers, |_, shard| {
        shard
            .iter()
            .map(|&fold| run_fold(samples, &folds, fold, classes, svm_cfg, oversample))
            .collect()
    });
    let mut confusion = Confusion::new(classes);
    for c in &per_fold {
        confusion.merge(c);
    }
    CvResult { confusion, config: svm_cfg }
}

/// Grid search over λ: cross-validate each candidate, return all results
/// sorted by weighted F1 (best first). Candidates run serially; pass
/// `workers` via [`grid_search_sharded`] to fan the (λ, fold) grid out.
pub fn grid_search(
    samples: &[(SparseVec, usize)],
    classes: usize,
    k: usize,
    lambdas: &[f64],
    base: SvmConfig,
    oversample: Option<AdasynConfig>,
    seed: u64,
) -> Vec<CvResult> {
    grid_search_sharded(samples, classes, k, lambdas, base, oversample, seed, 1)
}

/// [`grid_search`] with the flattened (λ, fold) job grid executed on
/// `workers` threads. The fold assignment is shared across candidates
/// (same `seed`), per-fold results merge in fold order per λ, and the
/// final sort is by (F1 desc, candidate index asc) — all independent of
/// scheduling, so output is byte-identical at any worker count.
#[allow(clippy::too_many_arguments)]
pub fn grid_search_sharded(
    samples: &[(SparseVec, usize)],
    classes: usize,
    k: usize,
    lambdas: &[f64],
    base: SvmConfig,
    oversample: Option<AdasynConfig>,
    seed: u64,
    workers: usize,
) -> Vec<CvResult> {
    assert!(!lambdas.is_empty(), "empty grid");
    let folds = fold_assignment(samples.len(), k, seed);
    // Flatten to (candidate, fold) jobs so k-fold parallelism is not
    // capped at k when the grid has several candidates.
    let jobs: Vec<(usize, usize)> = (0..lambdas.len())
        .flat_map(|c| (0..k).map(move |fold| (c, fold)))
        .collect();
    let per_job: Vec<Confusion> = shard::map_sharded(&jobs, 1, workers, |_, shard| {
        shard
            .iter()
            .map(|&(c, fold)| {
                let cfg = SvmConfig { lambda: lambdas[c], ..base };
                run_fold(samples, &folds, fold, classes, cfg, oversample)
            })
            .collect()
    });
    let mut results: Vec<CvResult> = lambdas
        .iter()
        .enumerate()
        .map(|(c, &lambda)| {
            let mut confusion = Confusion::new(classes);
            for fold in 0..k {
                confusion.merge(&per_job[c * k + fold]);
            }
            CvResult { confusion, config: SvmConfig { lambda, ..base } }
        })
        .collect();
    results.sort_by(|a, b| {
        b.weighted_f1()
            .partial_cmp(&a.weighted_f1())
            .expect("finite F1")
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(pairs: &[(u32, f32)]) -> SparseVec {
        pairs.to_vec()
    }

    fn separable(n_per_class: usize) -> Vec<(SparseVec, usize)> {
        let mut s = Vec::new();
        for i in 0..n_per_class {
            let j = (i % 9) as f32 * 0.01;
            s.push((fv(&[(0, 1.0 + j), (1, 0.3)]), 0usize));
            s.push((fv(&[(8, 1.0 + j), (9, 0.3)]), 1usize));
        }
        s
    }

    #[test]
    fn folds_partition_evenly() {
        let f = fold_assignment(100, 5, 1);
        for fold in 0..5 {
            assert_eq!(f.iter().filter(|&&x| x == fold).count(), 20);
        }
    }

    #[test]
    fn folds_deterministic() {
        assert_eq!(fold_assignment(50, 5, 9), fold_assignment(50, 5, 9));
        assert_ne!(fold_assignment(50, 5, 9), fold_assignment(50, 5, 10));
    }

    #[test]
    fn cv_on_separable_data_is_accurate() {
        let s = separable(25);
        let cfg = SvmConfig { dim: 16, lambda: 1e-3, epochs: 20, seed: 2 };
        let r = cross_validate(&s, 2, 5, cfg, None, 3);
        assert!(r.weighted_f1() > 0.95, "F1 {}", r.weighted_f1());
        assert_eq!(r.confusion.total(), s.len() as u64);
    }

    #[test]
    fn grid_search_sorts_best_first() {
        let s = separable(20);
        let base = SvmConfig { dim: 16, epochs: 10, seed: 2, lambda: 0.0 };
        let results = grid_search(&s, 2, 4, &[1e-4, 1e-1, 10.0], base, None, 3);
        assert_eq!(results.len(), 3);
        for w in results.windows(2) {
            assert!(w[0].weighted_f1() >= w[1].weighted_f1());
        }
        // Huge λ over-regularizes; it should not win.
        assert!(results[0].config.lambda < 10.0);
    }

    #[test]
    fn oversampling_runs_inside_cv() {
        // Imbalanced separable data; with ADASYN the minority class must
        // still be recalled well.
        let mut s = separable(30);
        s.truncate(30 + 6); // 30 of class 0/1 interleaved → trim to imbalance
        let cfg = SvmConfig { dim: 16, lambda: 1e-3, epochs: 15, seed: 2 };
        let r = cross_validate(&s, 2, 3, cfg, Some(AdasynConfig::default()), 5);
        assert!(r.weighted_f1() > 0.9, "F1 {}", r.weighted_f1());
    }

    #[test]
    #[should_panic(expected = "folds")]
    fn too_few_samples_panics() {
        fold_assignment(3, 5, 0);
    }

    #[test]
    fn sharded_cv_identical_for_any_worker_count() {
        let s = separable(15);
        let cfg = SvmConfig { dim: 16, lambda: 1e-3, epochs: 8, seed: 2 };
        let over = Some(AdasynConfig::default());
        let serial = cross_validate_sharded(&s, 2, 3, cfg, over, 5, 1);
        for workers in [2, 8] {
            let par = cross_validate_sharded(&s, 2, 3, cfg, over, 5, workers);
            assert_eq!(par.confusion, serial.confusion, "workers={workers}");
        }
    }

    #[test]
    fn sharded_grid_identical_for_any_worker_count() {
        let s = separable(12);
        let base = SvmConfig { dim: 16, epochs: 6, seed: 2, lambda: 0.0 };
        let lambdas = [1e-4, 1e-2];
        let serial = grid_search_sharded(&s, 2, 3, &lambdas, base, None, 3, 1);
        for workers in [2, 8] {
            let par = grid_search_sharded(&s, 2, 3, &lambdas, base, None, 3, workers);
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.confusion, b.confusion, "workers={workers}");
                assert_eq!(a.config.lambda, b.config.lambda, "workers={workers}");
            }
        }
    }
}
