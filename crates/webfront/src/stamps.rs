//! Per-target ETag stamp resolvers for the longitudinal sweep engine.
//!
//! The default [`FrontCache`](crate::cache::FrontCache) folds one
//! whole-world digest into every ETag, which is exactly right for a
//! static world: nothing changes, everything revalidates. Across an
//! *evolving* world (the longitudinal engine re-fronts a grown world
//! each sweep) that digest rotates every epoch and no validator ever
//! survives, so incremental sweeps would degenerate into full
//! re-crawls. The resolvers here map each cacheable route back to the
//! entity it renders and stamp the ETag with that entity's own digest
//! (the `hash_*` family on [`platform::World`]), so a page revalidates
//! to a `304` across sweeps unless *its* entity actually changed.
//!
//! # Soundness
//!
//! Per [`StampResolver`]'s contract, a resolver may over-invalidate
//! freely but must never under-invalidate. Accordingly every route the
//! resolver does not recognize — and every entity lookup that misses —
//! falls back to the whole-world digest taken at construction, which is
//! maximally conservative. Misses additionally render as untagged
//! non-200s, so the fallback stamp never even reaches a client for
//! them. The `longitudinal.oracle` simcheck family enforces the
//! contract end-to-end: a stale byte served off a stale validator makes
//! the composed sweep study diverge from the one-shot study.

use crate::cache::StampResolver;
use httpnet::http::percent_decode;
use ids::ObjectId;
use platform::World;
use std::sync::Arc;

/// Strip the query string off a request target.
fn path_of(target: &str) -> &str {
    target.split('?').next().unwrap_or(target)
}

/// First query parameter named `key`, percent-decoded (mirrors
/// [`httpnet::Request::query`], which the route handlers use).
fn query_of(target: &str, key: &str) -> Option<String> {
    let (_, q) = target.split_once('?')?;
    for pair in q.split('&') {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        if k == key {
            return Some(percent_decode(v));
        }
    }
    None
}

/// Resolver for the Dissenter front: `/user/:username`, `/url/:cuid`,
/// and `/comment/:cid` stamp with the rendered entity's page digest.
pub fn dissenter_stamps(world: Arc<World>) -> StampResolver {
    let fallback = world.content_hash();
    StampResolver::new(move |target, _class| {
        let path = path_of(target);
        if let Some(username) = path.strip_prefix("/user/") {
            if let Some(idx) = world.user_by_username(username) {
                return world.hash_user_page(idx);
            }
        } else if let Some(cuid) = path.strip_prefix("/url/") {
            if let Ok(id) = cuid.parse::<ObjectId>() {
                return world.hash_url_page(id);
            }
        } else if let Some(cid) = path.strip_prefix("/comment/") {
            if let Ok(id) = cid.parse::<ObjectId>() {
                return world.hash_comment_page(id);
            }
        }
        fallback
    })
}

/// Resolver for the Gab API front: account pages stamp with the
/// account digest, follower/following pages with the relationship-list
/// digest (every page of one account's list shares a stamp — a
/// follow or deletion anywhere in the list rotates them all, which is
/// over-inclusive and therefore safe).
pub fn gab_stamps(world: Arc<World>) -> StampResolver {
    let fallback = world.content_hash();
    StampResolver::new(move |target, _class| {
        let path = path_of(target);
        if let Some(rest) = path.strip_prefix("/api/v1/accounts/") {
            let (id, suffix) = match rest.split_once('/') {
                Some((id, suffix)) => (id, Some(suffix)),
                None => (rest, None),
            };
            if let Some(idx) = id.parse::<u64>().ok().and_then(|g| world.gab.user_by_gab_id(g)) {
                return match suffix {
                    None => world.hash_gab_account(idx),
                    Some("followers") | Some("following") => world.hash_gab_relationships(idx),
                    Some(_) => fallback,
                };
            }
        }
        fallback
    })
}

/// Resolver for the Reddit/Pushshift front: both the about page and the
/// comment-history pages stamp with the account's Reddit digest.
pub fn reddit_stamps(world: Arc<World>) -> StampResolver {
    let fallback = world.content_hash();
    StampResolver::new(move |target, _class| {
        let path = path_of(target);
        if let Some(rest) = path.strip_prefix("/user/") {
            if let Some(name) = rest.strip_suffix("/about") {
                return world.hash_reddit(name);
            }
        } else if path == "/pushshift/comments" {
            if let Some(author) = query_of(target, "author") {
                return world.hash_reddit(&author);
            }
        }
        fallback
    })
}

/// Resolver for the rendered-YouTube front: `/render?url=…` stamps with
/// the rendered page-state digest for that URL.
pub fn youtube_stamps(world: Arc<World>) -> StampResolver {
    let fallback = world.content_hash();
    StampResolver::new(move |target, _class| {
        if path_of(target) == "/render" {
            if let Some(url) = query_of(target, "url") {
                return world.hash_youtube(&url);
            }
        }
        fallback
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> Arc<World> {
        let cfg = synth::WorldConfig {
            scale: synth::config::Scale::Custom(0.003),
            ..synth::WorldConfig::small()
        };
        Arc::new(synth::generate(&cfg).0)
    }

    #[test]
    fn unknown_targets_fall_back_to_the_world_digest() {
        let w = tiny_world();
        let fallback = w.content_hash();
        for r in [
            dissenter_stamps(w.clone()),
            gab_stamps(w.clone()),
            reddit_stamps(w.clone()),
            youtube_stamps(w.clone()),
        ] {
            assert_eq!(r.stamp("/nonsense", "anon"), fallback);
            assert_eq!(r.stamp("/discussion/begin?url=x", "anon"), fallback);
        }
    }

    #[test]
    fn each_route_resolves_to_its_entity_digest() {
        let w = tiny_world();
        let fallback = w.content_hash();
        let (idx, user) = w
            .users
            .iter()
            .enumerate()
            .find(|(_, u)| u.author_id.is_some() && !u.gab_deleted)
            .map(|(i, u)| (i as u32, u))
            .expect("dissenter user");

        let d = dissenter_stamps(w.clone());
        let user_target = format!("/user/{}", user.username);
        assert_eq!(d.stamp(&user_target, "anon"), w.hash_user_page(idx));
        assert_ne!(d.stamp(&user_target, "anon"), fallback);

        let url = &w.dissenter.urls()[0];
        let url_target = format!("/url/{}", url.id);
        assert_eq!(d.stamp(&url_target, "anon"), w.hash_url_page(url.id));

        let comment = &w.dissenter.comments()[0];
        let c_target = format!("/comment/{}", comment.id);
        assert_eq!(d.stamp(&c_target, "anon"), w.hash_comment_page(comment.id));

        let g = gab_stamps(w.clone());
        let acct = format!("/api/v1/accounts/{}", user.gab_id);
        assert_eq!(g.stamp(&acct, "api"), w.hash_gab_account(idx));
        assert_eq!(
            g.stamp(&format!("{acct}/followers?page=1"), "api"),
            w.hash_gab_relationships(idx)
        );
        assert_eq!(
            g.stamp(&format!("{acct}/following"), "api"),
            w.hash_gab_relationships(idx)
        );

        let r = reddit_stamps(w.clone());
        assert_eq!(
            r.stamp(&format!("/user/{}/about", user.username), "api"),
            w.hash_reddit(&user.username)
        );
        assert_eq!(
            r.stamp(&format!("/pushshift/comments?author={}&page=0", user.username), "api"),
            w.hash_reddit(&user.username)
        );

        let yt_url = w.youtube.iter().next().expect("youtube content").0.to_owned();
        let y = youtube_stamps(w.clone());
        assert_eq!(
            y.stamp(&format!("/render?url={}", httpnet::http::percent_encode(&yt_url)), "render"),
            w.hash_youtube(&yt_url)
        );
    }

    #[test]
    fn query_parsing_matches_request_semantics() {
        assert_eq!(path_of("/render?url=a"), "/render");
        assert_eq!(path_of("/plain"), "/plain");
        assert_eq!(query_of("/render?url=a%2Fb&x=1", "url").as_deref(), Some("a/b"));
        assert_eq!(query_of("/render?x=1", "url"), None);
        assert_eq!(query_of("/render", "url"), None);
    }
}
