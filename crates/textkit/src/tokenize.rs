//! Word tokenization.
//!
//! Comments arrive as raw user text: mixed case, punctuation, URLs,
//! @-mentions, repeated letters. The dictionary scorer (§3.5.1) computes
//! `hate-tokens / total-tokens`, so what counts as a token matters; this
//! tokenizer mirrors the common social-media pipeline: lowercase, drop URLs
//! and mentions, split on non-alphanumerics, keep internal apostrophes.

use crate::stem::porter_stem;

/// Split `text` into lowercase word tokens.
///
/// Rules:
/// * `http://…`, `https://…` and bare `www.…` runs are skipped entirely;
/// * `@mention` tokens are skipped (platform artifacts, not speech);
/// * remaining text splits on any char that is not alphanumeric or an
///   apostrophe; leading/trailing apostrophes are trimmed;
/// * purely numeric tokens are kept (the dictionary never matches them but
///   the SVM uses a numeric-count feature).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    for raw in text.split_whitespace() {
        let lower = raw.to_lowercase();
        if lower.starts_with("http://")
            || lower.starts_with("https://")
            || lower.starts_with("www.")
            || lower.starts_with('@')
        {
            continue;
        }
        let mut cur = String::new();
        for c in lower.chars() {
            if c.is_alphanumeric() || c == '\'' {
                cur.push(c);
            } else if !cur.is_empty() {
                push_token(&mut tokens, &mut cur);
            }
        }
        if !cur.is_empty() {
            push_token(&mut tokens, &mut cur);
        }
    }
    tokens
}

fn push_token(tokens: &mut Vec<String>, cur: &mut String) {
    let trimmed = cur.trim_matches('\'');
    if !trimmed.is_empty() {
        tokens.push(trimmed.to_owned());
    }
    cur.clear();
}

/// Tokenize then Porter-stem every token — the §3.5.1 dictionary pipeline.
pub fn tokenize_stemmed(text: &str) -> Vec<String> {
    tokenize(text).iter().map(|t| porter_stem(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_splits() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
    }

    #[test]
    fn urls_are_dropped() {
        let t = tokenize("see https://youtube.com/watch?v=x and www.example.org now");
        assert_eq!(t, vec!["see", "and", "now"]);
    }

    #[test]
    fn mentions_are_dropped() {
        assert_eq!(tokenize("@a hello @shadowknight412"), vec!["hello"]);
    }

    #[test]
    fn apostrophes_kept_internally() {
        assert_eq!(tokenize("don't 'quote'"), vec!["don't", "quote"]);
    }

    #[test]
    fn unicode_words_survive() {
        assert_eq!(tokenize("caf\u{e9} \u{fc}ber"), vec!["caf\u{e9}", "\u{fc}ber"]);
    }

    #[test]
    fn numbers_are_tokens() {
        assert_eq!(tokenize("top 10 list"), vec!["top", "10", "list"]);
    }

    #[test]
    fn empty_and_punct_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ... ???").is_empty());
    }

    #[test]
    fn hyphenated_splits() {
        assert_eq!(tokenize("left-leaning"), vec!["left", "leaning"]);
    }

    #[test]
    fn stemmed_pipeline() {
        assert_eq!(tokenize_stemmed("Running dogs"), vec!["run", "dog"]);
    }
}
