//! Transport bench for the event-driven httpnet server + pooled client
//! (the `BENCH_PR7.json` artifact, produced in CI by
//! `scripts/bench_pr7.sh`). Three phases:
//!
//! 1. **loadgen** — the BENCH_PR5 closed-loop comparison re-run with a
//!    warmup window, so both regimes are measured at steady state
//!    (pool filled, caches primed). Gates: zero failures, cached beats
//!    uncached on throughput *and* p99 (the warmup fixes the cold-fill
//!    skew that made PR5's cached p99 read worse than uncached).
//! 2. **transport** — HTTP/1.1 pipelined load against a trivial echo
//!    handler, measuring the reactor transport itself with render cost
//!    out of the picture. Gate: ≥ 5× the PR5 uncached baseline
//!    (12,506 req/s → 62,530 req/s).
//! 3. **soak** — 10,000 concurrent keep-alive connections. The binary
//!    re-execs itself as `--soak-client` so the client's 10k fds live
//!    in a separate process; the parent (server side) gates its own
//!    peak RSS from `/proc/self/status` against a ceiling. Needs
//!    `ulimit -n` comfortably above the connection count in both
//!    processes (CI uses 20000).
//!
//! ```text
//! transport [--out FILE] [--conns N] [--rounds N] [--rss-ceiling-mb N]
//!           [--threads N] [--batch N] [--batches N] [--scale <f64>] [--seed N]
//! transport --soak-client --addr HOST:PORT --conns N --rounds N   (internal)
//! ```

use bench::loadgen::{run, run_pipelined, LoadConfig, Mode, PipelineConfig};
use httpnet::{Handler, Request, Response, Server, ServerConfig};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use synth::config::Scale;
use synth::WorldConfig;

/// PR5's recorded uncached throughput on the blocking thread-per-request
/// transport; the pipelined transport phase must clear 5× this.
const BASELINE_UNCACHED_REQ_PER_SEC: f64 = 12_506.0;
const TRANSPORT_SPEEDUP_GATE: f64 = 5.0;

fn usage() -> ! {
    eprintln!(
        "usage: transport [--out FILE] [--conns N] [--rounds N] [--rss-ceiling-mb N] \
         [--threads N] [--batch N] [--batches N] [--scale <f64>] [--seed N]\n\
         \x20      transport --soak-client --addr HOST:PORT --conns N --rounds N"
    );
    std::process::exit(2);
}

/// Read a `kB` field (`VmRSS`, `VmHWM`, ...) from `/proc/self/status`.
fn proc_status_kb(field: &str) -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let rest = rest.trim_start_matches(':').trim();
            if let Some(kb) = rest.split_whitespace().next() {
                return kb.parse().unwrap_or(0);
            }
        }
    }
    0
}

fn rss_mb() -> f64 {
    proc_status_kb("VmRSS") as f64 / 1024.0
}

/// Client half of the soak, run in a child process so its `conns` fds
/// don't share the parent's fd table. Opens every connection, then per
/// round writes one request on each connection before reading any
/// response back — so all `conns` connections are simultaneously
/// mid-request on the server — with an idle keep-alive hold between
/// rounds. Exits nonzero on any failure.
fn soak_client(addr: SocketAddr, conns: usize, rounds: usize) -> ! {
    let request = b"GET /soak HTTP/1.1\r\nHost: sim.local\r\n\r\n";
    // Connect from several threads: one-at-a-time, 10k connects against
    // a busy accept loop can take long enough for the earliest-accepted
    // connections to idle into the server's read deadline.
    let connectors = 8usize;
    let streams_mx: std::sync::Mutex<Vec<BufReader<TcpStream>>> =
        std::sync::Mutex::new(Vec::with_capacity(conns));
    std::thread::scope(|scope| {
        for part in 0..connectors {
            let streams_mx = &streams_mx;
            let share = conns / connectors + usize::from(part < conns % connectors);
            scope.spawn(move || {
                let mut local = Vec::with_capacity(share);
                for i in 0..share {
                    let stream = TcpStream::connect(addr)
                        .and_then(|s| {
                            s.set_nodelay(true)?;
                            s.set_read_timeout(Some(Duration::from_secs(60)))?;
                            Ok(s)
                        })
                        .unwrap_or_else(|e| {
                            eprintln!(
                                "soak-client: connect {i} of {share} (part {part}) failed: {e} \
                                 (is `ulimit -n` above the connection count?)"
                            );
                            std::process::exit(1);
                        });
                    // Small buffers: 10k default 8 KiB BufReaders would be
                    // 80 MiB of client-side ballast for ~100-byte responses.
                    local.push(BufReader::with_capacity(512, stream));
                }
                streams_mx.lock().unwrap_or_else(|e| e.into_inner()).extend(local);
            });
        }
    });
    let mut streams = streams_mx.into_inner().unwrap_or_else(|e| e.into_inner());
    eprintln!("soak-client: {} connections established", streams.len());

    let mut served = 0u64;
    for round in 0..rounds {
        for conn in &mut streams {
            if let Err(e) = conn.get_mut().write_all(request) {
                eprintln!("soak-client: write failed in round {round}: {e}");
                std::process::exit(1);
            }
        }
        for conn in &mut streams {
            match httpnet::http::read_response(conn) {
                Ok(resp) if resp.status.is_success() => served += 1,
                other => {
                    eprintln!("soak-client: bad response in round {round}: {other:?}");
                    std::process::exit(1);
                }
            }
        }
        if round + 1 < rounds {
            // Idle hold: every connection stays open and silent, so the
            // server must carry all of them without timing them out.
            std::thread::sleep(Duration::from_secs(2));
        }
    }
    eprintln!("soak-client: ok, {served} responses over {rounds} rounds");
    std::process::exit(0);
}

struct SoakOutcome {
    requests: u64,
    rss_before_mb: f64,
    rss_after_mb: f64,
    rss_peak_mb: f64,
}

/// Server half of the soak: start an echo server sized for `conns`
/// concurrent connections, run the client as a subprocess, and sample
/// this process's RSS around the run.
fn run_soak(conns: usize, rounds: usize) -> Result<SoakOutcome, String> {
    let handler: Arc<dyn Handler> = Arc::new(|_req: &Request| Response::html("ok".to_string()));
    let mut server = Server::start(
        handler,
        ServerConfig {
            workers: 4,
            queue: 1024,
            // Effectively no read deadline: early connections sit idle
            // while the client is still opening the rest, and again
            // during the inter-round hold — this phase soaks memory,
            // not timeout policy.
            read_timeout: Duration::from_secs(300),
            write_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("soak server failed to start: {e}"))?;

    let rss_before_mb = rss_mb();
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let status = std::process::Command::new(exe)
        .arg("--soak-client")
        .arg("--addr")
        .arg(server.addr().to_string())
        .arg("--conns")
        .arg(conns.to_string())
        .arg("--rounds")
        .arg(rounds.to_string())
        .status()
        .map_err(|e| format!("failed to spawn soak client: {e}"))?;
    if !status.success() {
        return Err(format!("soak client exited with {status}"));
    }
    // Let the reactors observe the client's EOFs and release buffers
    // before the post-run sample.
    std::thread::sleep(Duration::from_millis(500));
    let rss_after_mb = rss_mb();
    let rss_peak_mb = proc_status_kb("VmHWM") as f64 / 1024.0;

    let served = server.requests_served();
    let expected = (conns * rounds) as u64;
    server.shutdown();
    if served != expected {
        return Err(format!("soak served {served} requests, expected {expected}"));
    }
    Ok(SoakOutcome { requests: served, rss_before_mb, rss_after_mb, rss_peak_mb })
}

fn summary_json(s: &bench::loadgen::LoadSummary) -> jsonlite::Value {
    jsonlite::Value::object()
        .with("requests", s.requests)
        .with("failures", s.failures)
        .with("wall_ms", s.wall_ms)
        .with("req_per_sec", s.req_per_sec)
        .with("p50_us", s.p50_us)
        .with("p99_us", s.p99_us)
        .with("not_modified", s.not_modified)
}

fn main() {
    let mut out_path = std::path::PathBuf::from("BENCH_PR7.json");
    let mut conns = 10_000usize;
    let mut rounds = 2usize;
    let mut rss_ceiling_mb = 512.0f64;
    let mut scale = 0.002f64;
    let mut seed = 0x5EED_BE7Au64;
    let mut pipe = PipelineConfig::default();
    let mut soak_client_mode = false;
    let mut addr: Option<SocketAddr> = None;

    let mut args = std::env::args().skip(1);
    fn next_arg(args: &mut impl Iterator<Item = String>) -> String {
        args.next().unwrap_or_else(|| usage())
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = next_arg(&mut args).into(),
            "--conns" => conns = next_arg(&mut args).parse_ok("--conns"),
            "--rounds" => rounds = next_arg(&mut args).parse_ok("--rounds"),
            "--rss-ceiling-mb" => {
                rss_ceiling_mb = next_arg(&mut args).parse_ok("--rss-ceiling-mb")
            }
            "--threads" => pipe.threads = next_arg(&mut args).parse_ok("--threads"),
            "--batch" => pipe.batch = next_arg(&mut args).parse_ok("--batch"),
            "--batches" => pipe.batches_per_thread = next_arg(&mut args).parse_ok("--batches"),
            "--scale" => scale = next_arg(&mut args).parse_ok("--scale"),
            "--seed" => seed = next_arg(&mut args).parse_ok("--seed"),
            "--soak-client" => soak_client_mode = true,
            "--addr" => addr = Some(next_arg(&mut args).parse_ok("--addr")),
            _ => usage(),
        }
    }
    if soak_client_mode {
        let addr = addr.unwrap_or_else(|| usage());
        soak_client(addr, conns, rounds);
    }

    // ---- Phase 1: warmed loadgen on the real dissenter front ----------
    let cfg = WorldConfig { seed, scale: Scale::Custom(scale), ..WorldConfig::small() };
    let (world, _) = synth::generate(&cfg);
    let world = Arc::new(world);
    let services = webfront::SimServices::start(world.clone(), crawler::default_server_config())
        .expect("failed to start simulated services");
    let mut names: Vec<String> =
        world.dissenter_users().map(|i| world.user(i).username.clone()).collect();
    names.sort_unstable();
    let targets: Vec<String> = names.iter().take(24).map(|n| format!("/user/{n}")).collect();
    assert!(!targets.is_empty(), "world has no dissenter users; grow --scale");

    // Same shape as the PR5 loadgen run (4×250), so the two artifacts
    // compare like for like; only the warmup is new.
    let load = LoadConfig { warmup_per_thread: 50, ..LoadConfig::default() };
    let front = services.dissenter.addr();
    let uncached = run(front, &targets, &load, Mode::Uncached);
    let cached = run(front, &targets, &load, Mode::Cached);
    let pool_stats = load.pool.stats();
    println!(
        "transport: loadgen uncached {:.0} req/s (p99 {} us) vs cached {:.0} req/s (p99 {} us)",
        uncached.req_per_sec, uncached.p99_us, cached.req_per_sec, cached.p99_us
    );

    // ---- Phase 2: pipelined transport against an echo handler ---------
    let echo: Arc<dyn Handler> = Arc::new(|_req: &Request| Response::html("ok".to_string()));
    let mut echo_server = Server::start(
        echo,
        ServerConfig {
            // Each pipelined worker sends its whole run down one
            // connection; don't let the keep-alive cap cut it short.
            max_requests_per_conn: usize::MAX,
            ..ServerConfig::default()
        },
    )
    .expect("echo server");
    let transport = run_pipelined(echo_server.addr(), "/t", &pipe);
    echo_server.shutdown();
    let transport_speedup = transport.req_per_sec / BASELINE_UNCACHED_REQ_PER_SEC;
    println!(
        "transport: pipelined {:.0} req/s ({:.1}x the {:.0} req/s blocking-transport baseline)",
        transport.req_per_sec, transport_speedup, BASELINE_UNCACHED_REQ_PER_SEC
    );

    // ---- Phase 3: 10k-connection soak ---------------------------------
    let soak = run_soak(conns, rounds);
    match &soak {
        Ok(s) => println!(
            "transport: soak {} conns x {} rounds ok, rss {:.1} -> {:.1} MB (peak {:.1} MB)",
            conns, rounds, s.rss_before_mb, s.rss_after_mb, s.rss_peak_mb
        ),
        Err(e) => eprintln!("transport: soak failed: {e}"),
    }

    let report = jsonlite::Value::object()
        .with("baseline_uncached_req_per_sec", BASELINE_UNCACHED_REQ_PER_SEC)
        .with(
            "loadgen",
            jsonlite::Value::object()
                .with("threads", load.threads)
                .with("requests_per_thread", load.requests_per_thread)
                .with("warmup_per_thread", load.warmup_per_thread)
                .with("targets", targets.len())
                .with("scale", scale)
                .with("uncached", summary_json(&uncached))
                .with("cached", summary_json(&cached))
                .with("speedup", cached.req_per_sec / uncached.req_per_sec.max(1e-9)),
        )
        .with(
            "pool",
            jsonlite::Value::object()
                .with("open", pool_stats.open)
                .with("reuse", pool_stats.reuse)
                .with("evicted", pool_stats.evicted)
                .with("idle", pool_stats.idle),
        )
        .with(
            "transport",
            jsonlite::Value::object()
                .with("threads", pipe.threads)
                .with("batch", pipe.batch)
                .with("batches_per_thread", pipe.batches_per_thread)
                .with("summary", summary_json(&transport))
                .with("speedup_vs_baseline", transport_speedup),
        )
        .with(
            "soak",
            match &soak {
                Ok(s) => jsonlite::Value::object()
                    .with("ok", true)
                    .with("conns", conns)
                    .with("rounds", rounds)
                    .with("requests", s.requests)
                    .with("rss_before_mb", s.rss_before_mb)
                    .with("rss_after_mb", s.rss_after_mb)
                    .with("rss_peak_mb", s.rss_peak_mb)
                    .with("rss_ceiling_mb", rss_ceiling_mb),
                Err(e) => jsonlite::Value::object().with("ok", false).with("error", e.as_str()),
            },
        );
    std::fs::write(&out_path, jsonlite::to_string_pretty(&report))
        .expect("failed to write bench artifact");
    println!("transport: wrote {}", out_path.display());

    // ---- Self-validation ----------------------------------------------
    let mut ok = true;
    let mut fail = |msg: String| {
        eprintln!("transport: FAIL — {msg}");
        ok = false;
    };
    if uncached.failures + cached.failures > 0 {
        fail(format!("{} loadgen requests failed", uncached.failures + cached.failures));
    }
    if cached.req_per_sec <= uncached.req_per_sec {
        fail(format!(
            "cached {:.0} req/s did not beat uncached {:.0} req/s",
            cached.req_per_sec, uncached.req_per_sec
        ));
    }
    // PR5's cold-fill skew put the cached p99 far above uncached; the
    // warmed gate allows 10% scheduler jitter on the tail but no more.
    if cached.p99_us as f64 > uncached.p99_us as f64 * 1.10 {
        fail(format!(
            "cached p99 {} us exceeds uncached p99 {} us despite warmup",
            cached.p99_us, uncached.p99_us
        ));
    }
    if pool_stats.reuse == 0 {
        fail("connection pool recorded zero reuse under keep-alive load".to_string());
    }
    if transport.failures > 0 {
        fail(format!("{} pipelined requests failed", transport.failures));
    }
    if transport_speedup < TRANSPORT_SPEEDUP_GATE {
        fail(format!(
            "pipelined transport {:.0} req/s is only {:.1}x baseline (need {:.0}x)",
            transport.req_per_sec, transport_speedup, TRANSPORT_SPEEDUP_GATE
        ));
    }
    match &soak {
        Ok(s) => {
            if s.rss_peak_mb > rss_ceiling_mb {
                fail(format!(
                    "soak peak RSS {:.1} MB exceeds {:.1} MB ceiling",
                    s.rss_peak_mb, rss_ceiling_mb
                ));
            }
        }
        Err(e) => fail(format!("soak: {e}")),
    }
    if !ok {
        std::process::exit(1);
    }
}

/// Tiny arg-parsing helper: parse or die with the flag name.
trait ParseOk {
    fn parse_ok<T: std::str::FromStr>(&self, name: &str) -> T;
}

impl ParseOk for String {
    fn parse_ok<T: std::str::FromStr>(&self, name: &str) -> T {
        self.parse().unwrap_or_else(|_| {
            eprintln!("transport: invalid value {self:?} for {name}");
            std::process::exit(2);
        })
    }
}
