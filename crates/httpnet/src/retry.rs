//! Retry policy for resilient fetches: exponential backoff with seeded
//! jitter, a total-elapsed cap, status-aware classification of what is
//! worth retrying, and `Retry-After` honoring.
//!
//! This replaces the fixed sleep-and-loop the crawler's §4.3.1
//! re-request path originally used. Jitter is drawn from a per-call
//! seeded generator, so the sleep schedule — like the fault injector on
//! the other side of the wire — is a pure function of configuration.

use crate::http::{Response, Status};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// What a response status means for the retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusClass {
    /// Delivered: hand the response to the caller (2xx, 3xx, and 4xx
    /// other than 429 — a 404 is data to this crawler, not a failure).
    Deliver,
    /// Transient server-side trouble (5xx): retry with backoff.
    Retryable,
    /// Throttled (429): retry after the advertised or computed delay.
    Throttled,
}

/// Classify a status for the retry loop.
pub fn classify_status(status: Status) -> StatusClass {
    match status.0 {
        429 => StatusClass::Throttled,
        s if s >= 500 => StatusClass::Retryable,
        _ => StatusClass::Deliver,
    }
}

/// Parse a `Retry-After` header value. Delta-seconds only (fractional
/// values accepted — the simulated servers use them to keep tests fast);
/// HTTP-dates are not produced by any peer here and yield `None`.
pub fn parse_retry_after(resp: &Response) -> Option<Duration> {
    let secs: f64 = resp.headers.get("retry-after")?.trim().parse().ok()?;
    if secs.is_finite() && secs >= 0.0 {
        Some(Duration::from_secs_f64(secs))
    } else {
        None
    }
}

/// Exponential-backoff retry policy.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Extra attempts after the first (total attempts = `max_retries + 1`).
    pub max_retries: usize,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Growth factor per retry.
    pub multiplier: f64,
    /// Cap on any single backoff sleep (also bounds honored
    /// `Retry-After` values).
    pub max_backoff: Duration,
    /// Total time budget: once exceeded, no further retries are made.
    pub max_elapsed: Duration,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled by a factor
    /// drawn uniformly from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff: Duration::from_millis(20),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(1),
            max_elapsed: Duration::from_secs(30),
            jitter: 0.2,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with no waiting at all — useful in tests that only care
    /// about attempt counts.
    pub fn immediate(max_retries: usize) -> Self {
        Self {
            max_retries,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
            ..Self::default()
        }
    }

    /// Start the jitter stream for one logical fetch.
    pub fn jitter_rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// The backoff before retry number `retry` (0-based), jittered and
    /// capped. `rng` must be the stream from [`Self::jitter_rng`],
    /// advanced once per sleep, so schedules replay exactly per seed.
    pub fn backoff(&self, retry: usize, rng: &mut StdRng) -> Duration {
        let exp = self.base_backoff.as_secs_f64() * self.multiplier.powi(retry as i32);
        let capped = exp.min(self.max_backoff.as_secs_f64());
        let factor = if self.jitter > 0.0 {
            1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0)
        } else {
            1.0
        };
        Duration::from_secs_f64((capped * factor).max(0.0))
    }

    /// The full sleep schedule for a fetch that exhausts every retry —
    /// handy for tests and capacity planning.
    pub fn schedule(&self) -> Vec<Duration> {
        let mut rng = self.jitter_rng();
        (0..self.max_retries).map(|i| self.backoff(i, &mut rng)).collect()
    }

    /// The delay before a retry prompted by `resp`: an advertised
    /// `Retry-After` (capped by `max_backoff`) wins over computed backoff.
    pub fn delay_for_response(
        &self,
        resp: &Response,
        retry: usize,
        rng: &mut StdRng,
    ) -> Duration {
        match parse_retry_after(resp) {
            Some(ra) => ra.min(self.max_backoff),
            None => self.backoff(retry, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Headers;

    fn resp_with_retry_after(value: &str) -> Response {
        let mut r = Response::status(Status::TOO_MANY);
        r.headers.add("Retry-After", value);
        r
    }

    #[test]
    fn classification_matches_crawl_semantics() {
        assert_eq!(classify_status(Status::OK), StatusClass::Deliver);
        assert_eq!(classify_status(Status(302)), StatusClass::Deliver);
        // 404 is a *data point* for the §3.1 probe, never retried.
        assert_eq!(classify_status(Status::NOT_FOUND), StatusClass::Deliver);
        assert_eq!(classify_status(Status(403)), StatusClass::Deliver);
        assert_eq!(classify_status(Status::TOO_MANY), StatusClass::Throttled);
        assert_eq!(classify_status(Status::INTERNAL), StatusClass::Retryable);
        assert_eq!(classify_status(Status(503)), StatusClass::Retryable);
        assert_eq!(classify_status(Status(599)), StatusClass::Retryable);
    }

    #[test]
    fn unjittered_schedule_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_retries: 6,
            base_backoff: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(100),
            jitter: 0.0,
            ..Default::default()
        };
        let ms: Vec<u128> = p.schedule().iter().map(|d| d.as_millis()).collect();
        assert_eq!(ms, vec![10, 20, 40, 80, 100, 100]);
    }

    #[test]
    fn jitter_stays_within_fraction() {
        let p = RetryPolicy {
            max_retries: 200,
            base_backoff: Duration::from_millis(100),
            multiplier: 1.0,
            max_backoff: Duration::from_secs(10),
            jitter: 0.25,
            seed: 11,
            ..Default::default()
        };
        let sched = p.schedule();
        let (lo, hi) = (Duration::from_millis(75), Duration::from_millis(125));
        assert!(sched.iter().all(|d| (lo..=hi).contains(d)));
        // Jitter actually varies the sleeps.
        assert!(sched.iter().any(|d| *d != sched[0]));
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let p = RetryPolicy { jitter: 0.5, seed: 7, max_retries: 50, ..Default::default() };
        assert_eq!(p.schedule(), p.schedule());
        let q = RetryPolicy { seed: 8, ..p };
        assert_ne!(p.schedule(), q.schedule());
    }

    #[test]
    fn retry_after_parses_integer_and_fractional_seconds() {
        assert_eq!(
            parse_retry_after(&resp_with_retry_after("2")),
            Some(Duration::from_secs(2))
        );
        assert_eq!(
            parse_retry_after(&resp_with_retry_after("0.25")),
            Some(Duration::from_millis(250))
        );
        assert_eq!(
            parse_retry_after(&resp_with_retry_after(" 1.5 ")),
            Some(Duration::from_millis(1500))
        );
    }

    #[test]
    fn retry_after_rejects_garbage() {
        for bad in ["soon", "-1", "inf", "NaN", ""] {
            assert_eq!(parse_retry_after(&resp_with_retry_after(bad)), None, "{bad:?}");
        }
        let bare = Response { status: Status::TOO_MANY, headers: Headers::new(), body: Vec::new() };
        assert_eq!(parse_retry_after(&bare), None);
    }

    #[test]
    fn advertised_retry_after_beats_backoff_but_is_capped() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(400),
            jitter: 0.0,
            ..Default::default()
        };
        let mut rng = p.jitter_rng();
        assert_eq!(
            p.delay_for_response(&resp_with_retry_after("0.05"), 0, &mut rng),
            Duration::from_millis(50)
        );
        // A hostile/huge Retry-After cannot stall the crawl beyond the cap.
        assert_eq!(
            p.delay_for_response(&resp_with_retry_after("3600"), 0, &mut rng),
            Duration::from_millis(400)
        );
        // Without the header, fall back to computed backoff.
        let plain = Response::status(Status::INTERNAL);
        assert_eq!(
            p.delay_for_response(&plain, 0, &mut rng),
            Duration::from_millis(10)
        );
    }
}
