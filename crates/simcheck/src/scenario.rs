//! Seed-driven scenario generation.
//!
//! A [`Scenario`] is the complete input of one simulation run: every
//! knob the pipeline exposes, drawn from a single seed so the run is
//! reproducible from eight bytes. The sampler keeps every draw inside
//! the envelope the resilience layer is contracted to ride out without
//! dead letters (see `study_survives_an_adverse_network`): per-fetch
//! fault mass is capped so that `total_fault_prob ^ (retries + 1)` is
//! negligible against the number of logical fetches a scenario issues.

use crawler::CrawlConfig;
use dissenter_core::StudyConfig;
use httpnet::FaultConfig;
use jsonlite::Value;
use std::time::Duration;
use synth::config::Scale;
use synth::WorldConfig;

/// Smallest world scale the shrinker may reach (worlds below this are
/// too degenerate to exercise the pipeline).
pub const MIN_SCALE: f64 = 0.0005;

/// Cap on any single fault probability.
pub const MAX_SINGLE_FAULT: f64 = 0.02;

/// Cap on the summed fault mass. With `retries >= 6` the per-fetch
/// dead-letter chance is at most `0.12^7 ≈ 4e-7`, far below one
/// expected dead letter per scenario.
pub const MAX_TOTAL_FAULT: f64 = 0.12;

/// One complete simulation input.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The master seed this scenario was expanded from.
    pub seed: u64,
    /// World-generation seed.
    pub world_seed: u64,
    /// World scale factor (fraction of paper-scale counts).
    pub scale: f64,
    /// CPU-stage worker threads (synth, scoring, SVM).
    pub workers: usize,
    /// Crawl worker connections per phase.
    pub crawl_workers: usize,
    /// Retry attempts per logical fetch.
    pub retries: usize,
    /// Fault matrix probabilities, in [`FaultConfig`] field order.
    pub drop_prob: f64,
    /// 500 responses.
    pub error_prob: f64,
    /// Truncated bodies.
    pub truncate_prob: f64,
    /// Mid-status-line resets.
    pub reset_prob: f64,
    /// Slow-loris stalls.
    pub stall_prob: f64,
    /// Garbage status lines.
    pub malformed_prob: f64,
    /// 429 + Retry-After.
    pub rate_limit_prob: f64,
    /// 503 + Retry-After.
    pub unavailable_prob: f64,
    /// Fault-injector RNG seed.
    pub fault_seed: u64,
    /// Run the SVM experiment.
    pub svm: bool,
    /// Labeled-corpus size when `svm` is set.
    pub svm_corpus: usize,
    /// Where along the journaled-op axis the crash oracle kills the
    /// durable crawl, as a fraction in `(0, 1]` of the uninterrupted
    /// run's WAL appends. `0.0` disables the `crash.*` family (the
    /// shrinker's off switch, and the default for replays written
    /// before the family existed).
    pub kill_fraction: f64,
    /// Kill with a torn (half-written) final WAL record instead of a
    /// clean cut, exercising tail truncation on recovery.
    pub torn_tail: bool,
    /// Which [`bench::abusegen::Profile`] the `abuse.*` family drives
    /// (index into `Profile::ALL`, reduced modulo its length).
    pub abuse_profile: u8,
    /// Hostile connections per abuse profile. `0` disables the
    /// `abuse.*` family (the shrinker's off switch, and the default for
    /// replays written before the family existed).
    pub abuse_conns: usize,
    /// Evolution epochs past the base study window for the
    /// `longitudinal.*` family. `0` disables the family (the shrinker's
    /// off switch, and the default for replays written before it
    /// existed).
    pub epochs: u32,
    /// Scorer-drift magnitude of the mid-study revision the
    /// longitudinal family deploys (`0.0` = a bit-identical re-deploy).
    pub drift: f64,
    /// [`synth::WorldSource`] batch size the `scale.*` family streams
    /// at. `0` disables the family (the shrinker's off switch, and the
    /// default for replays written before it existed).
    pub stream_batch: usize,
    /// Resident-entry budget in bytes for the `scale.merge`
    /// external-merge leg — kept tiny so every armed run genuinely
    /// spills sorted runs to disk.
    pub spill_budget: usize,
}

/// SplitMix64 step — the scenario sampler's only randomness source.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)`.
fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl Scenario {
    /// Expand a seed into a full scenario.
    pub fn from_seed(seed: u64) -> Self {
        let mut st = seed ^ 0x51AC_CEC0_5EED_0001;
        let world_seed = splitmix(&mut st);
        let scale = 0.0008 + unit(&mut st) * 0.0017;
        let workers = [1, 2, 4, 8][(splitmix(&mut st) % 4) as usize];
        let crawl_workers = [1, 2, 4][(splitmix(&mut st) % 3) as usize];
        let retries = 6 + (splitmix(&mut st) % 5) as usize;

        let mut probs = [0.0f64; 8];
        // One scenario in eight runs on a clean network: the differential
        // then isolates pure sharding effects from fault effects.
        if !splitmix(&mut st).is_multiple_of(8) {
            for p in &mut probs {
                if splitmix(&mut st).is_multiple_of(2) {
                    *p = unit(&mut st) * MAX_SINGLE_FAULT;
                }
            }
        }
        let total: f64 = probs.iter().sum();
        if total > MAX_TOTAL_FAULT {
            for p in &mut probs {
                *p *= MAX_TOTAL_FAULT / total;
            }
        }
        let fault_seed = splitmix(&mut st);
        // Drawn after every pre-existing knob so adding the crash family
        // left all earlier per-seed draws (and committed replays) intact.
        let kill_fraction = 1.0 - unit(&mut st); // (0, 1]: every seed crashes somewhere
        let torn_tail = splitmix(&mut st).is_multiple_of(2);
        // Drawn after torn_tail for the same replay-stability reason.
        let abuse_profile = (splitmix(&mut st) % 5) as u8;
        let abuse_conns = 2 + (splitmix(&mut st) % 3) as usize;
        // Drawn after abuse_conns, again for replay stability. Half the
        // seeds stay at the one-window study (epochs 0: longitudinal
        // family disarmed); armed seeds evolve 1–3 epochs, and half of
        // those deploy a genuinely drifted mid-study scorer revision.
        let epochs = if splitmix(&mut st).is_multiple_of(2) {
            1 + (splitmix(&mut st) % 3) as u32
        } else {
            0
        };
        let drift = if splitmix(&mut st).is_multiple_of(2) {
            0.05 + unit(&mut st) * 0.25
        } else {
            0.0
        };
        // Drawn after drift, once more for replay stability. Half the
        // seeds arm the scale family; armed seeds stream the world at a
        // batch size spanning tiny (every stage crosses many batch
        // boundaries) to large (single-batch stages), and spill with a
        // byte budget small enough that the merge leg always writes
        // sorted runs to disk.
        let stream_batch = if splitmix(&mut st).is_multiple_of(2) {
            [64, 256, 1024, 4096][(splitmix(&mut st) % 4) as usize]
        } else {
            0
        };
        let spill_budget = 256 + (splitmix(&mut st) % 1793) as usize;

        Self {
            seed,
            world_seed,
            scale,
            workers,
            crawl_workers,
            retries,
            drop_prob: probs[0],
            error_prob: probs[1],
            truncate_prob: probs[2],
            reset_prob: probs[3],
            stall_prob: probs[4],
            malformed_prob: probs[5],
            rate_limit_prob: probs[6],
            unavailable_prob: probs[7],
            fault_seed,
            svm: seed.is_multiple_of(4),
            svm_corpus: 300,
            kill_fraction,
            torn_tail,
            abuse_profile,
            abuse_conns,
            epochs,
            drift,
            stream_batch,
            spill_budget,
        }
    }

    /// Summed fault mass.
    pub fn total_fault_prob(&self) -> f64 {
        self.faults().total_fault_prob()
    }

    /// The scenario's fault matrix. Stall and Retry-After durations are
    /// pinned to a few milliseconds so faulted runs stay fast.
    pub fn faults(&self) -> FaultConfig {
        FaultConfig {
            drop_prob: self.drop_prob,
            error_prob: self.error_prob,
            truncate_prob: self.truncate_prob,
            reset_prob: self.reset_prob,
            stall_prob: self.stall_prob,
            malformed_prob: self.malformed_prob,
            rate_limit_prob: self.rate_limit_prob,
            unavailable_prob: self.unavailable_prob,
            stall: Duration::from_millis(5),
            retry_after: Duration::from_millis(5),
            seed: self.fault_seed,
            ..FaultConfig::none()
        }
    }

    fn base_config(&self) -> StudyConfig {
        dissenter_core::Study::builder()
            .world(WorldConfig {
                seed: self.world_seed,
                scale: Scale::Custom(self.scale),
                ..WorldConfig::small()
            })
            // Generous retry budget and an effectively-disabled breaker:
            // scenarios probe correctness under faults, not the degraded
            // coverage modes (the chaos suite owns those).
            .crawl(CrawlConfig {
                workers: self.crawl_workers,
                retries: self.retries,
                backoff: Duration::from_millis(1),
                retry_budget: 100_000,
                breaker_threshold: 1_000_000,
                ..CrawlConfig::default()
            })
            .workers(self.workers)
            .svm_corpus(self.svm_corpus)
            .svm(self.svm)
            .faults(self.faults())
            .build()
            .expect("the sampler envelope only emits valid configs")
    }

    /// The scenario as run: faulted network, sharded workers.
    pub fn config_faulted(&self) -> StudyConfig {
        self.base_config()
    }

    /// The differential control: identical world and SVM settings, but a
    /// clean network and fully serial execution.
    pub fn config_control(&self) -> StudyConfig {
        let mut cfg = self.base_config();
        cfg.faults = FaultConfig::none();
        cfg.workers = 1;
        cfg.crawl.workers = 1;
        cfg
    }

    /// Serialize to JSON. Seeds are written as hex strings: `u64` does
    /// not fit `f64` exactly, and a replay that loses seed bits replays
    /// a different world.
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("seed", format!("{:#x}", self.seed))
            .with("world_seed", format!("{:#x}", self.world_seed))
            .with("scale", self.scale)
            .with("workers", self.workers)
            .with("crawl_workers", self.crawl_workers)
            .with("retries", self.retries)
            .with(
                "faults",
                Value::object()
                    .with("drop", self.drop_prob)
                    .with("error", self.error_prob)
                    .with("truncate", self.truncate_prob)
                    .with("reset", self.reset_prob)
                    .with("stall", self.stall_prob)
                    .with("malformed", self.malformed_prob)
                    .with("rate_limit", self.rate_limit_prob)
                    .with("unavailable", self.unavailable_prob)
                    .with("seed", format!("{:#x}", self.fault_seed)),
            )
            .with("svm", self.svm)
            .with("svm_corpus", self.svm_corpus)
            .with(
                "crash",
                Value::object()
                    .with("kill_fraction", self.kill_fraction)
                    .with("torn_tail", self.torn_tail),
            )
            .with(
                "abuse",
                Value::object()
                    .with("profile", u64::from(self.abuse_profile))
                    .with("conns", self.abuse_conns),
            )
            .with(
                "longitudinal",
                Value::object()
                    .with("epochs", u64::from(self.epochs))
                    .with("drift", self.drift),
            )
            .with(
                "scale_family",
                Value::object()
                    .with("stream_batch", self.stream_batch)
                    .with("spill_budget", self.spill_budget),
            )
    }

    /// Deserialize from JSON written by [`Scenario::to_json`].
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let hex = |key: &str, v: &Value| -> Result<u64, String> {
            let s = v
                .get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("scenario: missing hex field {key:?}"))?;
            u64::from_str_radix(s.trim_start_matches("0x"), 16)
                .map_err(|e| format!("scenario: bad {key:?}: {e}"))
        };
        let num = |key: &str, v: &Value| -> Result<f64, String> {
            v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("scenario: missing {key:?}"))
        };
        let int = |key: &str, v: &Value| -> Result<usize, String> {
            v.get(key)
                .and_then(Value::as_i64)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| format!("scenario: missing {key:?}"))
        };
        let faults = v.get("faults").ok_or("scenario: missing \"faults\"")?;
        Ok(Self {
            seed: hex("seed", v)?,
            world_seed: hex("world_seed", v)?,
            scale: num("scale", v)?,
            workers: int("workers", v)?,
            crawl_workers: int("crawl_workers", v)?,
            retries: int("retries", v)?,
            drop_prob: num("drop", faults)?,
            error_prob: num("error", faults)?,
            truncate_prob: num("truncate", faults)?,
            reset_prob: num("reset", faults)?,
            stall_prob: num("stall", faults)?,
            malformed_prob: num("malformed", faults)?,
            rate_limit_prob: num("rate_limit", faults)?,
            unavailable_prob: num("unavailable", faults)?,
            fault_seed: hex("seed", faults)?,
            svm: v.get("svm").and_then(Value::as_bool).ok_or("scenario: missing \"svm\"")?,
            svm_corpus: int("svm_corpus", v)?,
            // Absent in replays written before the crash family existed:
            // default to "no kill" so their meaning is unchanged.
            kill_fraction: v
                .get("crash")
                .and_then(|c| c.get("kill_fraction"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            torn_tail: v
                .get("crash")
                .and_then(|c| c.get("torn_tail"))
                .and_then(Value::as_bool)
                .unwrap_or(false),
            // Absent in replays written before the abuse family existed:
            // default to disarmed so their meaning is unchanged.
            abuse_profile: v
                .get("abuse")
                .and_then(|a| a.get("profile"))
                .and_then(Value::as_i64)
                .map(|n| (n.rem_euclid(5)) as u8)
                .unwrap_or(0),
            abuse_conns: v
                .get("abuse")
                .and_then(|a| a.get("conns"))
                .and_then(Value::as_i64)
                .and_then(|n| usize::try_from(n).ok())
                .unwrap_or(0),
            // Absent in replays written before the longitudinal family
            // existed: default to disarmed so their meaning is unchanged.
            epochs: v
                .get("longitudinal")
                .and_then(|l| l.get("epochs"))
                .and_then(Value::as_i64)
                .and_then(|n| u32::try_from(n).ok())
                .unwrap_or(0),
            drift: v
                .get("longitudinal")
                .and_then(|l| l.get("drift"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            // Absent in replays written before the scale family existed:
            // default to disarmed so their meaning is unchanged.
            stream_batch: v
                .get("scale_family")
                .and_then(|s| s.get("stream_batch"))
                .and_then(Value::as_i64)
                .and_then(|n| usize::try_from(n).ok())
                .unwrap_or(0),
            spill_budget: v
                .get("scale_family")
                .and_then(|s| s.get("spill_budget"))
                .and_then(Value::as_i64)
                .and_then(|n| usize::try_from(n).ok())
                .unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic() {
        assert_eq!(Scenario::from_seed(17), Scenario::from_seed(17));
        assert_ne!(Scenario::from_seed(17), Scenario::from_seed(18));
    }

    #[test]
    fn sampled_scenarios_stay_inside_the_safety_envelope() {
        for seed in 0..500 {
            let sc = Scenario::from_seed(seed);
            assert!((0.0008..=0.0025).contains(&sc.scale), "seed {seed}: scale {}", sc.scale);
            assert!([1, 2, 4, 8].contains(&sc.workers), "seed {seed}");
            assert!([1, 2, 4].contains(&sc.crawl_workers), "seed {seed}");
            assert!((6..=10).contains(&sc.retries), "seed {seed}");
            for p in [
                sc.drop_prob,
                sc.error_prob,
                sc.truncate_prob,
                sc.reset_prob,
                sc.stall_prob,
                sc.malformed_prob,
                sc.rate_limit_prob,
                sc.unavailable_prob,
            ] {
                assert!((0.0..=MAX_SINGLE_FAULT).contains(&p), "seed {seed}: prob {p}");
            }
            assert!(sc.total_fault_prob() <= MAX_TOTAL_FAULT + 1e-12, "seed {seed}");
            assert!(sc.abuse_profile < 5, "seed {seed}");
            assert!((2..=4).contains(&sc.abuse_conns), "seed {seed}");
            assert!(sc.epochs <= 3, "seed {seed}: epochs {}", sc.epochs);
            assert!(
                sc.drift == 0.0 || (0.05..=0.30).contains(&sc.drift),
                "seed {seed}: drift {}",
                sc.drift
            );
            assert!(
                [0, 64, 256, 1024, 4096].contains(&sc.stream_batch),
                "seed {seed}: stream_batch {}",
                sc.stream_batch
            );
            assert!(
                (256..=2048).contains(&sc.spill_budget),
                "seed {seed}: spill_budget {}",
                sc.spill_budget
            );
            sc.faults().validate();
        }
    }

    #[test]
    fn fault_classes_and_shapes_all_get_exercised_across_seeds() {
        // Sanity on sampler coverage: across a modest seed range every
        // fault class fires somewhere and every worker shape appears.
        let scenarios: Vec<Scenario> = (0..200).map(Scenario::from_seed).collect();
        assert!(scenarios.iter().any(|s| s.drop_prob > 0.0));
        assert!(scenarios.iter().any(|s| s.malformed_prob > 0.0));
        assert!(scenarios.iter().any(|s| s.rate_limit_prob > 0.0));
        assert!(scenarios.iter().any(|s| s.total_fault_prob() == 0.0), "clean scenarios exist");
        for w in [1, 2, 4, 8] {
            assert!(scenarios.iter().any(|s| s.workers == w), "workers={w} never sampled");
        }
        assert!(scenarios.iter().any(|s| s.svm) && scenarios.iter().any(|s| !s.svm));
        for profile in 0..5u8 {
            assert!(
                scenarios.iter().any(|s| s.abuse_profile == profile),
                "abuse profile {profile} never sampled"
            );
        }
        // The longitudinal family: disarmed, armed-driftless, and
        // armed-with-drift scenarios must all occur.
        assert!(scenarios.iter().any(|s| s.epochs == 0), "disarmed studies exist");
        for epochs in 1..=3u32 {
            assert!(
                scenarios.iter().any(|s| s.epochs == epochs),
                "epochs={epochs} never sampled"
            );
        }
        assert!(scenarios.iter().any(|s| s.epochs > 0 && s.drift == 0.0));
        assert!(scenarios.iter().any(|s| s.epochs > 0 && s.drift > 0.0));
        // The scale family: disarmed seeds exist, and every armed batch
        // size is reached somewhere.
        assert!(scenarios.iter().any(|s| s.stream_batch == 0), "disarmed scale scenarios exist");
        for batch in [64, 256, 1024, 4096] {
            assert!(
                scenarios.iter().any(|s| s.stream_batch == batch),
                "stream_batch={batch} never sampled"
            );
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        for seed in [0, 1, 42, u64::MAX] {
            let sc = Scenario::from_seed(seed);
            let text = jsonlite::to_string_pretty(&sc.to_json());
            let back = Scenario::from_json(&jsonlite::parse(&text).expect("parses"))
                .expect("deserializes");
            // Bit-exact: f64 Display round-trips exactly and seeds travel
            // as hex strings.
            assert_eq!(back, sc, "seed {seed}");
        }
    }

    #[test]
    fn from_json_reports_missing_fields() {
        let v = jsonlite::parse(r#"{"seed":"0x1"}"#).unwrap();
        let err = Scenario::from_json(&v).unwrap_err();
        assert!(err.contains("faults"), "{err}");
        let v = jsonlite::parse(r#"{"seed":"0x1","faults":{}}"#).unwrap();
        let err = Scenario::from_json(&v).unwrap_err();
        assert!(err.contains("world_seed"), "{err}");
    }

    #[test]
    fn control_config_is_clean_and_serial() {
        let sc = Scenario::from_seed(9);
        let c = sc.config_control();
        assert_eq!(c.faults.total_fault_prob(), 0.0);
        assert_eq!(c.workers, 1);
        assert_eq!(c.crawl.workers, 1);
        // The world is the same one the faulted config runs.
        let f = sc.config_faulted();
        assert_eq!(c.world.seed, f.world.seed);
        assert_eq!(c.world.scale.factor(), f.world.scale.factor());
        assert_eq!(c.skip_svm, f.skip_svm);
    }
}
