//! Crawl resilience: per-endpoint circuit breakers, per-phase retry
//! budgets, and dead-letter accounting.
//!
//! The paper's §4.3.1 hygiene ("we monitor request timeouts and
//! re-request missed pages") is the *mechanism*; this module adds the
//! *policy* around it so one pathological endpoint cannot stall
//! [`Crawler::full_crawl`](crate::Crawler::full_crawl):
//!
//! * every phase issues its HTTP through [`PhaseRun::fetch`], one call
//!   per **logical fetch** (a page the crawl wants, however many wire
//!   attempts that takes);
//! * retries follow the seeded [`httpnet::RetryPolicy`] schedule, honor
//!   `Retry-After` / `X-RateLimit-Reset`, and draw from a shared
//!   per-phase [retry budget](crate::CrawlConfig::retry_budget) — when
//!   the budget is dry, fetches get a single attempt;
//! * each of the four services has a [`CircuitBreaker`]: enough
//!   *consecutive* exhausted fetches open it, subsequent fetches
//!   fast-fail to the dead-letter list, and after a cooldown a single
//!   half-open probe decides whether to close it again;
//! * every logical fetch ends in **exactly one** of
//!   `succeeded`/`dead_lettered`, so per-phase coverage accounting
//!   (`attempted = succeeded + dead_lettered`) tells every §4 analysis
//!   what fraction of the world the crawl actually saw.

use crate::store::{CrawlStore, DeadLetter};
use crate::Crawler;
use httpnet::{
    classify_status, parse_retry_after_detailed, Client, Response, RetryPolicy, StatusClass,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// The crawl phases, in pipeline order. Indexes [`crate::store::CrawlStats::phases`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Gab ID enumeration (§3.1).
    GabEnum,
    /// Dissenter account probing by response size (§3.1).
    Probe,
    /// Home-page and comment spidering (§3.2).
    Spider,
    /// Shadow-label validation (§4.3.1).
    Shadow,
    /// YouTube content crawl (§3.3).
    Youtube,
    /// Gab follower/following crawl (§3.4).
    Social,
    /// Reddit matching and Pushshift pulls (§4.4.1).
    Reddit,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 7] = [
        Phase::GabEnum,
        Phase::Probe,
        Phase::Spider,
        Phase::Shadow,
        Phase::Youtube,
        Phase::Social,
        Phase::Reddit,
    ];

    /// Stable index into per-phase stat arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable name (used in dead-letter records and reports).
    pub fn name(self) -> &'static str {
        match self {
            Phase::GabEnum => "gab_enum",
            Phase::Probe => "probe",
            Phase::Spider => "spider",
            Phase::Shadow => "shadow",
            Phase::Youtube => "youtube",
            Phase::Social => "social",
            Phase::Reddit => "reddit",
        }
    }

    /// The service this phase talks to (breakers are per-endpoint: the
    /// probe, spider, and shadow phases share the Dissenter breaker, and
    /// enumeration shares Gab's with the social crawl).
    pub fn service(self) -> Service {
        match self {
            Phase::GabEnum | Phase::Social => Service::Gab,
            Phase::Probe | Phase::Spider | Phase::Shadow => Service::Dissenter,
            Phase::Youtube => Service::Youtube,
            Phase::Reddit => Service::Reddit,
        }
    }
}

/// The four simulated services (one circuit breaker each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Service {
    /// dissenter.com.
    Dissenter,
    /// gab.com.
    Gab,
    /// reddit.com / Pushshift.
    Reddit,
    /// Rendered YouTube.
    Youtube,
}

impl Service {
    /// Stable name, used as the endpoint class in metric names
    /// (`http.<name>.latency`, `breaker.<name>.to_open`).
    pub fn name(self) -> &'static str {
        match self {
            Service::Dissenter => "dissenter",
            Service::Gab => "gab",
            Service::Reddit => "reddit",
            Service::Youtube => "youtube",
        }
    }
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Healthy: counting consecutive exhausted fetches.
    Closed { consecutive_failures: usize },
    /// Tripped: fetches fast-fail until the cooldown instant.
    Open { until: Instant },
    /// Cooldown expired: exactly one probe fetch is in flight.
    HalfOpen,
}

/// A per-endpoint circuit breaker: closed → (N consecutive failures) →
/// open → (cooldown) → half-open probe → closed on success / open on
/// failure.
///
/// "Failure" here is a *logical fetch that exhausted its retries* — a
/// dead-letter-level event, not a single wire error (which the retry
/// loop absorbs) and never a 429 (a throttling peer is alive and
/// cooperating, not down). Thresholds live in
/// [`crate::CrawlConfig`] and are passed per call so one breaker can
/// outlive config tweaks between phases.
#[derive(Debug, Default)]
pub struct CircuitBreaker {
    state: Mutex<Option<BreakerState>>,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut BreakerState) -> R) -> R {
        let mut guard = self.state.lock();
        let state = guard.get_or_insert(BreakerState::Closed { consecutive_failures: 0 });
        f(state)
    }

    /// May a fetch proceed? While open, returns `false` until the
    /// cooldown expires; the first call after expiry transitions to
    /// half-open and admits that one caller as the probe (subsequent
    /// calls stay rejected until the probe reports back).
    pub fn allow(&self) -> bool {
        self.with_state(|state| match *state {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { until } => {
                if Instant::now() >= until {
                    *state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => false,
        })
    }

    /// A logical fetch succeeded: close (from any state) and reset the
    /// failure count.
    pub fn record_success(&self) {
        self.with_state(|state| *state = BreakerState::Closed { consecutive_failures: 0 });
    }

    /// A logical fetch exhausted its retries. In half-open this re-opens
    /// immediately (the probe failed); when closed, `threshold`
    /// consecutive failures open the breaker for `cooldown`.
    pub fn record_failure(&self, threshold: usize, cooldown: Duration) {
        self.with_state(|state| match *state {
            BreakerState::Closed { consecutive_failures } => {
                let n = consecutive_failures + 1;
                *state = if n >= threshold.max(1) {
                    BreakerState::Open { until: Instant::now() + cooldown }
                } else {
                    BreakerState::Closed { consecutive_failures: n }
                };
            }
            BreakerState::HalfOpen | BreakerState::Open { .. } => {
                *state = BreakerState::Open { until: Instant::now() + cooldown };
            }
        })
    }

    /// The state name, for tests and debug output.
    pub fn state_name(&self) -> &'static str {
        self.with_state(|state| match state {
            BreakerState::Closed { .. } => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// One circuit breaker per service, shared across all phases of a crawl
/// (the probe and spider phases hammer the same Dissenter endpoint; a
/// breaker that resets between them would forget an outage in progress).
#[derive(Debug, Default)]
pub struct Breakers {
    dissenter: CircuitBreaker,
    gab: CircuitBreaker,
    reddit: CircuitBreaker,
    youtube: CircuitBreaker,
}

impl Breakers {
    /// The breaker guarding `service`.
    pub fn get(&self, service: Service) -> &CircuitBreaker {
        match service {
            Service::Dissenter => &self.dissenter,
            Service::Gab => &self.gab,
            Service::Reddit => &self.reddit,
            Service::Youtube => &self.youtube,
        }
    }
}

/// Extra attempts granted to 429-throttled fetches beyond
/// `CrawlConfig::retries` — throttling is the peer cooperating, not
/// failing, so it gets more patience (mirroring the paper's
/// sleep-until-reset loop) but still a bound, for liveness against a
/// server that 429s forever.
const THROTTLE_GRACE: usize = 8;

/// Shared context for one phase of the crawl: the phase identity, the
/// breaker for its endpoint, and the phase-wide retry budget all worker
/// threads draw from.
#[derive(Debug)]
pub struct PhaseRun<'a> {
    crawler: &'a Crawler,
    phase: Phase,
    budget: AtomicUsize,
    metrics: PhaseCounters,
}

/// Pre-resolved counter handles for one phase (`crawl.<phase>.*` in the
/// crawler's registry). Handles are grabbed once here so the per-fetch
/// hot path never takes the registry lock. These mirror
/// [`crate::store::PhaseStats`] — same events, same invariant
/// (`attempted == succeeded + dead_lettered`) — exported where the rest
/// of the run's observability lives.
#[derive(Debug)]
struct PhaseCounters {
    attempted: obs::Counter,
    succeeded: obs::Counter,
    retried: obs::Counter,
    dead_lettered: obs::Counter,
    throttle_sleeps: obs::Counter,
    retry_after_clamped: obs::Counter,
}

impl PhaseCounters {
    fn new(registry: &obs::Registry, phase: Phase) -> Self {
        let name = |suffix: &str| format!("crawl.{}.{suffix}", phase.name());
        Self {
            attempted: registry.counter(&name("attempted")),
            succeeded: registry.counter(&name("succeeded")),
            retried: registry.counter(&name("retried")),
            dead_lettered: registry.counter(&name("dead_lettered")),
            throttle_sleeps: registry.counter(&name("throttle_sleeps")),
            retry_after_clamped: registry.counter(&name("retry_after_clamped")),
        }
    }
}

/// Is a named simulation-testing mutation active? `simcheck`'s mutation
/// smoke test sets `SIMCHECK_MUTATE` to deliberately miscount and prove
/// the accounting oracles catch it. Read once: the crawl hot path must
/// not re-query the environment per fetch.
pub(crate) fn mutation(name: &str) -> bool {
    static ACTIVE: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    ACTIVE.get_or_init(|| std::env::var("SIMCHECK_MUTATE").ok()).as_deref() == Some(name)
}

impl<'a> PhaseRun<'a> {
    /// Start a phase (budget charged from
    /// [`retry_budget`](crate::CrawlConfig::retry_budget)).
    pub fn new(crawler: &'a Crawler, phase: Phase) -> Self {
        Self {
            crawler,
            phase,
            budget: AtomicUsize::new(crawler.config.retry_budget),
            metrics: PhaseCounters::new(&crawler.metrics, phase),
        }
    }

    /// Configure a fresh worker client for this phase: the crawl
    /// timeout, request instrumentation under this phase's service name
    /// (`http.<service>.*` in the crawler's registry), and — when
    /// incremental re-crawl is on — the crawl-wide revalidation cache.
    pub fn setup_client(&self, client: &mut Client) {
        client.timeout(self.crawler.config.timeout);
        client.instrument(&self.crawler.metrics, self.phase.service().name());
        if let Some(reval) = self.crawler.revalidation_cache() {
            client.set_revalidation_cache(reval.clone());
        }
    }

    /// The phase this run accounts to.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Retry budget left for this phase.
    pub fn budget_remaining(&self) -> usize {
        self.budget.load(Ordering::Relaxed)
    }

    /// Try to spend one retry from the phase budget.
    fn take_retry(&self) -> bool {
        self.budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_ok()
    }

    /// One **logical fetch**: issue `target`, retrying per the
    /// configured policy, honoring throttle advice, consulting the
    /// endpoint's circuit breaker, and recording exactly one of
    /// `succeeded` / `dead_lettered` (plus a [`DeadLetter`] record) for
    /// this phase. Returns the delivered response, or `None` when the
    /// fetch was dead-lettered.
    ///
    /// Non-2xx statuses other than 429/5xx are *delivered*, not
    /// retried — a 404 is a data point to this crawler (§3.1).
    pub fn fetch(&self, client: &mut Client, store: &CrawlStore, target: &str) -> Option<Response> {
        let cfg = &self.crawler.config;
        let stats = store.stats.phase(self.phase);
        stats.add_attempted();
        self.metrics.attempted.inc();

        let breaker = self.crawler.breakers.get(self.phase.service());
        if !self.observe_breaker(breaker, || breaker.allow()) {
            stats.add_dead_lettered();
            self.metrics.dead_lettered.inc();
            store.stats.add_failure();
            store.push_dead_letter(DeadLetter {
                phase: self.phase,
                target: target.to_owned(),
                cause: "circuit open".to_owned(),
            });
            return None;
        }

        let policy = RetryPolicy {
            max_retries: cfg.retries,
            base_backoff: cfg.backoff,
            ..RetryPolicy::default()
        };
        let mut rng = policy.jitter_rng();
        let started = Instant::now();
        let mut failures = 0usize; // wire errors + retryable statuses
        let mut throttles = 0usize; // 429s
        loop {
            store.stats.add_requests(1);
            let (cause, wait) = match client.get_keep_alive(target) {
                Ok(resp) => match classify_status(resp.status) {
                    StatusClass::Deliver => {
                        self.observe_breaker(breaker, || breaker.record_success());
                        stats.add_succeeded();
                        if !mutation("skip_succeeded_counter") {
                            self.metrics.succeeded.inc();
                        }
                        return Some(resp);
                    }
                    StatusClass::Throttled => {
                        throttles += 1;
                        if throttles > cfg.retries + THROTTLE_GRACE {
                            return self.dead_letter(store, breaker, target, "throttled beyond grace (429)");
                        }
                        store.stats.add_rate_limit_sleep();
                        self.metrics.throttle_sleeps.inc();
                        let now = match self.crawler.clock() {
                            Some(clock) => clock.now(),
                            None => wall_secs(),
                        };
                        let (wait, clamped) =
                            throttle_delay(&resp, &policy, throttles - 1, &mut rng, now);
                        if clamped {
                            self.metrics.retry_after_clamped.inc();
                        }
                        match self.crawler.clock() {
                            // Simulated time: advance past the advertised
                            // reset instead of sleeping. The wait is in
                            // simulated seconds (the front's limiter reads
                            // the same clock), so sleeping it out on the
                            // wall would be both slow and meaningless.
                            Some(clock) => clock.advance(wait.as_secs().max(1)),
                            None => std::thread::sleep(wait),
                        }
                        continue;
                    }
                    StatusClass::Retryable => {
                        let wait = policy.delay_for_response(&resp, failures, &mut rng);
                        (format!("http status {}", resp.status), wait)
                    }
                },
                Err(e) => {
                    let wait = policy.backoff(failures, &mut rng);
                    (e.to_string(), wait)
                }
            };
            failures += 1;
            if failures > cfg.retries || started.elapsed() > policy.max_elapsed {
                return self.dead_letter(store, breaker, target, &cause);
            }
            if !self.take_retry() {
                return self.dead_letter(store, breaker, target, "retry budget exhausted");
            }
            store.stats.add_retry();
            stats.add_retried();
            self.metrics.retried.inc();
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
        }
    }

    fn dead_letter(
        &self,
        store: &CrawlStore,
        breaker: &CircuitBreaker,
        target: &str,
        cause: &str,
    ) -> Option<Response> {
        let cfg = &self.crawler.config;
        self.observe_breaker(breaker, || {
            breaker.record_failure(cfg.breaker_threshold, cfg.breaker_cooldown)
        });
        store.stats.phase(self.phase).add_dead_lettered();
        self.metrics.dead_lettered.inc();
        store.stats.add_failure();
        store.push_dead_letter(DeadLetter {
            phase: self.phase,
            target: target.to_owned(),
            cause: cause.to_owned(),
        });
        None
    }

    /// Run a breaker operation and, when it changed the breaker's state,
    /// export the transition: a `breaker.<service>.to_<state>` counter
    /// bump plus a structured `breaker` event in the trace log.
    fn observe_breaker<R>(&self, breaker: &CircuitBreaker, op: impl FnOnce() -> R) -> R {
        let before = breaker.state_name();
        let out = op();
        let after = breaker.state_name();
        if before != after {
            let service = self.phase.service().name();
            self.crawler
                .metrics
                .inc(&format!("breaker.{service}.to_{}", after.replace('-', "_")));
            self.crawler.metrics.event(
                "breaker",
                &[("service", service), ("from", before), ("to", after)],
            );
        }
        out
    }
}

/// Ceiling on one sleep-until-reset wait. A peer advertising a reset
/// further out than this is treated as absurd advice and clamped
/// (surfaced via `retry_after_clamped`), so a hostile server cannot
/// park a worker indefinitely.
const MAX_RESET_WAIT: Duration = Duration::from_secs(120);

/// Wall-clock epoch seconds (the `now` used when no simulated clock is
/// attached to the crawler).
fn wall_secs() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

/// How long to wait out a 429, plus whether the peer's advice was
/// absurd enough to be clamped (surfaced as the phase's
/// `retry_after_clamped` counter). Preference order: the `Retry-After`
/// header (delta-seconds or HTTP-date, capped by the policy's
/// `max_backoff`), then `X-RateLimit-Reset` (absolute seconds on the
/// caller's clock, the Gab/Dissenter convention — waited out **in
/// full**, exactly like the paper's sleep-until-reset loop), then the
/// computed backoff. `now` is the current instant *on whichever clock
/// the server's reset refers to*: wall seconds normally, the shared
/// [`platform::SimClock`] under a longitudinal sweep.
///
/// Waiting to the advertised reset, rather than probing in short
/// slices, is what keeps a fetch's *outcome* independent of where in
/// the peer's rate window it starts: a crawl resumed right after a
/// crash inherits a window its dead predecessor already spent, and a
/// sliced wait would burn through the throttle grace before the
/// window turns over, dead-lettering fetches an uninterrupted crawl
/// delivers.
fn throttle_delay(
    resp: &Response,
    policy: &RetryPolicy,
    throttle_no: usize,
    rng: &mut rand::rngs::StdRng,
    now: u64,
) -> (Duration, bool) {
    if let Some(ra) = parse_retry_after_detailed(resp) {
        return (ra.delay.min(policy.max_backoff), ra.clamped);
    }
    if let Some(reset) = resp.headers.get("x-ratelimit-reset").and_then(|v| v.parse::<u64>().ok()) {
        // +1 covers sub-second truncation on both clocks: waiting to
        // the reset's second boundary can still land inside the old
        // window.
        let wait = Duration::from_secs(reset.saturating_sub(now).max(1) + 1);
        return (wait.min(MAX_RESET_WAIT), wait > MAX_RESET_WAIT);
    }
    (policy.backoff(throttle_no, rng), false)
}

#[cfg(test)]
mod tests {
    use super::*;

    const COOL: Duration = Duration::from_millis(30);

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let b = CircuitBreaker::new();
        assert_eq!(b.state_name(), "closed");
        // Two failures at threshold 3 keep it closed.
        b.record_failure(3, COOL);
        b.record_failure(3, COOL);
        assert_eq!(b.state_name(), "closed");
        assert!(b.allow());
        // Third consecutive failure opens it: fetches fast-fail.
        b.record_failure(3, COOL);
        assert_eq!(b.state_name(), "open");
        assert!(!b.allow());
        // Cooldown expires: exactly one half-open probe is admitted.
        std::thread::sleep(COOL + Duration::from_millis(10));
        assert!(b.allow());
        assert_eq!(b.state_name(), "half-open");
        assert!(!b.allow(), "only one probe until it reports back");
        // The probe succeeds: closed again, failure count reset.
        b.record_success();
        assert_eq!(b.state_name(), "closed");
        b.record_failure(3, COOL);
        b.record_failure(3, COOL);
        assert_eq!(b.state_name(), "closed", "count restarted after close");
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new();
        b.record_failure(1, COOL);
        assert_eq!(b.state_name(), "open");
        std::thread::sleep(COOL + Duration::from_millis(10));
        assert!(b.allow());
        b.record_failure(1, COOL);
        assert_eq!(b.state_name(), "open");
        assert!(!b.allow(), "a failed probe restarts the cooldown");
    }

    #[test]
    fn success_resets_consecutive_count() {
        let b = CircuitBreaker::new();
        for _ in 0..50 {
            b.record_failure(3, COOL);
            b.record_failure(3, COOL);
            b.record_success();
        }
        assert_eq!(b.state_name(), "closed", "non-consecutive failures never open");
    }

    #[test]
    fn phase_service_mapping_is_total() {
        for p in Phase::ALL {
            // Just exercise the mapping and names — a new phase that
            // forgets either will fail to compile or panic here.
            let _ = p.service();
            assert!(!p.name().is_empty());
            assert_eq!(Phase::ALL[p.index()], p);
        }
    }
}
