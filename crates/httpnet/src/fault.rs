//! Deterministic fault injection for the server.
//!
//! Mirrors the fault-injection philosophy of the smoltcp examples
//! (`--drop-chance` etc.): adverse network conditions are a first-class
//! test input. The crawler's §4.3.1 validation ("we monitor request
//! timeouts and re-request missed pages") is tested against these faults.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Fault-injection configuration. All probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability of closing the connection without responding (the
    /// client observes EOF / reset).
    pub drop_prob: f64,
    /// Probability of replying `500 Internal Server Error`.
    pub error_prob: f64,
    /// Fixed extra latency added to every response.
    pub base_latency: Duration,
    /// Additional uniform random latency in `[0, jitter]`.
    pub jitter: Duration,
    /// RNG seed (faults are reproducible run-to-run).
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            drop_prob: 0.0,
            error_prob: 0.0,
            base_latency: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Validate ranges.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.drop_prob), "drop_prob out of range");
        assert!((0.0..=1.0).contains(&self.error_prob), "error_prob out of range");
    }
}

/// Per-request fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Respond normally (after `delay`).
    Proceed(Duration),
    /// Close the connection without responding (after `delay`).
    Drop(Duration),
    /// Respond 500 (after `delay`).
    Error(Duration),
}

/// Stateful fault injector (thread-safe).
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: Mutex<StdRng>,
}

impl FaultInjector {
    /// Build from config.
    pub fn new(config: FaultConfig) -> Self {
        config.validate();
        Self { config, rng: Mutex::new(StdRng::seed_from_u64(config.seed)) }
    }

    /// Decide the fate of the next request.
    pub fn decide(&self) -> FaultAction {
        let mut rng = self.rng.lock();
        let jitter_nanos = if self.config.jitter.is_zero() {
            0
        } else {
            rng.gen_range(0..=self.config.jitter.as_nanos() as u64)
        };
        let delay = self.config.base_latency + Duration::from_nanos(jitter_nanos);
        let roll: f64 = rng.gen();
        if roll < self.config.drop_prob {
            FaultAction::Drop(delay)
        } else if roll < self.config.drop_prob + self.config.error_prob {
            FaultAction::Error(delay)
        } else {
            FaultAction::Proceed(delay)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_always_proceeds() {
        let f = FaultInjector::new(FaultConfig::none());
        for _ in 0..100 {
            assert_eq!(f.decide(), FaultAction::Proceed(Duration::ZERO));
        }
    }

    #[test]
    fn drop_rate_approximates_config() {
        let f = FaultInjector::new(FaultConfig { drop_prob: 0.3, ..Default::default() });
        let drops = (0..10_000)
            .filter(|_| matches!(f.decide(), FaultAction::Drop(_)))
            .count();
        assert!((2_500..3_500).contains(&drops), "{drops}");
    }

    #[test]
    fn error_and_drop_are_disjoint() {
        let f = FaultInjector::new(FaultConfig {
            drop_prob: 0.5,
            error_prob: 0.5,
            ..Default::default()
        });
        for _ in 0..1000 {
            assert!(!matches!(f.decide(), FaultAction::Proceed(_)));
        }
    }

    #[test]
    fn latency_within_bounds() {
        let f = FaultInjector::new(FaultConfig {
            base_latency: Duration::from_millis(5),
            jitter: Duration::from_millis(10),
            ..Default::default()
        });
        for _ in 0..100 {
            match f.decide() {
                FaultAction::Proceed(d) | FaultAction::Drop(d) | FaultAction::Error(d) => {
                    assert!(d >= Duration::from_millis(5) && d <= Duration::from_millis(15));
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = FaultInjector::new(FaultConfig { drop_prob: 0.5, seed: 42, ..Default::default() });
        let b = FaultInjector::new(FaultConfig { drop_prob: 0.5, seed: 42, ..Default::default() });
        for _ in 0..100 {
            assert_eq!(a.decide(), b.decide());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_panics() {
        FaultInjector::new(FaultConfig { drop_prob: 1.5, ..Default::default() });
    }
}
