//! Scenario shrinking: reduce a failing scenario to a minimal
//! still-failing case before writing the replay.
//!
//! The shrinker is a single greedy pass over a fixed candidate
//! sequence — halve the world (twice), drop the SVM stage, zero each
//! fault-matrix entry, serialize the workers, disarm the crash-family
//! kill point, thin then disarm the abuse herd, undrift then shorten
//! then disarm the longitudinal study, thin then disarm the scale
//! stream. Each candidate re-runs the
//! oracle and is kept only if the failure (any failure) persists, so
//! the pass is bounded at ~20 pipeline runs and the result is
//! deterministic for a deterministic check function.

use crate::oracle::Failure;
use crate::scenario::{Scenario, MIN_SCALE};

/// Shrink `sc` (already known to fail with `failure`) against `check`,
/// which returns `Some(failure)` while the scenario still fails.
/// Returns the smallest failing scenario found and its failure.
pub fn shrink<F>(sc: Scenario, failure: Failure, check: F) -> (Scenario, Failure)
where
    F: Fn(&Scenario) -> Option<Failure>,
{
    type Step = Box<dyn Fn(&Scenario) -> Scenario>;
    let halve = |s: &Scenario| Scenario { scale: (s.scale / 2.0).max(MIN_SCALE), ..s.clone() };
    let steps: Vec<Step> = vec![
        Box::new(halve),
        Box::new(halve),
        Box::new(|s| Scenario { svm: false, ..s.clone() }),
        Box::new(|s| Scenario { drop_prob: 0.0, ..s.clone() }),
        Box::new(|s| Scenario { error_prob: 0.0, ..s.clone() }),
        Box::new(|s| Scenario { truncate_prob: 0.0, ..s.clone() }),
        Box::new(|s| Scenario { reset_prob: 0.0, ..s.clone() }),
        Box::new(|s| Scenario { stall_prob: 0.0, ..s.clone() }),
        Box::new(|s| Scenario { malformed_prob: 0.0, ..s.clone() }),
        Box::new(|s| Scenario { rate_limit_prob: 0.0, ..s.clone() }),
        Box::new(|s| Scenario { unavailable_prob: 0.0, ..s.clone() }),
        Box::new(|s| Scenario { workers: 1, ..s.clone() }),
        Box::new(|s| Scenario { crawl_workers: 1, ..s.clone() }),
        // Drop the torn tail first (a gentler kill), then the whole
        // kill point — `kill_fraction: 0.0` disables the crash family.
        Box::new(|s| Scenario { torn_tail: false, ..s.clone() }),
        Box::new(|s| Scenario { kill_fraction: 0.0, ..s.clone() }),
        // Thin the hostile herd to a single connection, then disarm the
        // abuse family entirely (`abuse_conns: 0` is its off switch).
        Box::new(|s| Scenario { abuse_conns: s.abuse_conns.min(1), ..s.clone() }),
        Box::new(|s| Scenario { abuse_conns: 0, ..s.clone() }),
        // Undrift the mid-study scorer, shorten the study to one epoch,
        // then disarm the longitudinal family (`epochs: 0`).
        Box::new(|s| Scenario { drift: 0.0, ..s.clone() }),
        Box::new(|s| Scenario { epochs: s.epochs.min(1), ..s.clone() }),
        Box::new(|s| Scenario { epochs: 0, ..s.clone() }),
        // Shrink the stream batch to its floor (the most boundary
        // crossings), then disarm the scale family (`stream_batch: 0`).
        Box::new(|s| Scenario { stream_batch: s.stream_batch.min(64), ..s.clone() }),
        Box::new(|s| Scenario { stream_batch: 0, ..s.clone() }),
    ];

    let mut best = sc;
    let mut best_failure = failure;
    for step in steps {
        let candidate = step(&best);
        if candidate == best {
            continue; // the knob is already minimal — no run to spend
        }
        if let Some(f) = check(&candidate) {
            best = candidate;
            best_failure = f;
        }
    }
    (best, best_failure)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fails_when(pred: impl Fn(&Scenario) -> bool) -> impl Fn(&Scenario) -> Option<Failure> {
        move |s| pred(s).then(|| Failure { check: "test".into(), detail: format!("{s:?}") })
    }

    #[test]
    fn shrinks_every_irrelevant_knob_to_its_floor() {
        let sc = Scenario::from_seed(3); // arbitrary non-minimal scenario
        let first = Failure { check: "test".into(), detail: String::new() };
        // A failure independent of every knob shrinks all the way down.
        let sc = Scenario {
            workers: 8,
            crawl_workers: 4,
            svm: true,
            drop_prob: 0.01,
            epochs: 3,
            drift: 0.2,
            stream_batch: 4096,
            ..sc
        };
        let expected_scale = (sc.scale / 4.0).max(MIN_SCALE); // two halvings
        let (min, f) = shrink(sc, first, fails_when(|_| true));
        assert_eq!(min.scale, expected_scale);
        assert!(!min.svm);
        assert_eq!(min.workers, 1);
        assert_eq!(min.crawl_workers, 1);
        assert_eq!(min.total_fault_prob(), 0.0);
        assert_eq!(min.kill_fraction, 0.0, "the kill point shrinks away too");
        assert!(!min.torn_tail);
        assert_eq!(min.abuse_conns, 0, "the hostile herd shrinks away too");
        assert_eq!(min.epochs, 0, "the epoch evolution shrinks away too");
        assert_eq!(min.drift, 0.0, "the scorer drift shrinks away too");
        assert_eq!(min.stream_batch, 0, "the scale stream shrinks away too");
        assert_eq!(f.check, "test");
    }

    #[test]
    fn keeps_the_batch_a_scale_failure_depends_on() {
        let sc = Scenario { stream_batch: 4096, workers: 8, ..Scenario::from_seed(13) };
        let first = Failure { check: "scale.stream".into(), detail: String::new() };
        let (min, _) = shrink(sc, first, fails_when(|s| s.stream_batch > 0));
        assert_eq!(min.stream_batch, 64, "the armed stream survives at its floor");
        assert_eq!(min.workers, 1, "irrelevant knobs still shrink");
    }

    #[test]
    fn keeps_the_herd_an_abuse_failure_depends_on() {
        let mut sc = Scenario::from_seed(7); // abuse_conns >= 2 by construction
        sc.workers = 8;
        let first = Failure { check: "abuse.reconcile".into(), detail: String::new() };
        let (min, _) = shrink(sc, first, fails_when(|s| s.abuse_conns > 0));
        assert_eq!(min.abuse_conns, 1, "the armed herd survives at its floor");
        assert_eq!(min.workers, 1, "irrelevant knobs still shrink");
    }

    #[test]
    fn keeps_the_knob_the_failure_depends_on() {
        let mut sc = Scenario::from_seed(5);
        sc.drop_prob = 0.02;
        sc.workers = 8;
        let first = Failure { check: "test".into(), detail: String::new() };
        let (min, _) = shrink(sc, first, fails_when(|s| s.drop_prob > 0.0));
        assert!(min.drop_prob > 0.0, "the load-bearing fault survives shrinking");
        assert_eq!(min.workers, 1, "irrelevant knobs still shrink");
        assert_eq!(min.error_prob, 0.0);
    }

    #[test]
    fn keeps_the_kill_point_a_crash_failure_depends_on() {
        let mut sc = Scenario::from_seed(9); // kill_fraction > 0 by construction
        sc.torn_tail = true;
        let first = Failure { check: "crash.resume".into(), detail: String::new() };
        let (min, _) = shrink(sc, first, fails_when(|s| s.kill_fraction > 0.0));
        assert!(min.kill_fraction > 0.0, "the load-bearing kill point survives");
        assert!(!min.torn_tail, "the irrelevant torn tail still shrinks");
    }

    #[test]
    fn keeps_the_epochs_a_longitudinal_failure_depends_on() {
        let sc = Scenario { epochs: 3, drift: 0.2, workers: 8, ..Scenario::from_seed(11) };
        let first = Failure { check: "longitudinal.oracle".into(), detail: String::new() };
        let (min, _) = shrink(sc, first, fails_when(|s| s.epochs > 0));
        assert_eq!(min.epochs, 1, "the armed study survives at its shortest length");
        assert_eq!(min.drift, 0.0, "the irrelevant drift still shrinks");
        assert_eq!(min.workers, 1, "irrelevant knobs still shrink");
    }

    #[test]
    fn never_runs_noop_candidates() {
        use std::cell::Cell;
        let runs = Cell::new(0usize);
        let sc = Scenario { // already minimal except one knob
            workers: 4,
            ..Scenario {
                scale: MIN_SCALE,
                svm: false,
                crawl_workers: 1,
                drop_prob: 0.0,
                error_prob: 0.0,
                truncate_prob: 0.0,
                reset_prob: 0.0,
                stall_prob: 0.0,
                malformed_prob: 0.0,
                rate_limit_prob: 0.0,
                unavailable_prob: 0.0,
                kill_fraction: 0.0,
                torn_tail: false,
                abuse_conns: 0,
                epochs: 0,
                drift: 0.0,
                stream_batch: 0,
                ..Scenario::from_seed(0)
            }
        };
        let first = Failure { check: "test".into(), detail: String::new() };
        let check = |_: &Scenario| {
            runs.set(runs.get() + 1);
            Some(Failure { check: "test".into(), detail: String::new() })
        };
        let (min, _) = shrink(sc, first, check);
        assert_eq!(min.workers, 1);
        assert_eq!(runs.get(), 1, "only the one changing candidate re-ran the oracle");
    }
}
