//! ADASYN oversampling (He et al., 2008).
//!
//! The Davidson training corpus is heavily imbalanced (1,194 hate vs 16,025
//! offensive vs 20,499 neither); the paper notes "Because of the imbalanced
//! complexion of data, we use ADASYN to oversample" (§3.5.3). ADASYN
//! generates synthetic minority samples by interpolating between a minority
//! sample and one of its minority k-nearest neighbors, with more synthesis
//! where the minority class is hardest to learn (neighborhoods dominated by
//! other classes).

use crate::shard;
use crate::svm::{lerp, sq_dist, SparseVec};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Shard size for the per-minority-sample passes. Small because each
/// kNN scan is O(n) over the whole corpus; fixed so shard geometry (and
/// with it the output) never depends on the worker count.
const ADASYN_SHARD: usize = 16;

/// ADASYN parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdasynConfig {
    /// Neighborhood size (paper default k = 5).
    pub k: usize,
    /// Balance level β ∈ (0, 1]: 1.0 fully balances each class up to the
    /// majority count.
    pub beta: f64,
    /// RNG seed for gap sampling and neighbor choice.
    pub seed: u64,
}

impl Default for AdasynConfig {
    fn default() -> Self {
        Self { k: 5, beta: 1.0, seed: 11 }
    }
}

/// Oversample `samples` (feature, label) so every class approaches the
/// majority class count. Returns the input plus synthetic samples.
/// Serial entry point; identical output to [`adasyn_sharded`] at any
/// worker count.
pub fn adasyn(samples: &[(SparseVec, usize)], classes: usize, cfg: AdasynConfig) -> Vec<(SparseVec, usize)> {
    adasyn_sharded(samples, classes, cfg, 1)
}

/// k nearest neighbors of minority sample `i` among ALL samples:
/// hardness r_i = fraction of those neighbors from other classes, plus
/// the same-class neighbor indices used for interpolation.
fn knn_scan(
    samples: &[(SparseVec, usize)],
    i: usize,
    class: usize,
    k: usize,
) -> (f64, Vec<usize>) {
    let mut dists: Vec<(f64, usize)> = (0..samples.len())
        .filter(|&j| j != i)
        .map(|j| (sq_dist(&samples[i].0, &samples[j].0), j))
        .collect();
    let k = k.min(dists.len());
    let nth = k.saturating_sub(1).min(dists.len().saturating_sub(1));
    dists.select_nth_unstable_by(nth, |a, b| {
        a.0.partial_cmp(&b.0).expect("finite distances")
    });
    let neigh = &dists[..k];
    let foreign = neigh.iter().filter(|(_, j)| samples[*j].1 != class).count();
    let hardness = foreign as f64 / k.max(1) as f64;
    let minority_neighbors = neigh
        .iter()
        .filter(|(_, j)| samples[*j].1 == class)
        .map(|(_, j)| *j)
        .collect();
    (hardness, minority_neighbors)
}

/// [`adasyn`] with the O(n·k) neighbor scan and the synthesis pass
/// sharded over `workers` threads.
///
/// Deterministic across worker counts: each minority sample `m` of a
/// class draws from its own RNG stream seeded by
/// `stream_seed(cfg.seed, class << 32 | m)` — stable ids, not thread
/// identity — and synthetic samples are appended in canonical
/// (class asc, minority position asc, draw asc) order, exactly the
/// order the serial loop produces.
pub fn adasyn_sharded(
    samples: &[(SparseVec, usize)],
    classes: usize,
    cfg: AdasynConfig,
    workers: usize,
) -> Vec<(SparseVec, usize)> {
    assert!(cfg.k >= 1, "k must be >= 1");
    assert!(cfg.beta > 0.0 && cfg.beta <= 1.0, "beta must be in (0,1]");
    let mut counts = vec![0usize; classes];
    for (_, y) in samples {
        counts[*y] += 1;
    }
    let majority = counts.iter().copied().max().unwrap_or(0);
    let mut out: Vec<(SparseVec, usize)> = samples.to_vec();

    for (class, &class_count) in counts.iter().enumerate() {
        let deficit = ((majority - class_count) as f64 * cfg.beta).round() as usize;
        if deficit == 0 || class_count == 0 {
            continue;
        }
        let minority_idx: Vec<usize> =
            (0..samples.len()).filter(|&i| samples[i].1 == class).collect();

        let scans: Vec<(f64, Vec<usize>)> =
            shard::map_sharded(&minority_idx, ADASYN_SHARD, workers, |_, shard| {
                shard.iter().map(|&i| knn_scan(samples, i, class, cfg.k)).collect()
            });
        let total_hardness: f64 = scans.iter().map(|(h, _)| h).sum();

        // Synthesis: per-minority-sample RNG streams, canonical order.
        let synthetic: Vec<Vec<(SparseVec, usize)>> =
            shard::map_sharded(&minority_idx, ADASYN_SHARD, workers, |shard_id, shard| {
                shard
                    .iter()
                    .enumerate()
                    .map(|(pos, &i)| {
                        let m = shard_id * ADASYN_SHARD + pos;
                        let (hardness, neighbors) = &scans[m];
                        // Allocation: proportional to hardness; uniform if all easy.
                        let share = if total_hardness > 0.0 {
                            hardness / total_hardness
                        } else {
                            1.0 / minority_idx.len() as f64
                        };
                        let g = (share * deficit as f64).round() as usize;
                        let sample_id = ((class as u64) << 32) | m as u64;
                        let mut rng =
                            StdRng::seed_from_u64(shard::stream_seed(cfg.seed, sample_id));
                        let base = &samples[i].0;
                        (0..g)
                            .map(|_| {
                                let synth = if neighbors.is_empty() {
                                    base.clone() // isolated sample: duplicate
                                } else {
                                    let pick = neighbors[rng.gen_range(0..neighbors.len())];
                                    lerp(base, &samples[pick].0, rng.gen::<f32>())
                                };
                                (synth, class)
                            })
                            .collect()
                    })
                    .collect()
            });
        out.extend(synthetic.into_iter().flatten());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(pairs: &[(u32, f32)]) -> SparseVec {
        pairs.to_vec()
    }

    fn toy_imbalanced() -> Vec<(SparseVec, usize)> {
        let mut s = Vec::new();
        // Majority class 1: cluster around feature 10.
        for i in 0..40 {
            s.push((fv(&[(10, 1.0 + (i % 7) as f32 * 0.01)]), 1usize));
        }
        // Minority class 0: cluster around feature 0.
        for i in 0..5 {
            s.push((fv(&[(0, 1.0 + i as f32 * 0.02)]), 0usize));
        }
        s
    }

    #[test]
    fn balances_minority_class() {
        let s = toy_imbalanced();
        let out = adasyn(&s, 2, AdasynConfig::default());
        let c0 = out.iter().filter(|(_, y)| *y == 0).count();
        let c1 = out.iter().filter(|(_, y)| *y == 1).count();
        assert!(c0 as f64 >= 0.8 * c1 as f64, "c0={c0} c1={c1}");
        // Originals preserved.
        assert!(out.len() > s.len());
        assert_eq!(&out[..s.len()], &s[..]);
    }

    #[test]
    fn synthetic_samples_stay_in_minority_region() {
        let s = toy_imbalanced();
        let out = adasyn(&s, 2, AdasynConfig::default());
        for (x, y) in &out[s.len()..] {
            assert_eq!(*y, 0, "only the minority class is synthesized");
            // All synthetic vectors interpolate cluster members → only
            // feature 0 present.
            assert!(x.iter().all(|&(i, _)| i == 0), "{x:?}");
        }
    }

    #[test]
    fn balanced_input_is_unchanged() {
        let mut s = Vec::new();
        for i in 0..10 {
            s.push((fv(&[(0, 1.0 + i as f32)]), 0usize));
            s.push((fv(&[(5, 1.0 + i as f32)]), 1usize));
        }
        let out = adasyn(&s, 2, AdasynConfig::default());
        assert_eq!(out.len(), s.len());
    }

    #[test]
    fn beta_scales_synthesis() {
        let s = toy_imbalanced();
        let full = adasyn(&s, 2, AdasynConfig { beta: 1.0, ..Default::default() });
        let half = adasyn(&s, 2, AdasynConfig { beta: 0.5, ..Default::default() });
        let synth_full = full.len() - s.len();
        let synth_half = half.len() - s.len();
        assert!(synth_half < synth_full);
        assert!(synth_half > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let s = toy_imbalanced();
        let a = adasyn(&s, 2, AdasynConfig::default());
        let b = adasyn(&s, 2, AdasynConfig::default());
        assert_eq!(a.len(), b.len());
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_output_identical_for_any_worker_count() {
        let s = toy_imbalanced();
        let serial = adasyn_sharded(&s, 2, AdasynConfig::default(), 1);
        for workers in [2, 3, 8] {
            let par = adasyn_sharded(&s, 2, AdasynConfig::default(), workers);
            assert_eq!(par, serial, "workers={workers}");
        }
        assert_eq!(serial, adasyn(&s, 2, AdasynConfig::default()));
    }

    #[test]
    fn three_class_balances_both_minorities() {
        let mut s = toy_imbalanced();
        for i in 0..3 {
            s.push((fv(&[(20, 1.0 + i as f32 * 0.1)]), 2usize));
        }
        let out = adasyn(&s, 3, AdasynConfig::default());
        let c2 = out.iter().filter(|(_, y)| *y == 2).count();
        assert!(c2 > 3);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn bad_beta_panics() {
        adasyn(&[], 2, AdasynConfig { beta: 0.0, ..Default::default() });
    }
}
