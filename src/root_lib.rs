//! Workspace-root facade crate.
//!
//! Re-exports the public crates of the Dissenter reproduction so that the
//! `examples/` and `tests/` at the repository root can address the whole
//! system through one dependency. Library users should depend on the
//! individual crates (most importantly [`dissenter_core`]) directly.

pub use analysis;
pub use classify;
pub use crawler;
pub use dissenter_core;
pub use graph;
pub use httpnet;
pub use ids;
pub use jsonlite;
pub use platform;
pub use simcheck;
pub use stats;
pub use synth;
pub use textkit;
pub use webfront;
