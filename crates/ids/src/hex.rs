//! Lowercase hexadecimal codecs used by the 24-hex-digit Dissenter IDs.

/// Encode `bytes` as a lowercase hexadecimal string.
pub fn encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decode a hexadecimal string (case-insensitive) into bytes.
///
/// Returns `None` if the input has odd length or contains a non-hex digit.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let b = s.as_bytes();
    for pair in b.chunks_exact(2) {
        let hi = val(pair[0])?;
        let lo = val(pair[1])?;
        out.push((hi << 4) | lo);
    }
    Some(out)
}

fn val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_empty() {
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn encode_known_vector() {
        assert_eq!(encode(&[0x5c, 0x78, 0x0b, 0x19]), "5c780b19");
    }

    #[test]
    fn decode_known_vector() {
        assert_eq!(decode("5c780b19"), Some(vec![0x5c, 0x78, 0x0b, 0x19]));
    }

    #[test]
    fn decode_uppercase() {
        assert_eq!(decode("DEADBEEF"), Some(vec![0xde, 0xad, 0xbe, 0xef]));
    }

    #[test]
    fn decode_rejects_odd_length() {
        assert_eq!(decode("abc"), None);
    }

    #[test]
    fn decode_rejects_non_hex() {
        assert_eq!(decode("zz"), None);
        assert_eq!(decode("0g"), None);
    }

    #[test]
    fn round_trip_all_bytes() {
        let all: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&all)), Some(all));
    }
}
