//! Conditional-request serving for the fronts: strong ETags derived from
//! world content, `304 Not Modified` revalidation, and an opt-in response
//! cache.
//!
//! # Protocol
//!
//! Every cacheable 200 leaves a front tagged with a strong ETag computed
//! from three inputs:
//!
//! 1. the world's [content hash](platform::World::content_hash), taken
//!    once at front construction (the world behind a running front is
//!    immutable);
//! 2. the front's *generation* counter, bumped by any front-level
//!    world-visible mutation (e.g. the Dissenter vote endpoint) — bumping
//!    also purges the response cache, so no stale body survives a
//!    mutation;
//! 3. the request target and the requester's *visibility class*.
//!
//! A repeat request carrying `If-None-Match` with the current tag gets a
//! bodyless `304` before any rendering or cache work happens — the whole
//! point of the protocol: revalidation costs a hash compare, not a render.
//!
//! # Cache-coherence rules
//!
//! The [visibility class](visibility_class) is part of **both** the cache
//! key and the ETag input. Dissenter serves shadow-banned (NSFW /
//! "offensive") comments only to opted-in sessions (§3.2), so two
//! sessions can receive different bodies for the same target. Keying by
//! class means an anonymous client can never be served a body rendered
//! for an opted-in session out of a shared cache entry, and a shadow
//! session's ETag never validates an anonymous request (different class →
//! different tag → no 304). Responses other than 200 are never tagged or
//! cached: a 404 probe miss, a 429, and a 302 all stay fully dynamic.
//!
//! Rate-limited routes use [`FrontCache::conditional_only`]: they still
//! answer `304` to a fresh validator (inside the limiter's allowed
//! branch, so cache hits cannot bypass the limiter's accounting) but
//! never serve a stored body.

use httpnet::http::{format_etag, if_none_match};
use httpnet::{CacheConfig, Headers, Request, Response, ResponseCache, Status};
use platform::{Viewer, World};
use std::collections::HashSet;
use std::sync::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cacheable pages are private (per-visibility-class) and must always be
/// revalidated — the client may reuse its copy only after a `304`.
const CACHE_CONTROL: &str = "private, max-age=0, must-revalidate";

/// Shared conditional-request state for one front. Cheap to clone (all
/// clones share the same cache and generation counter), so each route
/// closure captures its own handle.
#[derive(Debug, Clone)]
pub struct FrontCache {
    cache: Arc<ResponseCache>,
    generation: Arc<AtomicU64>,
    /// World content digest at construction; folds world identity into
    /// every ETag so tags from a different world never validate.
    stamp: u64,
    /// Optional per-(target, class) stamp override. When present, ETags
    /// fold this entity-level digest instead of the whole-world `stamp`,
    /// so a page's validator survives world changes that cannot affect
    /// that page — the property incremental longitudinal sweeps rely on
    /// to revalidate unchanged pages across evolving worlds.
    resolver: Option<StampResolver>,
    /// Single-flight coordination for concurrent misses (stampede
    /// control): at most one render per key is in flight at a time.
    flights: Arc<Flights>,
}

/// A per-(target, class) stamp function for [`FrontCache`] ETags.
///
/// # Soundness contract
///
/// The resolved stamp MUST change whenever the bytes the front would
/// render for that `(target, class)` change (under-inclusion serves
/// stale bodies to revalidating clients — a correctness bug the
/// `longitudinal.oracle` simcheck family exists to catch). Changing the
/// stamp when the body did *not* change is safe: the client merely
/// re-downloads identical bytes.
#[derive(Clone)]
pub struct StampResolver(Arc<StampFn>);

/// The resolver's inner `(target, class) -> stamp` function type.
type StampFn = dyn Fn(&str, &str) -> u64 + Send + Sync;

impl StampResolver {
    /// Wrap a `(target, class) -> stamp` function.
    pub fn new(f: impl Fn(&str, &str) -> u64 + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }

    /// The stamp for `target` as seen by `class`.
    pub fn stamp(&self, target: &str, class: &str) -> u64 {
        (self.0)(target, class)
    }
}

impl std::fmt::Debug for StampResolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StampResolver(..)")
    }
}

/// Sharded in-flight-render registry. A miss claims its key before
/// rendering; concurrent misses on the same key park on the shard's
/// condvar and re-probe the cache once the leader finishes, so a
/// stampeding herd costs one upstream render, not one per client.
#[derive(Debug)]
struct Flights {
    shards: Vec<FlightShard>,
}

#[derive(Debug, Default)]
struct FlightShard {
    inflight: Mutex<HashSet<String>>,
    done: Condvar,
}

impl Flights {
    fn new() -> Self {
        Self { shards: (0..16).map(|_| FlightShard::default()).collect() }
    }

    fn shard(&self, key: &str) -> &FlightShard {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in key.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        &self.shards[(h as usize) % self.shards.len()]
    }
}

/// Clears the claimed flight key and wakes waiters on drop, so a
/// panicking render can never strand followers on the condvar.
struct FlightGuard<'a> {
    shard: &'a FlightShard,
    key: &'a str,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        lock_flights(&self.shard.inflight).remove(self.key);
        self.shard.done.notify_all();
    }
}

/// Lock a flight shard, shrugging off poisoning: the set's invariant
/// (claimed keys are always released by a [`FlightGuard`]) holds even
/// when a holder panicked between lock and unlock.
fn lock_flights(m: &Mutex<HashSet<String>>) -> std::sync::MutexGuard<'_, HashSet<String>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl FrontCache {
    /// A cache stamped with a world digest, using the default
    /// [`CacheConfig`].
    pub fn new(stamp: u64) -> Self {
        Self::with_config(stamp, CacheConfig::default())
    }

    /// A cache with an explicit configuration.
    pub fn with_config(stamp: u64, config: CacheConfig) -> Self {
        Self {
            cache: Arc::new(ResponseCache::new(config)),
            generation: Arc::new(AtomicU64::new(0)),
            stamp,
            resolver: None,
            flights: Arc::new(Flights::new()),
        }
    }

    /// A cache publishing `cache.*` metrics into `registry`.
    pub fn with_registry(stamp: u64, config: CacheConfig, registry: &obs::Registry) -> Self {
        Self {
            cache: Arc::new(ResponseCache::with_registry(config, registry)),
            generation: Arc::new(AtomicU64::new(0)),
            stamp,
            resolver: None,
            flights: Arc::new(Flights::new()),
        }
    }

    /// Replace the whole-world stamp with a per-(target, class) resolver
    /// (see [`StampResolver`] for the soundness contract). Generation and
    /// target/class folding are unchanged.
    pub fn with_stamp_resolver(mut self, resolver: StampResolver) -> Self {
        self.resolver = Some(resolver);
        self
    }

    /// The strong ETag for `target` as seen by `class`, under the current
    /// generation.
    pub fn etag(&self, target: &str, class: &str) -> String {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h ^= 0x1f;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        let stamp = match &self.resolver {
            Some(r) => r.stamp(target, class),
            None => self.stamp,
        };
        eat(&stamp.to_le_bytes());
        eat(&self.generation.load(Ordering::Acquire).to_le_bytes());
        eat(target.as_bytes());
        eat(class.as_bytes());
        format_etag(h)
    }

    /// Current generation (starts at 0; every bump invalidates all
    /// outstanding ETags).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Record a world-visible mutation: advance the generation (so every
    /// outstanding ETag stops validating) and purge the response cache
    /// (so no stale body survives).
    pub fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.cache.purge();
    }

    /// Serve `req` for visibility `class` with the full conditional
    /// pipeline: `304` on a fresh `If-None-Match`, then the response
    /// cache, then `render` (whose 200 output is tagged and stored).
    ///
    /// Concurrent misses on one key are single-flighted: the first claims
    /// the key and renders; the rest park until it finishes and then take
    /// the stored body as an ordinary cache hit. A stampeding herd costs
    /// one render, every client gets byte-identical bytes, and
    /// `cache.{hits,misses}` reconcile exactly (followers never probe the
    /// cache while the render they are waiting on is in flight, so each
    /// request counts exactly one hit or one miss).
    pub fn respond(
        &self,
        req: &Request,
        class: &str,
        render: impl FnOnce() -> Response,
    ) -> Response {
        let tag = self.etag(&req.target, class);
        if let Some(resp) = self.revalidate(req, &tag) {
            return resp;
        }
        let key = format!("{}\u{0}{}\u{0}{}", req.method, req.target, class);
        let shard = self.flights.shard(&key);
        let mut inflight = lock_flights(&shard.inflight);
        loop {
            if inflight.contains(&key) {
                // A leader is rendering this key: wait, then re-probe.
                inflight = shard
                    .done
                    .wait(inflight)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            }
            // Probe under the shard lock, so a follower can never count a
            // spurious miss against a render that is already in flight.
            if let Some(hit) = self.cache.lookup(&req.method, &req.target, class) {
                return hit;
            }
            inflight.insert(key.clone());
            break;
        }
        drop(inflight);
        // This request is the leader; the guard releases the key (and
        // wakes followers) however the render ends — including a panic,
        // in which case a follower takes over and renders itself.
        let guard = FlightGuard { shard, key: &key };
        let resp = self.tag_success(render(), &tag);
        if resp.status == Status::OK {
            self.cache.insert(&req.method, &req.target, class, &resp);
        }
        drop(guard);
        resp
    }

    /// Serve `req` conditionally but never store or serve a cached body.
    /// For rate-limited routes: the caller invokes this *inside* the
    /// limiter's allowed branch, so a `304` still spends rate budget and
    /// the limiter's accounting stays exact, while fresh validators skip
    /// the render.
    pub fn conditional_only(
        &self,
        req: &Request,
        class: &str,
        render: impl FnOnce() -> Response,
    ) -> Response {
        let tag = self.etag(&req.target, class);
        if let Some(resp) = self.revalidate(req, &tag) {
            return resp;
        }
        self.tag_success(render(), &tag)
    }

    /// The underlying response cache (tests and the load generator
    /// inspect occupancy).
    pub fn response_cache(&self) -> &ResponseCache {
        &self.cache
    }

    fn revalidate(&self, req: &Request, tag: &str) -> Option<Response> {
        let condition = req.headers.get("if-none-match")?;
        if !if_none_match(condition, tag) {
            return None;
        }
        let mut headers = Headers::new();
        headers.add("ETag", tag);
        headers.add("Cache-Control", CACHE_CONTROL);
        Some(Response::not_modified(headers))
    }

    fn tag_success(&self, mut resp: Response, tag: &str) -> Response {
        if resp.status == Status::OK {
            resp.headers.add("ETag", tag);
            resp.headers.add("Cache-Control", CACHE_CONTROL);
        }
        resp
    }
}

/// The requester's visibility class: `anon` for anonymous sessions,
/// otherwise the resolved view-filter bits (`v` + one digit per filter,
/// in pro/verified/standard/nsfw/offensive order). Two sessions in the
/// same class see byte-identical pages, so they may legitimately share
/// cache entries and validators; sessions in different classes never do.
pub fn visibility_class(world: &World, req: &Request) -> String {
    match crate::viewer_for(world, req) {
        Viewer::Anonymous => "anon".to_owned(),
        Viewer::Authenticated(f) => format!(
            "v{}{}{}{}{}",
            f.pro as u8, f.verified as u8, f.standard as u8, f.nsfw as u8, f.offensive as u8
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(target: &str) -> Request {
        Request::get(target)
    }

    fn with_inm(target: &str, tag: &str) -> Request {
        let mut r = Request::get(target);
        r.headers.add("If-None-Match", tag);
        r
    }

    #[test]
    fn etag_distinguishes_target_class_generation_and_stamp() {
        let c = FrontCache::new(7);
        let base = c.etag("/a", "anon");
        assert_eq!(base, c.etag("/a", "anon"), "stable");
        assert_ne!(base, c.etag("/b", "anon"), "target matters");
        assert_ne!(base, c.etag("/a", "v00011"), "class matters");
        assert_ne!(base, FrontCache::new(8).etag("/a", "anon"), "stamp matters");
        c.bump_generation();
        assert_ne!(base, c.etag("/a", "anon"), "generation matters");
    }

    #[test]
    fn respond_serves_304_then_cache_then_render() {
        let c = FrontCache::new(1);
        let mut renders = 0;
        let first = c.respond(&get("/p"), "anon", || {
            renders += 1;
            Response::html("hello".to_owned())
        });
        assert_eq!(first.status, Status::OK);
        let tag = first.etag().expect("200 is tagged").to_owned();
        // Cached: a plain repeat serves the stored body without rendering.
        let second = c.respond(&get("/p"), "anon", || unreachable!("must hit cache"));
        assert_eq!(second.text(), "hello");
        assert_eq!(second.etag(), Some(tag.as_str()));
        // Conditional repeat: bodyless 304 carrying the validator.
        let third = c.respond(&with_inm("/p", &tag), "anon", || unreachable!("must 304"));
        assert_eq!(third.status, Status::NOT_MODIFIED);
        assert!(third.body.is_empty());
        assert_eq!(third.etag(), Some(tag.as_str()));
        assert_eq!(renders, 1);
    }

    #[test]
    fn bump_generation_invalidates_tags_and_purges_bodies() {
        let c = FrontCache::new(1);
        let first = c.respond(&get("/p"), "anon", || Response::html("v1".to_owned()));
        let tag = first.etag().unwrap().to_owned();
        c.bump_generation();
        assert!(c.response_cache().is_empty(), "bodies purged");
        let after = c.respond(&with_inm("/p", &tag), "anon", || Response::html("v2".to_owned()));
        assert_eq!(after.status, Status::OK, "stale validator gets the new body");
        assert_eq!(after.text(), "v2");
        assert_ne!(after.etag(), Some(tag.as_str()));
    }

    #[test]
    fn non_200s_are_never_tagged_or_cached() {
        let c = FrontCache::new(1);
        let miss = c.respond(&get("/absent"), "anon", Response::not_found);
        assert_eq!(miss.status, Status::NOT_FOUND);
        assert!(miss.etag().is_none());
        assert!(c.response_cache().is_empty());
    }

    #[test]
    fn conditional_only_never_stores_bodies() {
        let c = FrontCache::new(1);
        let first = c.conditional_only(&get("/lim"), "anon", || Response::html("x".to_owned()));
        let tag = first.etag().unwrap().to_owned();
        assert!(c.response_cache().is_empty(), "no body stored");
        let mut renders = 0;
        let plain = c.conditional_only(&get("/lim"), "anon", || {
            renders += 1;
            Response::html("x".to_owned())
        });
        assert_eq!(plain.status, Status::OK, "plain repeat re-renders");
        assert_eq!(renders, 1);
        let cond = c.conditional_only(&with_inm("/lim", &tag), "anon", || unreachable!());
        assert_eq!(cond.status, Status::NOT_MODIFIED);
    }

    #[test]
    fn stampede_on_one_key_renders_once_with_identical_bodies() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;
        let registry = obs::Registry::new();
        let cache =
            FrontCache::with_registry(1, CacheConfig::default(), &registry);
        let renders = Arc::new(AtomicUsize::new(0));
        let n = 16;
        let barrier = Arc::new(Barrier::new(n));
        let mut handles = Vec::new();
        for _ in 0..n {
            let cache = cache.clone();
            let renders = Arc::clone(&renders);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                cache.respond(&Request::get("/hot"), "anon", || {
                    renders.fetch_add(1, Ordering::SeqCst);
                    // Widen the stampede window so every follower really
                    // arrives while the leader is rendering.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    Response::html("hot page".to_owned())
                })
            }));
        }
        let bodies: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(renders.load(Ordering::SeqCst), 1, "N concurrent misses, one render");
        let first = &bodies[0];
        for resp in &bodies {
            assert_eq!(resp.status, Status::OK);
            assert_eq!(resp.body, first.body, "every client gets byte-identical bytes");
            assert_eq!(resp.etag(), first.etag());
        }
        let snap = registry.snapshot();
        let hits = snap.counter("cache.hits").unwrap_or(0);
        let misses = snap.counter("cache.misses").unwrap_or(0);
        assert_eq!(misses, 1, "exactly the leader's probe misses");
        assert_eq!(hits, (n - 1) as u64, "every follower resolves to a hit");
        assert_eq!(hits + misses, n as u64, "hits + misses reconcile to requests exactly");
    }

    #[test]
    fn singleflight_leader_panic_does_not_strand_followers() {
        use std::sync::Barrier;
        let cache = FrontCache::new(1);
        let barrier = Arc::new(Barrier::new(2));
        let leader = {
            let cache = cache.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.respond(&Request::get("/boom"), "anon", || {
                        barrier.wait();
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        panic!("render exploded");
                    })
                }));
            })
        };
        barrier.wait();
        // Arrives while the leader is mid-panic; must not hang forever,
        // and takes over the render after the guard clears the key.
        let resp = cache.respond(&Request::get("/boom"), "anon", || {
            Response::html("recovered".to_owned())
        });
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.text(), "recovered");
        leader.join().unwrap();
    }

    #[test]
    fn stamp_resolver_scopes_invalidation_to_the_resolved_stamp() {
        let per_a = Arc::new(AtomicU64::new(1));
        let hook = per_a.clone();
        let c = FrontCache::new(7).with_stamp_resolver(StampResolver::new(move |target, _| {
            if target == "/a" { hook.load(Ordering::Relaxed) } else { 99 }
        }));
        let a = c.etag("/a", "anon");
        let b = c.etag("/b", "anon");
        per_a.store(2, Ordering::Relaxed);
        assert_ne!(a, c.etag("/a", "anon"), "resolved stamp change rotates the tag");
        assert_eq!(b, c.etag("/b", "anon"), "other targets keep their validators");
    }

    #[test]
    fn shadow_etags_do_not_validate_for_other_classes() {
        let c = FrontCache::new(1);
        let shadow_tag = c.etag("/url/1", "v00011");
        let resp =
            c.respond(&with_inm("/url/1", &shadow_tag), "anon", || Response::html("a".to_owned()));
        assert_eq!(resp.status, Status::OK, "cross-class validator must not 304");
    }
}
