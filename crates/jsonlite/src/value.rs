//! The JSON value tree.

use std::fmt;

/// A JSON value.
///
/// Objects are stored as an insertion-ordered `Vec<(String, Value)>` so
/// serialization is deterministic — the simulated services must emit
/// byte-identical bodies for identical requests (the crawler infers account
/// existence from response *sizes*, §3.1, so stability matters).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number written without fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index into an array; `None` for non-arrays or out-of-range.
    pub fn idx(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `i64` (exact integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f64` (accepts both number forms).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// True if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Builder: an empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Builder: insert/overwrite a key, returning `self` for chaining.
    pub fn with(mut self, key: &str, val: impl Into<Value>) -> Value {
        if let Value::Object(pairs) = &mut self {
            if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
                slot.1 = val.into();
            } else {
                pairs.push((key.to_owned(), val.into()));
            }
        }
        self
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::ser::to_string(self))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Self {
        if n <= i64::MAX as u64 {
            Value::Int(n as i64)
        } else {
            Value::Float(n as f64)
        }
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::from(n as u64)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Int(n as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        match o {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_get() {
        let v = Value::object()
            .with("name", "@a")
            .with("id", 1i64)
            .with("pro", true);
        assert_eq!(v.get("name").and_then(Value::as_str), Some("@a"));
        assert_eq!(v.get("id").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("pro").and_then(Value::as_bool), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn with_overwrites_existing_key() {
        let v = Value::object().with("k", 1i64).with("k", 2i64);
        assert_eq!(v.get("k").and_then(Value::as_i64), Some(2));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }

    #[test]
    fn as_f64_accepts_ints() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn array_indexing() {
        let v: Value = vec![1i64, 2, 3].into();
        assert_eq!(v.idx(1).and_then(Value::as_i64), Some(2));
        assert!(v.idx(9).is_none());
        assert!(Value::Null.idx(0).is_none());
    }

    #[test]
    fn option_conversion() {
        assert!(Value::from(None::<i64>).is_null());
        assert_eq!(Value::from(Some(4i64)).as_i64(), Some(4));
    }

    #[test]
    fn large_u64_degrades_to_float() {
        let v = Value::from(u64::MAX);
        assert!(matches!(v, Value::Float(_)));
    }
}
