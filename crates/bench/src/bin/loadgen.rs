//! Conditional-request serving bench: drive the Dissenter front with a
//! closed-loop load in both regimes (every-request-rendered vs
//! ETag/304 revalidation) and emit the comparison as `BENCH_PR5.json`
//! (produced in CI by `scripts/bench_pr5.sh`).
//!
//! ```text
//! loadgen [--out FILE] [--threads N] [--requests N] [--warmup N] [--targets N] [--scale <f64>] [--seed N]
//! ```
//!
//! Self-validating: the run aborts unless (a) cached throughput strictly
//! beats uncached, (b) the cached pass actually revalidated, (c) no
//! request failed, and (d) the shadow-visibility isolation probe holds —
//! a page served to an NSFW/offensive-enabled session must not be
//! reachable (as body, cache entry, or validator match) by an anonymous
//! session.

use bench::loadgen::{run, LoadConfig, Mode};
use httpnet::{Handler, Request};
use std::sync::Arc;
use synth::config::Scale;
use synth::WorldConfig;
use webfront::dissenter::DissenterFront;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--out FILE] [--threads N] [--requests N] [--warmup N] [--targets N] \
         [--scale <f64>] [--seed N]"
    );
    std::process::exit(2);
}

/// In-process probe of the cache-coherence contract: a shadow-labeled
/// comment page fetched by an opted-in session (200, tagged, cached)
/// must stay invisible to an anonymous request — including when the
/// anonymous request replays the shadow session's validator.
fn shadow_isolation_holds(world: &Arc<platform::World>) -> bool {
    let Some(comment) = world.dissenter.comments().iter().find(|c| c.nsfw || c.offensive) else {
        eprintln!("loadgen: world has no shadow-labeled comments; grow --scale");
        return false;
    };
    let front = DissenterFront::new(world.clone());
    let target = format!("/comment/{}", comment.id);

    let mut shadow_req = Request::get(&target);
    shadow_req.headers.add("Cookie", "session=crawler:both");
    let shadow = front.handle(&shadow_req);
    if !shadow.status.is_success() {
        eprintln!("loadgen: shadow session got {} for {target}", shadow.status);
        return false;
    }
    let Some(tag) = shadow.etag().map(str::to_owned) else {
        eprintln!("loadgen: shadow 200 for {target} is untagged");
        return false;
    };

    // Plain anonymous request: the cached shadow body must not leak.
    let anon = front.handle(&Request::get(&target));
    if anon.status.is_success() {
        eprintln!("loadgen: anonymous request was served a shadow-visible page for {target}");
        return false;
    }
    // Anonymous request replaying the shadow validator: must not 304.
    let mut replay = Request::get(&target);
    replay.headers.add("If-None-Match", &tag);
    let replayed = front.handle(&replay);
    if replayed.status == httpnet::Status::NOT_MODIFIED || replayed.status.is_success() {
        eprintln!(
            "loadgen: shadow validator {tag} validated for an anonymous session ({})",
            replayed.status
        );
        return false;
    }
    true
}

fn main() {
    let mut out_path = std::path::PathBuf::from("BENCH_PR5.json");
    // Warm both regimes by default so the measured window starts at steady
    // state (connection pool filled, caches primed for the cached pass):
    // without this, cold-start outliers land in the cached p99 and can
    // make it read *worse* than uncached.
    let mut load = LoadConfig { warmup_per_thread: 50, ..LoadConfig::default() };
    let mut target_count = 24usize;
    let mut scale = 0.002f64;
    let mut seed = 0x5EED_BE7Au64;
    let mut args = std::env::args().skip(1);
    fn next_arg(args: &mut impl Iterator<Item = String>) -> String {
        args.next().unwrap_or_else(|| usage())
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = next_arg(&mut args).into(),
            "--threads" => load.threads = next_arg(&mut args).parse_ok("--threads"),
            "--requests" => load.requests_per_thread = next_arg(&mut args).parse_ok("--requests"),
            "--warmup" => load.warmup_per_thread = next_arg(&mut args).parse_ok("--warmup"),
            "--targets" => target_count = next_arg(&mut args).parse_ok("--targets"),
            "--scale" => scale = next_arg(&mut args).parse_ok("--scale"),
            "--seed" => seed = next_arg(&mut args).parse_ok("--seed"),
            _ => usage(),
        }
    }

    let cfg = WorldConfig { seed, scale: Scale::Custom(scale), ..WorldConfig::small() };
    let (world, _) = synth::generate(&cfg);
    let world = Arc::new(world);
    let registry = obs::Registry::new();
    let fronts = webfront::SimFronts::with_registry(world.clone(), &registry);
    let services = webfront::SimServices::start_with(fronts, crawler::default_server_config())
        .expect("failed to start simulated services");

    let mut names: Vec<String> =
        world.dissenter_users().map(|i| world.user(i).username.clone()).collect();
    names.sort_unstable();
    let targets: Vec<String> =
        names.iter().take(target_count.max(1)).map(|n| format!("/user/{n}")).collect();
    assert!(!targets.is_empty(), "world has no dissenter users; grow --scale");

    let addr = services.dissenter.addr();
    let uncached = run(addr, &targets, &load, Mode::Uncached);
    let cached = run(addr, &targets, &load, Mode::Cached);
    let shadow_isolated = shadow_isolation_holds(&world);

    let snap = registry.snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let summary = |s: &bench::loadgen::LoadSummary| {
        jsonlite::Value::object()
            .with("requests", s.requests)
            .with("failures", s.failures)
            .with("wall_ms", s.wall_ms)
            .with("req_per_sec", s.req_per_sec)
            .with("p50_us", s.p50_us)
            .with("p99_us", s.p99_us)
            .with("not_modified", s.not_modified)
    };
    let report = jsonlite::Value::object()
        .with("threads", load.threads)
        .with("requests_per_thread", load.requests_per_thread)
        .with("warmup_per_thread", load.warmup_per_thread)
        .with("targets", targets.len())
        .with("scale", scale)
        .with("uncached", summary(&uncached))
        .with("cached", summary(&cached))
        .with("speedup", cached.req_per_sec / uncached.req_per_sec.max(1e-9))
        .with("cache_hits", counter("cache.hits"))
        .with("cache_misses", counter("cache.misses"))
        .with("cache_evictions", counter("cache.evictions"))
        .with("shadow_isolated", shadow_isolated);
    std::fs::write(&out_path, jsonlite::to_string_pretty(&report))
        .expect("failed to write bench artifact");
    println!(
        "loadgen: uncached {:.0} req/s (p99 {} us) vs cached {:.0} req/s (p99 {} us), \
         {} revalidations -> {}",
        uncached.req_per_sec,
        uncached.p99_us,
        cached.req_per_sec,
        cached.p99_us,
        cached.not_modified,
        out_path.display()
    );

    let mut ok = true;
    if uncached.failures + cached.failures > 0 {
        eprintln!("loadgen: FAIL — {} requests failed", uncached.failures + cached.failures);
        ok = false;
    }
    if cached.not_modified == 0 {
        eprintln!("loadgen: FAIL — cached pass never revalidated");
        ok = false;
    }
    if cached.req_per_sec <= uncached.req_per_sec {
        eprintln!(
            "loadgen: FAIL — cached {:.0} req/s did not beat uncached {:.0} req/s",
            cached.req_per_sec, uncached.req_per_sec
        );
        ok = false;
    }
    if !shadow_isolated {
        eprintln!("loadgen: FAIL — shadow-visibility isolation violated");
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
}

/// Tiny arg-parsing helper: parse or die with the flag name.
trait ParseOk {
    fn parse_ok<T: std::str::FromStr>(&self, name: &str) -> T;
}

impl ParseOk for String {
    fn parse_ok<T: std::str::FromStr>(&self, name: &str) -> T {
        self.parse().unwrap_or_else(|_| {
            eprintln!("loadgen: invalid value {self:?} for {name}");
            std::process::exit(2);
        })
    }
}
