//! Baseline comment corpora (Table 3) and per-community latent score
//! distributions (Figure 7).
//!
//! Each community gets a latent-score sampler tuned so the classifier-
//! recovered CDFs reproduce the paper's Figure 7 ordering and quantiles:
//!
//! | community  | SEVERE_TOXICITY          | LIKELY_TO_REJECT                |
//! |------------|--------------------------|---------------------------------|
//! | Dissenter  | ~20% ≥ 0.5, ~10% ≥ 0.75  | ~75% ≥ 0.5, ~50% ≥ 0.75         |
//! | Reddit     | ~10% ≥ 0.5               | roughly uniform                 |
//! | Daily Mail | low                      | between Reddit and Dissenter-lite |
//! | NY Times   | lowest                   | lowest (moderated to house style) |

use crate::dist::{beta, coin, geometric};
use crate::textgen::CommentSpec;
use rand::Rng;
use textkit::langid::Lang;

/// The four comment communities of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Community {
    /// Dissenter comments and replies.
    Dissenter,
    /// Dissenter users' Reddit comments.
    Reddit,
    /// NY Times comment sections.
    NyTimes,
    /// Daily Mail comment sections.
    DailyMail,
}

/// Draw the latent score targets for one comment from `community`.
///
/// `heat ∈ [0, 1]` shifts the distribution toward toxicity — the world
/// generator feeds in per-user toxicity and per-URL bias context here.
pub fn sample_spec<R: Rng>(rng: &mut R, community: Community, heat: f64, lang: Lang) -> CommentSpec {
    let tokens = 4 + geometric(rng, 0.10, 120) as usize;
    // Heat above 1.0 is reserved for the planted hateful core, whose
    // members need a median comment toxicity ≥ 0.3 (§4.5.1).
    let heat = heat.clamp(0.0, 1.5);
    match community {
        Community::Dissenter => {
            // Hot comments carry real hate-lexicon density; the share of
            // hot comments rises with user/context heat.
            let p_hot = (0.10 + 0.45 * heat).min(0.85);
            let severe = if coin(rng, p_hot) {
                beta(rng, 4.0, 2.2) // mean ≈ 0.65
            } else {
                beta(rng, 1.1, 9.0) // mean ≈ 0.11
            };
            // Mixture tuned so the *realized* (classifier-recovered)
            // distribution lands on the paper's quantiles: ~75% ≥ 0.5 and
            // ~50% ≥ 0.75 after channel coupling inflates scores slightly.
            let reject = if coin(rng, 0.70) { beta(rng, 4.0, 1.8) } else { beta(rng, 1.5, 4.5) };
            let obscene = if coin(rng, 0.10 + 0.1 * heat) {
                beta(rng, 3.0, 2.0)
            } else {
                beta(rng, 1.0, 14.0)
            };
            let attack = if coin(rng, 0.12) { beta(rng, 3.0, 2.5) } else { beta(rng, 1.0, 10.0) };
            CommentSpec { lang, severe, obscene, attack, reject: reject.max(severe), tokens }
        }
        Community::Reddit => {
            let severe = if coin(rng, 0.13 + 0.06 * heat) {
                beta(rng, 3.5, 2.5)
            } else {
                beta(rng, 1.0, 11.0)
            };
            // "mostly uniform" rejection distribution, kept slightly below
            // uniform so realized scores (inflated by channel coupling)
            // land between Daily Mail and NY Times as in Fig. 7a.
            let reject = beta(rng, 1.0, 1.5);
            let obscene = if coin(rng, 0.07) { beta(rng, 3.0, 2.5) } else { beta(rng, 1.0, 16.0) };
            let attack = if coin(rng, 0.09) { beta(rng, 2.5, 3.0) } else { beta(rng, 1.0, 11.0) };
            CommentSpec { lang, severe, obscene, attack, reject: reject.max(severe * 0.9), tokens }
        }
        Community::DailyMail => {
            let severe = if coin(rng, 0.05) { beta(rng, 3.0, 3.0) } else { beta(rng, 1.0, 13.0) };
            let reject = beta(rng, 2.1, 1.7); // mean ≈ 0.55
            let obscene = beta(rng, 1.0, 18.0);
            let attack = if coin(rng, 0.08) { beta(rng, 2.5, 3.0) } else { beta(rng, 1.0, 12.0) };
            CommentSpec { lang, severe, obscene, attack, reject, tokens }
        }
        Community::NyTimes => {
            let severe = if coin(rng, 0.015) { beta(rng, 2.5, 3.5) } else { beta(rng, 1.0, 16.0) };
            let reject = beta(rng, 1.2, 3.4); // mean ≈ 0.26
            let obscene = beta(rng, 1.0, 24.0);
            let attack = if coin(rng, 0.06) { beta(rng, 2.0, 3.5) } else { beta(rng, 1.0, 13.0) };
            CommentSpec { lang, severe, obscene, attack, reject, tokens }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textgen::TextGen;
    use classify::PerspectiveModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Generate `n` comments of a community and return realized
    /// (severe, reject) score vectors through the real classifier.
    fn realized(community: Community, n: usize) -> (Vec<f64>, Vec<f64>) {
        let gen = TextGen::standard();
        let model = PerspectiveModel::standard();
        let mut rng = StdRng::seed_from_u64(21);
        let mut severe = Vec::with_capacity(n);
        let mut reject = Vec::with_capacity(n);
        for _ in 0..n {
            let heat = beta(&mut rng, 2.0, 6.0);
            let spec = sample_spec(&mut rng, community, heat, Lang::En);
            let s = model.score(&gen.generate(&mut rng, &spec));
            severe.push(s.severe_toxicity);
            reject.push(s.likely_to_reject);
        }
        (severe, reject)
    }

    fn frac_ge(xs: &[f64], t: f64) -> f64 {
        xs.iter().filter(|&&x| x >= t).count() as f64 / xs.len() as f64
    }

    #[test]
    fn dissenter_severe_quantiles_match_paper() {
        let (severe, _) = realized(Community::Dissenter, 3_000);
        let p50 = frac_ge(&severe, 0.5);
        let p75 = frac_ge(&severe, 0.75);
        assert!((0.12..0.30).contains(&p50), "P(severe≥0.5) = {p50}");
        assert!((0.05..0.18).contains(&p75), "P(severe≥0.75) = {p75}");
    }

    #[test]
    fn dissenter_reject_quantiles_match_paper() {
        let (_, reject) = realized(Community::Dissenter, 3_000);
        let p50 = frac_ge(&reject, 0.5);
        let p75 = frac_ge(&reject, 0.75);
        assert!((0.6..0.9).contains(&p50), "P(reject≥0.5) = {p50}");
        assert!((0.35..0.65).contains(&p75), "P(reject≥0.75) = {p75}");
    }

    #[test]
    fn severe_ordering_matches_figure_7b() {
        let d = frac_ge(&realized(Community::Dissenter, 2_000).0, 0.5);
        let r = frac_ge(&realized(Community::Reddit, 2_000).0, 0.5);
        let m = frac_ge(&realized(Community::DailyMail, 2_000).0, 0.5);
        let n = frac_ge(&realized(Community::NyTimes, 2_000).0, 0.5);
        assert!(d > r && r > m && m > n, "d={d} r={r} m={m} n={n}");
        // "about double the fraction of Reddit".
        assert!(d / r > 1.4 && d / r < 3.5, "ratio {}", d / r);
    }

    #[test]
    fn reject_ordering_matches_figure_7a() {
        let d = frac_ge(&realized(Community::Dissenter, 2_000).1, 0.5);
        let r = frac_ge(&realized(Community::Reddit, 2_000).1, 0.5);
        let m = frac_ge(&realized(Community::DailyMail, 2_000).1, 0.5);
        let n = frac_ge(&realized(Community::NyTimes, 2_000).1, 0.5);
        assert!(d > m && m > r && r > n, "d={d} m={m} r={r} n={n}");
    }
}
