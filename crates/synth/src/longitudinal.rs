//! Per-epoch world evolution for the longitudinal study engine.
//!
//! The base generator ([`crate::world::generate_sharded`]) produces the
//! paper's 14-month snapshot — every timestamp strictly before
//! `STUDY_END` (window 0). [`apply_epoch`] extends that world by one
//! epoch: new users joining along a compounding adoption curve, new
//! comments and votes on existing threads, a few fresh follow edges,
//! mid-study bans, and Gab account deletions that leave Dissenter
//! ghosts.
//!
//! Three contracts make the sweep≡one-shot differential oracle hold:
//!
//! 1. **Append-only time.** Every entity minted in epoch `e` is
//!    timestamped inside `[epoch_start(e), epoch_end(e))`; nothing is
//!    backdated. Bans flip metadata flags and deletions only hide the
//!    Gab account, so the comments of window `w` in sweep `w`'s world
//!    are byte-identical to the comments of window `w` in the final
//!    world.
//! 2. **Per-epoch seed streams.** Epoch `e`'s randomness derives only
//!    from `(cfg.seed, e)` — `child_seed(cfg.seed, 1000 + e)` — so any
//!    epoch's delta is reproducible in isolation and independent of how
//!    many epochs follow it.
//! 3. **Worker transparency.** Only text synthesis fans out, on the
//!    same per-comment seed streams the base generator uses, so the
//!    evolved world is byte-identical at any worker count.

use crate::baselines::{sample_spec, Community};
use crate::config::WorldConfig;
use crate::dist::{beta, child_seed, coin, geometric, Categorical};
use crate::names;
use crate::textgen::{CommentSpec, TextGen};
use crate::world::{
    bias_attack_mult, bias_severity_mult, domain_bias, generate_sharded, Bias, GroundTruth,
};
use analysis::url::ParsedUrl;
pub use analysis::windowed::{epoch_end, epoch_start, window_of, EPOCH_SECS};
use ids::{EntityKind, ObjectIdGen, Timestamp};
use platform::{Comment, User, UserFlags, ViewFilters, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use textkit::langid::Lang;

/// Fraction of the current population each epoch adds (users and
/// comments alike) — a compounding ~20%/epoch ramp, the steep early
/// part of the paper's Figure-2 adoption curve extrapolated forward.
pub const EPOCH_GROWTH: f64 = 0.2;

/// The world as of the end of epoch `epoch` (0 = the base snapshot).
/// Built by generating the base world and replaying every epoch delta
/// in order; any epoch is reproducible in isolation because epoch `k`'s
/// randomness depends only on `(cfg.seed, k)`.
pub fn world_at_epoch(cfg: &WorldConfig, epoch: u32, workers: usize) -> (World, GroundTruth) {
    let (mut world, mut truth) = generate_sharded(cfg, workers);
    for k in 1..=epoch {
        apply_epoch(&mut world, &mut truth, cfg, k, workers);
    }
    (world, truth)
}

/// Advance `world` by one epoch (`epoch ≥ 1`), in place. Must be called
/// with epochs in ascending order starting from the base snapshot.
pub fn apply_epoch(
    world: &mut World,
    truth: &mut GroundTruth,
    cfg: &WorldConfig,
    epoch: u32,
    workers: usize,
) {
    assert!(epoch >= 1, "epoch 0 is the base snapshot");
    let eseed = child_seed(cfg.seed, 1_000 + epoch as u64);
    let start = epoch_start(epoch);
    let end = epoch_end(epoch);
    let gen = TextGen::standard();

    // ---- 1. New users ----------------------------------------------------
    // All newcomers are Dissenter users (the growth of interest); Gab IDs
    // continue the counter above the enumeration bound, with the same
    // occasional-gap anomaly the base allocator plants.
    let mut rng_u = StdRng::seed_from_u64(child_seed(eseed, 1));
    let mut author_gen = ObjectIdGen::new(EntityKind::Author, child_seed(eseed, 2));
    let lang_table = Categorical::new(&[
        (Lang::En, 0.942),
        (Lang::De, 0.030),
        (Lang::Fr, 0.0040),
        (Lang::Es, 0.0040),
        (Lang::It, 0.0040),
        (Lang::En, 0.016),
    ]);
    let n_new = ((world.dissenter_user_count() as f64 * EPOCH_GROWTH).round() as usize).max(2);
    let serial_base = world.user_count() as u64;
    let mut next_gab = world.gab.max_id();
    for i in 0..n_new {
        next_gab += 1 + if coin(&mut rng_u, 0.02) { rng_u.gen_range(1..4) } else { 0 };
        let join: Timestamp = rng_u.gen_range(start..end);
        let author_id = author_gen.next(join);
        let flags = UserFlags {
            can_login: coin(&mut rng_u, 0.9997),
            can_post: coin(&mut rng_u, 0.9997),
            can_report: coin(&mut rng_u, 0.9999),
            can_chat: coin(&mut rng_u, 0.9997),
            can_vote: coin(&mut rng_u, 0.9997),
            is_banned: false,
            is_admin: false,
            is_moderator: false,
            is_pro: coin(&mut rng_u, 0.0267),
            is_donor: coin(&mut rng_u, 0.0084),
            is_investor: coin(&mut rng_u, 0.0029),
            is_premium: coin(&mut rng_u, 0.0013),
            is_tippable: coin(&mut rng_u, 0.0015),
            is_private: coin(&mut rng_u, 0.039),
            verified: coin(&mut rng_u, 0.0103),
        };
        let filters = ViewFilters {
            pro: coin(&mut rng_u, 0.9985),
            verified: coin(&mut rng_u, 0.9987),
            standard: coin(&mut rng_u, 0.9989),
            nsfw: coin(&mut rng_u, 0.1504),
            offensive: coin(&mut rng_u, 0.0733),
        };
        let lang = *lang_table.sample(&mut rng_u);
        let bio = if coin(&mut rng_u, 0.25) {
            "tired of censorship and cancel culture".to_owned()
        } else if coin(&mut rng_u, 0.3) {
            "speaking freely about the news".to_owned()
        } else {
            String::new()
        };
        let username = names::username(&mut rng_u, serial_base + i as u64);
        let display_name = names::display_name(&username);
        let idx = world.add_user(User {
            author_id: Some(author_id),
            gab_id: next_gab,
            username,
            display_name,
            bio,
            created_at: join,
            flags,
            filters,
            language: lang.code().to_owned(),
            gab_deleted: false,
        });
        truth.dissenter_indices.push(idx);
        truth.active_indices.push(idx);
        truth.user_heat.push(beta(&mut rng_u, 1.3, 8.0));
    }

    // ---- 2. New follow edges --------------------------------------------
    let mut rng_s = StdRng::seed_from_u64(child_seed(eseed, 4));
    let n_active = truth.active_indices.len();
    let n_edges = (n_active / 8).max(4);
    for _ in 0..n_edges {
        let a = truth.active_indices[rng_s.gen_range(0..n_active)];
        let b = truth.active_indices[rng_s.gen_range(0..n_active)];
        world.gab.follow(a, b);
    }

    // ---- 3. New comments on existing threads -----------------------------
    let mut rng_c = StdRng::seed_from_u64(child_seed(eseed, 7));
    let n_c = ((world.dissenter.total_comments() as f64 * EPOCH_GROWTH).round() as usize).max(8);
    let n_urls = world.dissenter.url_count();
    struct Pending {
        author_idx: u32,
        url_pos: usize,
        spec: CommentSpec,
        created: Timestamp,
        text: String,
    }
    let mut pending: Vec<Pending> = Vec::with_capacity(n_c);
    let mut url_severity: std::collections::HashMap<usize, (f64, u32)> =
        std::collections::HashMap::new();
    for _ in 0..n_c {
        let g = rng_c.gen_range(0..n_active);
        let user_idx = truth.active_indices[g];
        let url_pos = rng_c.gen_range(0..n_urls);
        let url = &world.dissenter.urls()[url_pos];
        let bias = ParsedUrl::parse(&url.url)
            .filter(|p| !p.host.is_empty())
            .map(|p| domain_bias(&p.domain()))
            .unwrap_or(Bias::NotRanked);
        let heat = truth.user_heat[g];
        let lang = match world.user(user_idx).language.as_str() {
            "de" => Lang::De,
            "fr" => Lang::Fr,
            "es" => Lang::Es,
            "it" => Lang::It,
            _ => Lang::En,
        };
        let mut spec = sample_spec(&mut rng_c, Community::Dissenter, heat, lang);
        spec.severe = (spec.severe * bias_severity_mult(bias)).min(0.98);
        spec.attack = (spec.attack * bias_attack_mult(bias)).min(0.98);
        let lo = start.max(world.user(user_idx).created_at);
        let created = rng_c.gen_range(lo..end);
        let e = url_severity.entry(url_pos).or_insert((0.0, 0));
        e.0 += spec.severe;
        e.1 += 1;
        pending.push(Pending { author_idx: user_idx, url_pos, spec, created, text: String::new() });
    }
    {
        let specs: Vec<CommentSpec> = pending.iter().map(|p| p.spec).collect();
        let texts = gen.generate_batch(&specs, child_seed(eseed, 13), workers);
        for (p, text) in pending.iter_mut().zip(texts) {
            p.text = text;
        }
    }

    // Shadow labels: offensive = the epoch's top-rejection comments;
    // NSFW = author-chosen from the top quarter, as in the base pass.
    let n_off = (pending.len() / 200).max(1).min(pending.len());
    let n_nsfw = (pending.len() / 150).max(1).min(pending.len());
    let mut by_reject: Vec<usize> = (0..pending.len()).collect();
    by_reject.sort_by(|&a, &b| {
        pending[b].spec.reject.partial_cmp(&pending[a].spec.reject).expect("finite rejects")
    });
    let mut offensive_flags = vec![false; pending.len()];
    for &i in by_reject.iter().take(n_off) {
        offensive_flags[i] = true;
    }
    let mut nsfw_flags = vec![false; pending.len()];
    let mut pool: Vec<usize> = by_reject[..(pending.len() / 4).max(n_nsfw)].to_vec();
    for i in (1..pool.len()).rev() {
        pool.swap(i, rng_c.gen_range(0..=i));
    }
    for &i in pool.iter().take(n_nsfw) {
        nsfw_flags[i] = true;
    }

    let mut comment_gen = ObjectIdGen::new(EntityKind::Comment, child_seed(eseed, 8));
    let mut order: Vec<usize> = (0..pending.len()).collect();
    order.sort_by_key(|&i| pending[i].created);
    let mut last_in_thread: std::collections::HashMap<usize, Vec<ids::ObjectId>> =
        std::collections::HashMap::new();
    for &i in &order {
        let p = &pending[i];
        let id = comment_gen.next(p.created);
        let author_id =
            world.user(p.author_idx).author_id.expect("active users are Dissenter users");
        let url_id = world.dissenter.urls()[p.url_pos].id;
        let thread = last_in_thread.entry(p.url_pos).or_default();
        let parent = if !thread.is_empty() && coin(&mut rng_c, 0.35) {
            Some(thread[rng_c.gen_range(0..thread.len())])
        } else {
            None
        };
        world.dissenter.add_comment(Comment {
            id,
            url_id,
            author_id,
            parent,
            text: p.text.clone(),
            created_at: p.created,
            nsfw: nsfw_flags[i],
            offensive: offensive_flags[i],
        });
        thread.push(id);
        if thread.len() > 64 {
            thread.remove(0);
        }
    }

    // ---- 4. Votes on the epoch's threads ---------------------------------
    let mut rng_v = StdRng::seed_from_u64(child_seed(eseed, 9));
    let mut touched: Vec<usize> = url_severity.keys().copied().collect();
    touched.sort_unstable();
    for url_pos in touched {
        let (sev_sum, n) = url_severity[&url_pos];
        let mean_sev = if n > 0 { sev_sum / n as f64 } else { 0.0 };
        let s_norm = (mean_sev / 0.6).min(1.0);
        if !coin(&mut rng_v, 0.32 * (1.0 - 0.75 * s_norm)) {
            continue;
        }
        let magnitude = geometric(&mut rng_v, (0.40 + 0.45 * s_norm).min(0.95), 40);
        let negative = coin(&mut rng_v, 0.33 + 0.30 * s_norm);
        let url_id = world.dissenter.urls()[url_pos].id;
        for _ in 0..magnitude {
            world
                .dissenter
                .vote(url_id, if negative { platform::Vote::Down } else { platform::Vote::Up });
        }
    }

    // ---- 5. Mid-study bans ------------------------------------------------
    let mut rng_b = StdRng::seed_from_u64(child_seed(eseed, 5));
    let n_ban = if coin(&mut rng_b, 0.5) { 1 } else { 2 };
    let mut banned = 0;
    for _ in 0..64 {
        if banned >= n_ban {
            break;
        }
        let idx = truth.active_indices[rng_b.gen_range(0..n_active)];
        let u = &world.users[idx as usize];
        if u.flags.is_admin || u.flags.is_banned || u.gab_deleted {
            continue;
        }
        let u = &mut world.users[idx as usize];
        u.flags.is_banned = true;
        u.flags.can_login = false;
        u.flags.can_post = false;
        banned += 1;
    }

    // ---- 6. Mid-study Gab account deletions -------------------------------
    // The account vanishes from the Gab API; the Dissenter side keeps the
    // user record and every comment — a fresh §4.1.1 ghost.
    let n_del = if coin(&mut rng_b, 0.5) { 1 } else { 2 };
    let mut deleted = 0;
    for _ in 0..64 {
        if deleted >= n_del {
            break;
        }
        let idx = truth.active_indices[rng_b.gen_range(0..n_active)];
        let u = &world.users[idx as usize];
        if u.flags.is_admin || u.flags.is_banned || u.gab_deleted {
            continue;
        }
        let gab_id = u.gab_id;
        world.users[idx as usize].gab_deleted = true;
        world.gab.unregister(gab_id);
        deleted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;
    use ids::STUDY_END;

    fn cfg() -> WorldConfig {
        WorldConfig { scale: Scale::Custom(0.003), ..WorldConfig::small() }
    }

    #[test]
    fn epochs_compose_and_reproduce() {
        let (w2a, _) = world_at_epoch(&cfg(), 2, 1);
        let (w2b, _) = world_at_epoch(&cfg(), 2, 1);
        assert_eq!(w2a.content_hash(), w2b.content_hash(), "epoch worlds must reproduce");
        // Applying epoch 2 on top of the epoch-1 world is the same thing.
        let (mut w1, mut t1) = world_at_epoch(&cfg(), 1, 1);
        apply_epoch(&mut w1, &mut t1, &cfg(), 2, 1);
        assert_eq!(w1.content_hash(), w2a.content_hash(), "epochs must compose");
        let (w0, _) = world_at_epoch(&cfg(), 0, 1);
        assert_ne!(w0.content_hash(), w2a.content_hash(), "epochs must change the world");
    }

    #[test]
    fn worker_count_does_not_change_epoch_worlds() {
        let (serial, _) = world_at_epoch(&cfg(), 2, 1);
        let (par, _) = world_at_epoch(&cfg(), 2, 8);
        assert_eq!(serial.content_hash(), par.content_hash());
    }

    #[test]
    fn epochs_append_without_backdating() {
        let (base, _) = world_at_epoch(&cfg(), 0, 1);
        let (evolved, _) = world_at_epoch(&cfg(), 2, 1);
        assert!(evolved.user_count() > base.user_count(), "users must grow");
        assert!(
            evolved.dissenter.total_comments() > base.dissenter.total_comments(),
            "comments must grow"
        );
        // Base comments survive unchanged, in order.
        for (a, b) in base.dissenter.comments().iter().zip(evolved.dissenter.comments()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.text, b.text);
        }
        // Every appended entity is timestamped inside its epoch window.
        for c in &evolved.dissenter.comments()[base.dissenter.total_comments()..] {
            let w = window_of(c.created_at);
            assert!((1..=2).contains(&w), "epoch comment in window {w}");
        }
        for u in &evolved.users[base.user_count()..] {
            assert!(u.created_at >= STUDY_END, "new users join after the study window");
        }
    }

    #[test]
    fn epochs_ban_and_delete_mid_study() {
        let (base, _) = world_at_epoch(&cfg(), 0, 1);
        let (evolved, _) = world_at_epoch(&cfg(), 1, 1);
        let banned = |w: &World| w.users.iter().filter(|u| u.flags.is_banned).count();
        let deleted = |w: &World| w.users.iter().filter(|u| u.gab_deleted).count();
        assert!(banned(&evolved) > banned(&base), "an epoch must ban someone");
        assert!(deleted(&evolved) > deleted(&base), "an epoch must delete an account");
        // Deletions leave ghosts: user record present, Gab API answer gone.
        let ghost = evolved
            .users
            .iter()
            .find(|u| u.gab_deleted && !base.users.iter().any(|b| b.username == u.username && b.gab_deleted));
        if let Some(g) = ghost {
            assert!(g.author_id.is_some());
            assert_eq!(evolved.gab.user_by_gab_id(g.gab_id), None);
        }
    }
}
