//! Run statistics: the observability registry distilled into the
//! structured summary [`run_study`](crate::run_study) attaches to every
//! [`Study`](crate::Study).
//!
//! The split follows the obs determinism contract: `phases[*]` and
//! `scorers[*].comments` come from counters and replay identically for
//! identical seeds; stage wall-clocks and throughput rates are
//! timing-derived and may differ between otherwise identical runs.

use crawler::Phase;

/// Wall-clock for one pipeline stage (from the `stage.<name>` span).
#[derive(Debug, Clone, PartialEq)]
pub struct StageTime {
    /// Stage name (`synth`, `serve`, `crawl`, `report`, `svm`).
    pub name: String,
    /// Elapsed wall-clock, microseconds.
    pub wall_us: u64,
}

/// Coverage accounting for one crawl phase (from `crawl.<phase>.*`
/// counters; `attempted == succeeded + dead_lettered` always holds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseCoverage {
    /// Phase name, pipeline order.
    pub name: String,
    /// Logical fetches started.
    pub attempted: u64,
    /// Logical fetches that delivered a response.
    pub succeeded: u64,
    /// Extra wire attempts spent retrying.
    pub retried: u64,
    /// Logical fetches abandoned to the dead-letter list.
    pub dead_lettered: u64,
}

/// Throughput for one scorer (from `classify.<scorer>.*`).
#[derive(Debug, Clone, PartialEq)]
pub struct ScorerThroughput {
    /// Scorer name (`dictionary`, `perspective`, `svm`).
    pub name: String,
    /// Comments scored (deterministic).
    pub comments: u64,
    /// Comments per second of scorer busy time (timing-derived).
    pub comments_per_sec: f64,
}

/// Scatter-gather accounting for one sharded pipeline stage (from the
/// `shard.<label>.*` metrics emitted by
/// [`httpnet::ThreadPool::scatter_labeled`] and the scoring passes).
///
/// `jobs` and `items` are deterministic *and* worker-invariant: shard
/// geometry derives from input size and a fixed shard size, never from
/// the worker count. `busy_us` is timing-derived.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Scatter label (`classify.score`, `svm.cv`, `svm.apply`).
    pub name: String,
    /// Shards executed (deterministic).
    pub jobs: u64,
    /// Items processed across shards (deterministic).
    pub items: u64,
    /// Total per-shard busy time, microseconds (timing-derived).
    pub busy_us: u64,
}

/// The run's observability summary.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Pipeline stage wall-clocks, in pipeline order.
    pub stages: Vec<StageTime>,
    /// Per-phase crawl coverage, in pipeline order.
    pub phases: Vec<PhaseCoverage>,
    /// Per-scorer classification throughput, sorted by name.
    pub scorers: Vec<ScorerThroughput>,
    /// Per-label sharded-stage accounting, sorted by name.
    pub shards: Vec<ShardStats>,
    /// Peak resident-set size over the whole run in bytes (`VmHWM`;
    /// 0 where the platform cannot measure it).
    pub peak_rss_bytes: u64,
    /// The full metric snapshot (counters, gauges, histograms).
    pub snapshot: obs::Snapshot,
    /// The structured event trace as JSON Lines.
    pub events_jsonl: String,
}

/// Pipeline stage order for [`RunStats::stages`].
const STAGE_ORDER: [&str; 5] = ["synth", "serve", "crawl", "report", "svm"];

/// Distill `registry` into a [`RunStats`].
pub fn collect(registry: &obs::Registry) -> RunStats {
    let snapshot = registry.snapshot();

    let mut stages: Vec<StageTime> = STAGE_ORDER
        .iter()
        .filter_map(|name| {
            snapshot.histogram(&format!("stage.{name}")).map(|h| StageTime {
                name: (*name).to_owned(),
                wall_us: h.sum_ns / 1_000,
            })
        })
        .collect();
    // Any stage spans outside the known pipeline, appended in name order.
    for (name, h) in &snapshot.histograms {
        if let Some(stage) = name.strip_prefix("stage.") {
            if !STAGE_ORDER.contains(&stage) {
                stages.push(StageTime { name: stage.to_owned(), wall_us: h.sum_ns / 1_000 });
            }
        }
    }

    let phases = Phase::ALL
        .iter()
        .map(|p| {
            let get =
                |suffix: &str| snapshot.counter(&format!("crawl.{}.{suffix}", p.name())).unwrap_or(0);
            PhaseCoverage {
                name: p.name().to_owned(),
                attempted: get("attempted"),
                succeeded: get("succeeded"),
                retried: get("retried"),
                dead_lettered: get("dead_lettered"),
            }
        })
        .collect();

    let scorers = snapshot
        .counters_with_prefix("classify.")
        .filter_map(|(name, comments)| {
            let scorer = name.strip_prefix("classify.")?.strip_suffix(".comments")?;
            Some(ScorerThroughput {
                name: scorer.to_owned(),
                comments,
                comments_per_sec: snapshot
                    .gauge(&format!("classify.{scorer}.comments_per_sec"))
                    .unwrap_or(0.0),
            })
        })
        .collect();

    let mut shards: Vec<ShardStats> = snapshot
        .counters_with_prefix("shard.")
        .filter_map(|(name, jobs)| {
            let label = name.strip_prefix("shard.")?.strip_suffix(".jobs")?;
            Some(ShardStats {
                name: label.to_owned(),
                jobs,
                items: snapshot.counter(&format!("shard.{label}.items")).unwrap_or(0),
                busy_us: snapshot
                    .histogram(&format!("shard.{label}.busy"))
                    .map(|h| h.sum_ns / 1_000)
                    .unwrap_or(0),
            })
        })
        .collect();
    shards.sort_by(|a, b| a.name.cmp(&b.name));

    let peak_rss_bytes = snapshot.gauge("mem.peak_rss_bytes").unwrap_or(0.0) as u64;

    RunStats {
        stages,
        phases,
        scorers,
        shards,
        peak_rss_bytes,
        snapshot,
        events_jsonl: registry.events_jsonl(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn collect_orders_stages_and_fills_sections() {
        let r = obs::Registry::new();
        r.histogram("stage.report").observe(Duration::from_millis(3));
        r.histogram("stage.synth").observe(Duration::from_millis(1));
        r.histogram("stage.custom").observe(Duration::from_millis(2));
        r.add("crawl.probe.attempted", 10);
        r.add("crawl.probe.succeeded", 9);
        r.add("crawl.probe.dead_lettered", 1);
        r.add("classify.dictionary.comments", 40);
        r.set_gauge("classify.dictionary.comments_per_sec", 123.0);
        r.add("shard.svm.cv.jobs", 15);
        r.add("shard.classify.score.jobs", 3);
        r.add("shard.classify.score.items", 1_200);
        r.histogram("shard.classify.score.busy").observe(Duration::from_millis(2));

        let rs = collect(&r);
        let names: Vec<&str> = rs.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["synth", "report", "custom"], "pipeline order, extras last");
        assert_eq!(rs.phases.len(), 7, "every phase present even when idle");
        let probe = rs.phases.iter().find(|p| p.name == "probe").unwrap();
        assert_eq!(probe.attempted, probe.succeeded + probe.dead_lettered);
        assert_eq!(rs.scorers.len(), 1);
        assert_eq!(rs.scorers[0].comments, 40);
        assert_eq!(rs.scorers[0].comments_per_sec, 123.0);
        let shard_names: Vec<&str> = rs.shards.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(shard_names, vec!["classify.score", "svm.cv"], "sorted by label");
        assert_eq!(rs.shards[0].jobs, 3);
        assert_eq!(rs.shards[0].items, 1_200);
        assert_eq!(rs.shards[0].busy_us, 2_000);
        assert_eq!(rs.shards[1].items, 0, "labels without item counters read zero");
    }
}
