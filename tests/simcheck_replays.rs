//! Re-execute every committed simcheck replay.
//!
//! `simcheck/replays/` is the pinned regression corpus: each file is a
//! shrunk scenario that once tripped an oracle (the `check`/`detail`
//! fields record what it caught). After the corresponding fix every
//! committed replay must pass the full oracle suite, deterministically,
//! on every `cargo test`.

use dissenter_repro::simcheck::{check_scenario, replay};
use std::path::Path;

#[test]
fn every_committed_replay_passes_the_oracles() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join(replay::DEFAULT_DIR);
    let replays = replay::load_dir(&dir).expect("replay corpus loads");
    assert!(
        !replays.is_empty(),
        "no committed replays under {} — the regression corpus must not be empty",
        dir.display()
    );
    for (path, r) in replays {
        println!(
            "replaying {} (originally caught: [{}] {})",
            path.display(),
            r.check,
            r.detail
        );
        if let Err(f) = check_scenario(&r.scenario) {
            panic!("{} regressed: {f}", path.display());
        }
    }
}
