//! HTTP conformance tests for the conditional-request protocol: ETag
//! stability, `304` semantics on the wire, `If-None-Match: *`,
//! mutation-driven invalidation, rate-limit accounting under
//! revalidation, and the shadow-visibility cache-coherence contract.

use httpnet::{Client, Handler, Request, RevalidationCache, ServerConfig, Status};
use platform::World;
use std::io::{Read, Write};
use std::sync::{Arc, OnceLock};
use synth::config::Scale;
use synth::WorldConfig;
use webfront::dissenter::DissenterFront;
use webfront::{SimFronts, SimServices};

struct Fixture {
    world: Arc<World>,
    services: SimServices,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let cfg = WorldConfig { scale: Scale::Custom(0.003), ..WorldConfig::small() };
        let (world, _) = synth::generate(&cfg);
        let world = Arc::new(world);
        let services =
            SimServices::start(world.clone(), ServerConfig::default()).expect("services");
        Fixture { world, services }
    })
}

fn dissenter_username(world: &World) -> String {
    world
        .users
        .iter()
        .find(|u| u.author_id.is_some() && !u.gab_deleted)
        .expect("has dissenter users")
        .username
        .clone()
}

fn get_with(front: &DissenterFront, target: &str, headers: &[(&str, &str)]) -> httpnet::Response {
    let mut req = Request::get(target);
    for (name, value) in headers {
        req.headers.add(name, value);
    }
    front.handle(&req)
}

#[test]
fn etags_are_stable_across_identical_renders_and_fronts() {
    let fx = fixture();
    let name = dissenter_username(&fx.world);
    let target = format!("/user/{name}");
    let front = DissenterFront::new(fx.world.clone());

    let first = get_with(&front, &target, &[]);
    let second = get_with(&front, &target, &[]);
    assert_eq!(first.status, Status::OK);
    let tag = first.etag().expect("200 is tagged");
    assert_eq!(second.etag(), Some(tag), "identical renders carry identical validators");

    // A different front over the same world derives the same tag — the
    // validator is a function of content, not of process state.
    let other = DissenterFront::new(fx.world.clone());
    let third = get_with(&other, &target, &[]);
    assert_eq!(third.etag(), Some(tag), "etag is content-derived");
}

#[test]
fn not_modified_has_no_body_on_the_wire() {
    let fx = fixture();
    let name = dissenter_username(&fx.world);
    let target = format!("/user/{name}");
    let addr = fx.services.dissenter.addr();

    let raw = |extra: &str| -> (String, String) {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {target} HTTP/1.1\r\nConnection: close\r\n{extra}\r\n").unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).expect("read");
        let text = String::from_utf8_lossy(&buf).into_owned();
        let (head, body) = text.split_once("\r\n\r\n").expect("well-formed response");
        (head.to_owned(), body.to_owned())
    };

    let (head, body) = raw("");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(body.len() >= 10 * 1024, "full body first");
    let tag = head
        .lines()
        .find_map(|l| l.strip_prefix("ETag: ").or_else(|| l.strip_prefix("etag: ")))
        .expect("tagged")
        .to_owned();

    let (head2, body2) = raw(&format!("If-None-Match: {tag}\r\n"));
    assert!(head2.starts_with("HTTP/1.1 304"), "fresh validator revalidates: {head2}");
    assert!(body2.is_empty(), "a 304 carries no body, got {} bytes", body2.len());
    assert!(head2.contains(&tag), "the 304 repeats the validator");
}

#[test]
fn if_none_match_star_matches_any_representation() {
    let fx = fixture();
    let name = dissenter_username(&fx.world);
    let front = DissenterFront::new(fx.world.clone());
    let resp = get_with(&front, &format!("/user/{name}"), &[("If-None-Match", "*")]);
    assert_eq!(resp.status, Status::NOT_MODIFIED, "`*` matches any current representation");
    assert!(resp.body.is_empty());
}

#[test]
fn vote_mutation_invalidates_every_outstanding_validator() {
    let fx = fixture();
    let url = fx.world.dissenter.urls().first().expect("urls").clone();
    let front = DissenterFront::new(fx.world.clone());
    let target = format!("/url/{}", url.id);

    let before = get_with(&front, &target, &[]);
    assert_eq!(before.status, Status::OK);
    let tag = before.etag().expect("tagged").to_owned();
    let upvotes = |body: &str| -> u64 {
        let marker = "data-upvotes=\"";
        let rest = &body[body.find(marker).expect("upvotes attr") + marker.len()..];
        rest[..rest.find('"').unwrap()].parse().expect("numeric")
    };
    let n = upvotes(&before.text());

    let mut vote = Request::get(&format!("/url/{}/vote?dir=up", url.id));
    vote.method = "POST".into();
    let voted = front.handle(&vote);
    assert_eq!(voted.status, Status::OK, "vote accepted");
    assert!(voted.text().contains(&format!("\"upvotes\":{}", n + 1)), "{}", voted.text());

    // The old validator must no longer match: a conditional request gets
    // the fresh body with the new count and a new tag.
    let after = get_with(&front, &target, &[("If-None-Match", &tag)]);
    assert_eq!(after.status, Status::OK, "stale validator re-renders");
    assert_eq!(upvotes(&after.text()), n + 1, "mutation visible in the body");
    assert_ne!(after.etag(), Some(tag.as_str()), "new representation, new validator");
}

#[test]
fn conditional_requests_still_spend_rate_budget() {
    // The per-URL limiter allows 10/min. Revalidation happens *inside*
    // the allowed branch, so 304s spend budget exactly like full
    // responses — caching must never let a client exceed the limit.
    let fx = fixture();
    let url = fx.world.dissenter.urls().last().expect("urls").clone();
    let front = DissenterFront::new(fx.world.clone());
    let target = format!("/url/{}", url.id);

    let first = get_with(&front, &target, &[]);
    assert_eq!(first.status, Status::OK);
    let tag = first.etag().expect("tagged").to_owned();
    for i in 2..=10 {
        let r = get_with(&front, &target, &[("If-None-Match", &tag)]);
        assert_eq!(r.status, Status::NOT_MODIFIED, "request {i} revalidates");
    }
    let eleventh = get_with(&front, &target, &[("If-None-Match", &tag)]);
    assert_eq!(eleventh.status, Status::TOO_MANY, "revalidations count against the limit");
}

#[test]
fn shadow_visibility_never_leaks_through_the_cache() {
    let fx = fixture();
    let shadow = fx
        .world
        .dissenter
        .comments()
        .iter()
        .find(|c| c.nsfw || c.offensive)
        .expect("shadow comments");
    let front = DissenterFront::new(fx.world.clone());
    let target = format!("/comment/{}", shadow.id);

    // Opted-in session: 200, tagged, and now resident in the response
    // cache under the session's visibility class.
    let authed = get_with(&front, &target, &[("Cookie", "session=crawler:both")]);
    assert_eq!(authed.status, Status::OK);
    let tag = authed.etag().expect("tagged").to_owned();

    // Anonymous request for the same target: the cached shadow body must
    // not be served (the cache key includes the visibility class).
    let anon = get_with(&front, &target, &[]);
    assert_eq!(anon.status, Status::NOT_FOUND, "shadow body must not leak to anon");

    // Anonymous request replaying the shadow validator: different class
    // means a different current representation, so no 304 either.
    let replay = get_with(&front, &target, &[("If-None-Match", &tag)]);
    assert_eq!(replay.status, Status::NOT_FOUND, "shadow validator must not validate for anon");

    // The opted-in session itself revalidates normally.
    let again = get_with(
        &front,
        &target,
        &[("Cookie", "session=crawler:both"), ("If-None-Match", &tag)],
    );
    assert_eq!(again.status, Status::NOT_MODIFIED);
}

#[test]
fn revalidating_client_round_trips_against_a_live_front() {
    let fx = fixture();
    let name = dissenter_username(&fx.world);
    let target = format!("/user/{name}");
    let registry = obs::Registry::new();
    let reval = RevalidationCache::new(64);
    let client = Client::builder(fx.services.dissenter.addr())
        .metrics(&registry, "dissenter")
        .revalidation_cache(reval.clone())
        .build();

    let first = client.get(&target).expect("first fetch");
    let second = client.get(&target).expect("revalidated fetch");
    assert_eq!(first.status, Status::OK);
    assert_eq!(second.status, Status::OK, "304 resolved to the cached representation");
    assert_eq!(first.body, second.body, "transparent to the caller");
    assert_eq!(reval.stats().revalidated, 1);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("http.dissenter.not_modified"), Some(1));
}

#[test]
fn per_front_server_config_overrides_apply() {
    let fx = fixture();
    let fronts = SimFronts::new(fx.world.clone());
    let tight = ServerConfig { workers: 1, queue: 4, ..ServerConfig::default() };
    let fronts = SimFronts {
        dissenter: Arc::new(
            DissenterFront::new(fx.world.clone()).with_server_config(tight.clone()),
        ),
        ..fronts
    };
    use webfront::Front as _;
    assert_eq!(fronts.dissenter.server_config(&ServerConfig::default()).workers, 1);
    assert_eq!(fronts.gab.server_config(&ServerConfig::default()).workers, ServerConfig::default().workers);

    // And the overridden fleet still starts and serves.
    let services = SimServices::start_with(fronts, ServerConfig::default()).expect("start");
    let client = Client::builder(services.dissenter.addr()).build();
    let name = dissenter_username(&fx.world);
    let r = client.get(&format!("/user/{name}")).expect("serves");
    assert_eq!(r.status, Status::OK);
}
