//! Quickstart: run the entire study at a small scale and print the
//! headline results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This exercises the full pipeline the paper describes: a synthetic
//! Dissenter/Gab/Reddit/YouTube world is generated, served over loopback
//! HTTP, crawled with the §3 methodology, classified with the §3.5 stack,
//! and analyzed into every §4 table and figure.

use dissenter_core::{render, run_study, Study};
use synth::config::Scale;

fn main() {
    let cfg = Study::builder()
        .scale(Scale::Custom(0.01))
        .svm_corpus(2_000)
        .build()
        .expect("quickstart config is valid");

    println!("Running the Dissenter measurement study (scale 1/100)…\n");
    let study = run_study(&cfg);

    println!("{}", render::overview(&study));
    println!("{}", render::fig3(&study));
    println!("{}", render::fig7(&study));
    println!("{}", render::fig9_core(&study));
    println!("{}", render::svm(&study));

    println!("Other sections: see `cargo run -p bench --bin repro -- --list`");
}
