//! The crawler's rate-limit etiquette (§3.4): when the Gab API advertises
//! exhaustion via 429 + `X-RateLimit-Reset`, the crawler sleeps until the
//! reset and resumes — completing the crawl rather than failing.

use dissenter_repro::crawler::{gab_enum, CrawlStore, Crawler, Endpoints};
use dissenter_repro::httpnet::{Client, Handler, Server, ServerConfig};
use dissenter_repro::synth::config::Scale;
use dissenter_repro::synth::WorldConfig;
use dissenter_repro::webfront::gab::GabFront;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn tight_gab_server() -> (Server, usize) {
    let cfg = WorldConfig { scale: Scale::Custom(0.0005), ..WorldConfig::small() };
    let (world, _) = dissenter_repro::synth::generate(&cfg);
    let accounts = world.gab.account_count();
    // 500 requests per 1-second window: the enumeration (~4k requests)
    // must hit the limiter several times without stalling the suite.
    let handler: Arc<dyn Handler> =
        Arc::new(GabFront::with_rate_limit(Arc::new(world), 500, 1));
    (Server::start(handler, ServerConfig::default()).expect("server"), accounts)
}

#[test]
fn enumeration_survives_tight_rate_limits() {
    let (server, accounts) = tight_gab_server();
    let dummy = server.addr(); // unused endpoints point at the same server
    let mut crawler = Crawler::new(Endpoints {
        dissenter: dummy,
        gab: server.addr(),
        reddit: dummy,
        youtube: dummy,
    });
    crawler.config.enum_gap_tolerance = 300;
    crawler.config.workers = 4;
    let mut store = CrawlStore::default();
    gab_enum::enumerate(&crawler, &mut store);
    assert_eq!(store.gab_accounts.len(), accounts, "complete despite throttling");
    assert!(
        store.stats.rate_limit_sleeps.load(Ordering::Relaxed) > 0,
        "the limiter must have been hit"
    );
}

#[test]
fn rate_limit_headers_present_and_counting() {
    let (server, _) = tight_gab_server();
    let client = Client::builder(server.addr()).build();
    let r1 = client.get("/api/v1/accounts/1").unwrap();
    let rem1: i64 = r1.headers.get("x-ratelimit-remaining").unwrap().parse().unwrap();
    let r2 = client.get("/api/v1/accounts/1").unwrap();
    let rem2: i64 = r2.headers.get("x-ratelimit-remaining").unwrap().parse().unwrap();
    assert_eq!(rem1 - 1, rem2, "remaining counts down");
    assert_eq!(r1.headers.get("x-ratelimit-limit"), Some("500"));
    assert!(r1.headers.get("x-ratelimit-reset").is_some());
}

#[test]
fn denied_requests_report_reset_time() {
    // A small limit inside a wide window trips deterministically: the 41st
    // request lands in the same 4-second window regardless of machine load
    // (the 500/1s fixture needs sub-2ms request latency to ever deny).
    let cfg = WorldConfig { scale: Scale::Custom(0.0005), ..WorldConfig::small() };
    let (world, _) = dissenter_repro::synth::generate(&cfg);
    let handler: Arc<dyn Handler> =
        Arc::new(GabFront::with_rate_limit(Arc::new(world), 40, 4));
    let server = Server::start(handler, ServerConfig::default()).expect("server");
    let client = Client::builder(server.addr()).build();
    let mut denied = None;
    for _ in 0..100 {
        let r = client.get("/api/v1/accounts/1").unwrap();
        if r.status.0 == 429 {
            denied = Some(r);
            break;
        }
    }
    let denied = denied.expect("limit must trip within 100 requests");
    let reset: u64 = denied.headers.get("x-ratelimit-reset").unwrap().parse().unwrap();
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_secs();
    assert!(reset >= now && reset <= now + 5, "reset within the short window");
}
