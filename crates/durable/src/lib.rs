#![warn(missing_docs)]
//! Durable storage engine: a segmented write-ahead log plus snapshots.
//!
//! The paper's mirror was built by a 14-month crawl; a process that long
//! *will* be killed mid-flight. This crate is the crash story: callers
//! journal opaque `(tag, payload)` records into a segmented binary WAL
//! (fixed segment header carrying magic/version/segment-number/store
//! UUID, CRC32 per record, explicit append → sync → rotate lifecycle),
//! periodically write a snapshot of their full state (fixed header,
//! per-section CRC32, written with the write → fsync → rename →
//! fsync-parent discipline), and recover after a kill by replaying the
//! latest snapshot plus the WAL tail.
//!
//! The engine knows nothing about what the records *mean* — payloads are
//! opaque bytes; `crawler::journal` owns the crawl-specific semantics.
//!
//! Durability contract:
//!
//! * a record is durable once [`DurableStore::sync`] returns after its
//!   append (appends are buffered until then);
//! * a snapshot is durable once [`DurableStore::snapshot`] returns — the
//!   temp-file + rename protocol means a crash mid-snapshot leaves the
//!   previous snapshot intact, never a torn one;
//! * [`compaction`](DurableStore::snapshot) only ever deletes WAL
//!   segments fully covered by a durable snapshot, subject to the
//!   [`Retention`] policy;
//! * on [`open`](DurableStore::open), a torn final record (the classic
//!   kill-during-append) is truncated away and recovery continues;
//!   corruption anywhere else — bad magic, wrong version, foreign store
//!   UUID, CRC mismatch in a sealed segment, a gap in the segment
//!   sequence — is detected and reported, never silently skipped.
//!
//! Metrics (when a registry is attached): counters `wal.appends`,
//! `wal.fsyncs`, `wal.rotations`, `wal.replayed_records`,
//! `snapshot.written`, and `snapshot.bytes`.
//!
//! For crash testing, a [`Failpoint`] kills the store at a seeded
//! append ("op") count — optionally leaving a torn half-record on disk —
//! by returning an [`io::ErrorKind::Interrupted`] error the caller
//! propagates; `simcheck`'s `crash.*` oracle family drives it the same
//! way `SIMCHECK_MUTATE` drives the accounting mutations.

mod crc;
mod fsutil;
mod snapshot;
mod wal;

pub use crc::crc32;
pub use fsutil::{atomic_write_file, fsync_dir};

use std::io;
use std::path::{Path, PathBuf};

/// On-disk format version stamped into every segment and snapshot
/// header.
pub const FORMAT_VERSION: u32 = 1;

/// Magic bytes opening every WAL segment.
pub const WAL_MAGIC: [u8; 8] = *b"DSRWALv1";

/// Magic bytes opening every snapshot file.
pub const SNAP_MAGIC: [u8; 8] = *b"DSRSNPv1";

/// How many compacted artifacts to keep around after a snapshot makes
/// them redundant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retention {
    /// Never delete covered segments or superseded snapshots.
    KeepAll,
    /// Keep the `n` newest covered segments and the `n + 1` newest
    /// snapshots (the live snapshot plus `n` predecessors); delete the
    /// rest.
    KeepLast(usize),
}

/// A seeded kill point for crash testing: the store fails the
/// `kill_at_op`-th append (1-based) with an
/// [`io::ErrorKind::Interrupted`] error, optionally writing a torn
/// half-record first so recovery's truncate-and-continue path is
/// exercised too.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Failpoint {
    /// Fail the nth append (1-based); `None` disables the failpoint.
    pub kill_at_op: Option<u64>,
    /// Write a torn half-record before failing.
    pub torn_tail: bool,
}

impl Failpoint {
    /// Read the failpoint from the environment (`DURABLE_KILL_AT`,
    /// `DURABLE_KILL_TORN=1`) — the external-process analogue of
    /// `SIMCHECK_MUTATE`. In-process harnesses (the simcheck oracle, the
    /// recovery bench) configure it programmatically instead.
    pub fn from_env() -> Self {
        Self {
            kill_at_op: std::env::var("DURABLE_KILL_AT").ok().and_then(|v| v.parse().ok()),
            torn_tail: std::env::var("DURABLE_KILL_TORN").is_ok_and(|v| v == "1"),
        }
    }
}

/// Store tuning.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Rotate the live segment once it holds at least this many bytes
    /// (each segment always accepts at least one record).
    pub segment_max_bytes: u64,
    /// Compaction policy for covered segments and superseded snapshots.
    pub retention: Retention,
    /// Seeded kill point for crash testing.
    pub failpoint: Failpoint,
    /// Registry for `wal.*` / `snapshot.*` counters.
    pub metrics: Option<obs::Registry>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            // Rotation costs three fsyncs (seal, new header, directory);
            // segments sized well above the per-checkpoint write volume
            // keep that off the append hot path.
            segment_max_bytes: 4 * 1024 * 1024,
            retention: Retention::KeepLast(1),
            failpoint: Failpoint::default(),
            metrics: None,
        }
    }
}

/// One journaled record: an opaque payload under a caller-defined tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Caller-defined record type.
    pub tag: u32,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

/// The snapshot component of a recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredSnapshot {
    /// The last WAL segment the snapshot covers; replay resumes at the
    /// next segment.
    pub covers_through: u64,
    /// The caller's sections, CRC-verified, in written order.
    pub sections: Vec<(u32, Vec<u8>)>,
}

/// Everything [`DurableStore::open`] recovered from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered {
    /// Latest durable snapshot, if any was written.
    pub snapshot: Option<RecoveredSnapshot>,
    /// WAL records after the snapshot watermark, in append order.
    pub records: Vec<Record>,
    /// A torn tail (incomplete or corrupt final record / segment header)
    /// was found and truncated away.
    pub torn_tail_recovered: bool,
}

struct Counters {
    appends: obs::Counter,
    fsyncs: obs::Counter,
    rotations: obs::Counter,
    replayed: obs::Counter,
    snap_written: obs::Counter,
    snap_bytes: obs::Counter,
}

impl Counters {
    fn new(metrics: &Option<obs::Registry>) -> Option<Self> {
        metrics.as_ref().map(|m| Self {
            appends: m.counter("wal.appends"),
            fsyncs: m.counter("wal.fsyncs"),
            rotations: m.counter("wal.rotations"),
            replayed: m.counter("wal.replayed_records"),
            snap_written: m.counter("snapshot.written"),
            snap_bytes: m.counter("snapshot.bytes"),
        })
    }
}

/// A segmented WAL + snapshot store rooted at one directory.
pub struct DurableStore {
    dir: PathBuf,
    uuid: [u8; 16],
    writer: wal::SegmentWriter,
    ops: u64,
    options: StoreOptions,
    counters: Option<Counters>,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .field("segment", &self.writer.segment_number())
            .field("ops", &self.ops)
            .finish()
    }
}

fn corrupt(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

/// The error a triggered [`Failpoint`] raises.
fn kill_error(op: u64) -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, format!("durable failpoint: killed at op {op}"))
}

/// Was `e` raised by a triggered [`Failpoint`] (as opposed to a real
/// I/O failure)?
pub fn is_kill_error(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::Interrupted && e.to_string().contains("durable failpoint")
}

/// A process-unique store UUID. Not derived from any seed on purpose:
/// WAL bytes are never compared across runs (only recovered *state* is),
/// and a colliding UUID would mask cross-store mixups.
fn fresh_uuid() -> [u8; 16] {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut state = std::process::id() as u64;
    state ^= std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    state ^= SEQ.fetch_add(1, Ordering::Relaxed).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut out = [0u8; 16];
    for chunk in out.chunks_mut(8) {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        chunk.copy_from_slice(&(z ^ (z >> 31)).to_le_bytes());
    }
    out
}

impl DurableStore {
    /// Create a fresh store in `dir` (created if missing). Fails if the
    /// directory already holds store files — recovery goes through
    /// [`DurableStore::open`], never through silent re-initialization.
    pub fn create(dir: &Path, options: StoreOptions) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        if !wal::list_segments(dir)?.is_empty() || !snapshot::list_snapshots(dir)?.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{}: durable store already exists; use open()", dir.display()),
            ));
        }
        let uuid = fresh_uuid();
        let counters = Counters::new(&options.metrics);
        let writer = wal::SegmentWriter::create(dir, 1, uuid)?;
        fsutil::fsync_dir(dir)?;
        Ok(Self { dir: dir.to_path_buf(), uuid, writer, ops: 0, options, counters })
    }

    /// Open an existing store: find the latest durable snapshot, replay
    /// the WAL tail (truncating a torn final record), and position the
    /// log for further appends.
    pub fn open(dir: &Path, options: StoreOptions) -> io::Result<(Self, Recovered)> {
        fsutil::remove_stale_tmp(dir)?;
        let segments = wal::list_segments(dir)?;
        let snapshots = snapshot::list_snapshots(dir)?;
        if segments.is_empty() && snapshots.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{}: not a durable store (no segments or snapshots)", dir.display()),
            ));
        }

        let snap = match snapshots.last() {
            Some(&(num, ref path)) => Some(snapshot::read_snapshot(path, num)?),
            None => None,
        };
        let mut uuid = snap.as_ref().map(|s| s.uuid);
        let watermark = snap.as_ref().map_or(0, |s| s.covers_through);

        // Replay range: everything after the watermark, contiguously.
        let tail: Vec<&(u64, PathBuf)> =
            segments.iter().filter(|(num, _)| *num > watermark).collect();
        if let Some(&&(first, _)) = tail.first() {
            if snap.is_some() && first != watermark + 1 {
                return Err(corrupt(format!(
                    "segment gap: snapshot covers through {watermark} but the next segment is \
                     {first}"
                )));
            }
            for pair in tail.windows(2) {
                if pair[1].0 != pair[0].0 + 1 {
                    return Err(corrupt(format!(
                        "segment gap: {} jumps to {}",
                        pair[0].0, pair[1].0
                    )));
                }
            }
            if snap.is_none() && first != segments[0].0 {
                unreachable!("tail starts at the first segment when no snapshot exists");
            }
        }

        let counters = Counters::new(&options.metrics);
        let mut records = Vec::new();
        let mut torn = false;
        let mut live: Option<wal::SegmentWriter> = None;
        for (i, &&(num, ref path)) in tail.iter().enumerate() {
            let last = i + 1 == tail.len();
            match wal::read_segment(path, num, &mut uuid, last)? {
                wal::SegmentRead::Valid { records: recs, truncated_to } => {
                    if let Some(c) = &counters {
                        c.replayed.add(recs.len() as u64);
                    }
                    records.extend(recs);
                    if last {
                        if let Some(end) = truncated_to {
                            torn = true;
                            wal::truncate_segment(path, end)?;
                        }
                        live = Some(wal::SegmentWriter::reopen(path, num)?);
                    } else if truncated_to.is_some() {
                        unreachable!("only the final segment is ever truncated");
                    }
                }
                wal::SegmentRead::TornHeader => {
                    // A crash between segment creation and its header
                    // hitting disk: the file carries no records. Re-seed
                    // it in place so the numbering stays contiguous.
                    torn = true;
                    let uuid_now = uuid.ok_or_else(|| {
                        corrupt(format!("{}: torn header on the only segment", path.display()))
                    })?;
                    std::fs::remove_file(path)?;
                    live = Some(wal::SegmentWriter::create(dir, num, uuid_now)?);
                    fsutil::fsync_dir(dir)?;
                }
            }
        }

        let uuid = uuid.expect("uuid established from snapshot or at least one segment");
        let writer = match live {
            Some(w) => w,
            None => {
                // Every post-watermark segment was compacted away (or a
                // crash hit between snapshot rename and the next segment's
                // creation): start a fresh one.
                let w = wal::SegmentWriter::create(dir, watermark + 1, uuid)?;
                fsutil::fsync_dir(dir)?;
                w
            }
        };

        let recovered = Recovered {
            snapshot: snap.map(|s| RecoveredSnapshot {
                covers_through: s.covers_through,
                sections: s.sections,
            }),
            records,
            torn_tail_recovered: torn,
        };
        Ok((
            Self { dir: dir.to_path_buf(), uuid, writer, ops: 0, options, counters },
            recovered,
        ))
    }

    /// Append one record (buffered; durable after the next
    /// [`sync`](DurableStore::sync)). Rotates the live segment first
    /// when it is over the size cap.
    pub fn append(&mut self, tag: u32, payload: &[u8]) -> io::Result<()> {
        if self.writer.bytes_written() >= self.options.segment_max_bytes {
            self.rotate()?;
        }
        self.ops += 1;
        if self.options.failpoint.kill_at_op == Some(self.ops) {
            if self.options.failpoint.torn_tail {
                self.writer.write_torn_record(tag, payload)?;
            }
            return Err(kill_error(self.ops));
        }
        self.writer.append(tag, payload)?;
        if let Some(c) = &self.counters {
            c.appends.inc();
        }
        Ok(())
    }

    /// Flush and fsync the live segment: every append so far is durable
    /// once this returns.
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.sync()?;
        if let Some(c) = &self.counters {
            c.fsyncs.inc();
        }
        Ok(())
    }

    /// Seal the live segment (synced) and open the next one.
    pub fn rotate(&mut self) -> io::Result<()> {
        self.sync()?;
        let next = self.writer.segment_number() + 1;
        self.writer = wal::SegmentWriter::create(&self.dir, next, self.uuid)?;
        fsutil::fsync_dir(&self.dir)?;
        if let Some(c) = &self.counters {
            c.rotations.inc();
        }
        Ok(())
    }

    /// Write a snapshot of the caller's full state: seal the live
    /// segment, persist `sections` with the temp-file + rename + fsync
    /// discipline under a watermark covering every segment so far, open
    /// a fresh segment, and compact per the retention policy.
    pub fn snapshot(&mut self, sections: &[(u32, Vec<u8>)]) -> io::Result<()> {
        self.sync()?;
        let watermark = self.writer.segment_number();
        let bytes = snapshot::write_snapshot(&self.dir, watermark, self.uuid, sections)?;
        self.rotate()?;
        self.compact(watermark)?;
        if let Some(c) = &self.counters {
            c.snap_written.inc();
            c.snap_bytes.add(bytes);
        }
        Ok(())
    }

    /// Delete WAL segments fully covered by the `watermark` snapshot and
    /// superseded snapshots, keeping whatever the retention policy says.
    fn compact(&self, watermark: u64) -> io::Result<()> {
        let keep = match self.options.retention {
            Retention::KeepAll => return Ok(()),
            Retention::KeepLast(n) => n,
        };
        let covered: Vec<(u64, PathBuf)> = wal::list_segments(&self.dir)?
            .into_iter()
            .filter(|(num, _)| *num <= watermark)
            .collect();
        for (_, path) in covered.iter().rev().skip(keep) {
            std::fs::remove_file(path)?;
        }
        let snapshots = snapshot::list_snapshots(&self.dir)?;
        for (_, path) in snapshots.iter().rev().skip(keep + 1) {
            std::fs::remove_file(path)?;
        }
        fsutil::fsync_dir(&self.dir)
    }

    /// Appends attempted so far on this handle (the failpoint op
    /// counter).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The live segment's number.
    pub fn segment_number(&self) -> u64 {
        self.writer.segment_number()
    }

    /// The store UUID stamped into every segment and snapshot.
    pub fn uuid(&self) -> [u8; 16] {
        self.uuid
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}
