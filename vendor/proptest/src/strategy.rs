//! The `Strategy` trait and core combinators: `Just`, `Map`, `Union`,
//! `BoxedStrategy`, numeric ranges, and strategy tuples.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform each generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }

    /// Build a recursive strategy: `self` is the leaf case; `branch` maps
    /// a strategy for depth-`d` values to one for depth-`d+1` values.
    /// Nesting is bounded by `depth`. The `_desired_size` and
    /// `_expected_branch_size` tuning knobs of the real crate are accepted
    /// but unused.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(current).boxed();
            current = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        current
    }
}

/// Always produces a clone of one fixed value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Applies a function to another strategy's output.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among several type-erased strategies.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from a non-empty list of options.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<V> {
    gen: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self { gen: Rc::clone(&self.gen) }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = rng.below(span as u64) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit domain: a raw draw is already uniform.
                    return rng.next_u64() as $t;
                }
                let off = rng.below(span as u64) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1_000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0u64..=u32::MAX as u64).generate(&mut rng);
            assert!(w <= u32::MAX as u64);
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let s = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut rng = TestRng::from_seed(2);
        let _ = (0u64..=u64::MAX).generate(&mut rng);
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::from_seed(3);
        let s = crate::prop_oneof![
            Just(0u32),
            (10u32..20).prop_map(|x| x * 2),
        ];
        let mut saw_leaf = false;
        let mut saw_mapped = false;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                0 => saw_leaf = true,
                v => {
                    assert!((20..40).contains(&v) && v % 2 == 0);
                    saw_mapped = true;
                }
            }
        }
        assert!(saw_leaf && saw_mapped);
    }

    #[test]
    fn recursive_strategy_bounds_depth() {
        #[derive(Debug)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth_of(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(kids) => 1 + kids.iter().map(depth_of).max().unwrap_or(0),
            }
        }
        let s = Just(()).prop_map(|_| T::Leaf).prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(T::Node)
        });
        let mut rng = TestRng::from_seed(4);
        for _ in 0..200 {
            assert!(depth_of(&s.generate(&mut rng)) <= 3);
        }
    }
}
