//! The gab.com API front-end (§3.1, §3.4).

use crate::cache::FrontCache;
use crate::Front;
use httpnet::{Handler, Params, Request, Response, Router, ServerConfig, Status};
use ids::clock::format_datetime;
use parking_lot::Mutex;
use platform::{RateLimiter, SimClock, World};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// The Gab API is unauthenticated — every requester sees the same JSON,
/// so all conditional requests share one visibility class.
const API_CLASS: &str = "api";

/// Followers/following page size.
pub const PAGE_SIZE: usize = 80;

/// The real Gab API allowed ~300 requests per 5 minutes; the paper's
/// crawler throttled to 1 req/s and slept until the advertised reset.
/// Simulating that wall-clock pacing would serialize every experiment
/// behind hours of sleeping, so the *default* simulated limit is set high
/// enough to never bind; the mechanism (429 + `X-RateLimit-*` headers +
/// crawler sleep-until-reset) is fully implemented and exercised by tests
/// that construct a [`GabFront::with_rate_limit`] with a tight window.
pub const RATE_LIMIT: u32 = 5_000_000;
const RATE_WINDOW_SECS: u64 = 300;

/// Handler for the Gab API.
///
/// Every route is rate-limited, so conditional serving is
/// [`FrontCache::conditional_only`]: a revalidation still spends rate
/// budget (the limiter's accounting stays exact) but a fresh
/// `If-None-Match` skips the JSON render. Bodies are never cached — the
/// `X-RateLimit-*` headers differ on every response.
pub struct GabFront {
    router: Router,
    /// The advertised per-window limit (echoed in headers).
    limit: u32,
    config_override: Option<ServerConfig>,
}

impl GabFront {
    /// Build over a shared world with the default (non-binding) limit.
    pub fn new(world: Arc<World>) -> Self {
        Self::with_rate_limit(world, RATE_LIMIT, RATE_WINDOW_SECS)
    }

    /// Build with an explicit conditional-request cache.
    pub fn with_cache(world: Arc<World>, cache: FrontCache) -> Self {
        Self::build(world, cache, RATE_LIMIT, RATE_WINDOW_SECS, None)
    }

    /// Build with an explicit rate limit (tests use tight windows to
    /// exercise the crawler's backoff path).
    pub fn with_rate_limit(world: Arc<World>, limit: u32, window_secs: u64) -> Self {
        let stamp = world.content_hash();
        Self::build(world, FrontCache::new(stamp), limit, window_secs, None)
    }

    /// Build with every knob explicit plus a shared [`SimClock`]: rate
    /// windows and `X-RateLimit-Reset` headers read simulated time, so a
    /// longitudinal crawler honoring a reset advances the clock instead
    /// of sleeping.
    pub fn with_clock(
        world: Arc<World>,
        cache: FrontCache,
        limit: u32,
        window_secs: u64,
        clock: SimClock,
    ) -> Self {
        Self::build(world, cache, limit, window_secs, Some(clock))
    }

    fn build(
        world: Arc<World>,
        cache: FrontCache,
        limit: u32,
        window_secs: u64,
        clock: Option<SimClock>,
    ) -> Self {
        let limiter = Arc::new(Mutex::new(RateLimiter::new(limit, window_secs)));
        let mut router = Router::new();
        {
            let world = world.clone();
            let limiter = limiter.clone();
            let cache = cache.clone();
            let clock = clock.clone();
            router.route("GET", "/api/v1/accounts/:id", move |req, p| {
                rate_limited(&limiter, &clock, req, |req| {
                    cache.conditional_only(req, API_CLASS, || account(&world, p))
                })
            });
        }
        {
            let world = world.clone();
            let limiter = limiter.clone();
            let cache = cache.clone();
            let clock = clock.clone();
            router.route("GET", "/api/v1/accounts/:id/followers", move |req, p| {
                rate_limited(&limiter, &clock, req, |req| {
                    cache.conditional_only(req, API_CLASS, || relationships(&world, req, p, true))
                })
            });
        }
        {
            let world = world.clone();
            router.route("GET", "/api/v1/accounts/:id/following", move |req, p| {
                rate_limited(&limiter, &clock, req, |req| {
                    cache.conditional_only(req, API_CLASS, || relationships(&world, req, p, false))
                })
            });
        }
        Self { router, limit, config_override: None }
    }

    /// Pin an explicit server configuration for this front.
    pub fn with_server_config(mut self, config: ServerConfig) -> Self {
        self.config_override = Some(config);
        self
    }

    /// The advertised per-window limit.
    pub fn limit(&self) -> u32 {
        self.limit
    }
}

impl Handler for GabFront {
    fn handle(&self, req: &Request) -> Response {
        self.router.dispatch(req)
    }
}

impl Front for GabFront {
    fn name(&self) -> &'static str {
        "gab"
    }

    fn server_config(&self, base: &ServerConfig) -> ServerConfig {
        self.config_override.clone().unwrap_or_else(|| base.clone())
    }
}

fn now_secs() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

fn rate_limited(
    limiter: &Mutex<RateLimiter>,
    clock: &Option<SimClock>,
    req: &Request,
    f: impl FnOnce(&Request) -> Response,
) -> Response {
    let now = clock.as_ref().map(SimClock::now).unwrap_or_else(now_secs);
    let (decision, limit) = {
        let mut guard = limiter.lock();
        (guard.check("api", now), guard.limit())
    };
    match decision {
        platform::ratelimit::RateDecision::Deny { reset_at, penalized: _ } => {
            let mut r = Response::status(Status::TOO_MANY);
            r.headers.add("X-RateLimit-Limit", &limit.to_string());
            r.headers.add("X-RateLimit-Remaining", "0");
            r.headers.add("X-RateLimit-Reset", &reset_at.to_string());
            r.body = br#"{"error":"Too many requests"}"#.to_vec();
            r
        }
        platform::ratelimit::RateDecision::Allow { remaining, reset_at } => {
            let mut r = f(req);
            r.headers.add("X-RateLimit-Limit", &limit.to_string());
            r.headers.add("X-RateLimit-Remaining", &remaining.to_string());
            r.headers.add("X-RateLimit-Reset", &reset_at.to_string());
            r
        }
    }
}

fn json_error(status: Status, msg: &str) -> Response {
    let mut r = Response::status(status);
    r.headers.add("Content-Type", "application/json");
    r.body = jsonlite::to_string(&jsonlite::Value::object().with("error", msg)).into_bytes();
    r
}

fn account(world: &World, p: &Params) -> Response {
    let Some(id) = p.get("id").and_then(|s| s.parse::<u64>().ok()) else {
        return json_error(Status(400), "invalid id");
    };
    let Some(idx) = world.gab.user_by_gab_id(id) else {
        // The API "helpfully returns an error when an ID is not associated
        // with a user account" — the signal that makes exhaustive
        // enumeration possible.
        return json_error(Status::NOT_FOUND, "Record not found");
    };
    let u = world.user(idx);
    let v = jsonlite::Value::object()
        .with("id", id)
        .with("username", u.username.as_str())
        .with("acct", u.username.as_str())
        .with("display_name", u.display_name.as_str())
        .with("note", u.bio.as_str())
        .with("created_at", format_datetime(u.created_at))
        .with("followers_count", world.gab.followers(idx).len())
        .with("following_count", world.gab.following(idx).len());
    Response::json(jsonlite::to_string(&v))
}

fn relationships(world: &World, req: &Request, p: &Params, followers: bool) -> Response {
    let Some(id) = p.get("id").and_then(|s| s.parse::<u64>().ok()) else {
        return json_error(Status(400), "invalid id");
    };
    let Some(idx) = world.gab.user_by_gab_id(id) else {
        return json_error(Status::NOT_FOUND, "Record not found");
    };
    let page: usize = req.query("page").and_then(|s| s.parse().ok()).unwrap_or(0);
    // Deleted accounts vanish from relationship listings (their Dissenter
    // traces are reachable only through comments). Filter before
    // paginating so short pages still reliably signal the end of the list.
    let all = if followers { world.gab.followers(idx) } else { world.gab.following(idx) };
    let visible: Vec<u32> =
        all.iter().copied().filter(|&uidx| !world.user(uidx).gab_deleted).collect();
    let start = (page * PAGE_SIZE).min(visible.len());
    let end = (start + PAGE_SIZE).min(visible.len());
    let items: Vec<jsonlite::Value> = visible[start..end]
        .iter()
        .map(|&uidx| {
            let u = world.user(uidx);
            jsonlite::Value::object()
                .with("id", u.gab_id)
                .with("username", u.username.as_str())
        })
        .collect();
    Response::json(jsonlite::to_string(&jsonlite::Value::Array(items)))
}
