//! The Allsides-style media-bias mapping (§4.4.4).
//!
//! Allsides rates mainstream outlets only; video platforms, social
//! networks, and long-tail sites are Not Ranked. This module is the single
//! source of truth for the mapping — the synthetic world generator
//! conditions comment toxicity on the *same* mapping the analysis reads,
//! exactly as the real world's bias-toxicity correlation is shared between
//! the phenomenon and its measurement.

/// Bias classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Bias {
    /// Left.
    Left,
    /// Center-left.
    LeftCenter,
    /// Center.
    Center,
    /// Center-right.
    RightCenter,
    /// Right.
    Right,
    /// No Allsides ranking.
    NotRanked,
}

impl Bias {
    /// All classes, left to right, then NotRanked.
    pub const ALL: [Bias; 6] =
        [Bias::Left, Bias::LeftCenter, Bias::Center, Bias::RightCenter, Bias::Right, Bias::NotRanked];

    /// Human-readable label matching Figure 8's axis.
    pub fn label(&self) -> &'static str {
        match self {
            Bias::Left => "Left",
            Bias::LeftCenter => "Left-Center",
            Bias::Center => "Center",
            Bias::RightCenter => "Right-Center",
            Bias::Right => "Right",
            Bias::NotRanked => "Not Ranked",
        }
    }
}

/// Bias rating of a registrable domain.
pub fn bias_of_domain(domain: &str) -> Bias {
    match domain {
        // Video and social platforms: inherently unranked (§4.4.4).
        "youtube.com" | "youtu.be" | "twitter.com" | "bitchute.com" | "gab.com"
        | "facebook.com" => Bias::NotRanked,
        // Table-2 outlets with their real Allsides ratings.
        "breitbart.com" | "foxnews.com" | "zerohedge.com" => Bias::Right,
        "dailymail.co.uk" => Bias::RightCenter,
        "bbc.co.uk" => Bias::Center,
        "theguardian.com" => Bias::Left,
        "nytimes.com" => Bias::LeftCenter,
        // Fringe/long-tail sites the paper highlights: unranked.
        "thewatcherfiles.com" | "deutschland.de" => Bias::NotRanked,
        d => {
            // Synthesized long-tail outlets hash into a stable class;
            // ~45% unranked, rest spread — matching the paper's finding
            // that ~1M of 1.68M comments fall on unranked URLs once
            // video/social are included.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in d.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            match h % 20 {
                0..=8 => Bias::NotRanked,
                9..=10 => Bias::Left,
                11..=12 => Bias::LeftCenter,
                13..=14 => Bias::Center,
                15..=16 => Bias::RightCenter,
                _ => Bias::Right,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_outlets() {
        assert_eq!(bias_of_domain("breitbart.com"), Bias::Right);
        assert_eq!(bias_of_domain("theguardian.com"), Bias::Left);
        assert_eq!(bias_of_domain("bbc.co.uk"), Bias::Center);
        assert_eq!(bias_of_domain("dailymail.co.uk"), Bias::RightCenter);
    }

    #[test]
    fn platforms_not_ranked() {
        for d in ["youtube.com", "youtu.be", "twitter.com", "bitchute.com"] {
            assert_eq!(bias_of_domain(d), Bias::NotRanked, "{d}");
        }
    }

    #[test]
    fn long_tail_is_stable_and_spread() {
        let a = bias_of_domain("dailyreport42.com");
        assert_eq!(a, bias_of_domain("dailyreport42.com"));
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            seen.insert(bias_of_domain(&format!("outlet{i}.com")));
        }
        assert!(seen.len() >= 5, "long tail must cover most classes: {seen:?}");
    }

    #[test]
    fn labels_match_paper_axis() {
        assert_eq!(Bias::LeftCenter.label(), "Left-Center");
        assert_eq!(Bias::NotRanked.label(), "Not Ranked");
    }
}
