//! Histograms, including the logarithmic binning used for degree and
//! vote-score plots (Figs. 5, 9b, 9c group observations by magnitude).

/// A fixed-bin histogram over `[lo, hi)` with uniform bin width.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Observations below `lo`.
    pub underflow: u64,
    /// Observations at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Create a histogram with `bins` uniform bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "hi must exceed lo");
        assert!(bins > 0, "need at least one bin");
        Self { lo, hi, counts: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Record an observation. Panics on NaN (like the other samplers in
    /// this crate): a NaN would otherwise compare false against both
    /// bounds and land silently in the first bin.
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation in histogram");
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.counts.len() as f64) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(bin_center, count)` pairs.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * (i as f64 + 0.5), c))
            .collect()
    }
}

/// Group values into logarithmic bins: value `v > 0` lands in bin
/// `floor(log_base(v))`; zero values land in a dedicated bin `None`.
/// Returns `(bin_exponent_or_none, values)` groups in ascending order —
/// this is how Figures 9b/9c bucket follower counts (10^0, 10^1, …).
pub fn log_bins(values: &[(u64, f64)], base: f64) -> Vec<(Option<u32>, Vec<f64>)> {
    use std::collections::BTreeMap;
    assert!(base > 1.0, "log base must exceed 1");
    let mut groups: BTreeMap<Option<u32>, Vec<f64>> = BTreeMap::new();
    for &(k, v) in values {
        let bin = if k == 0 {
            None
        } else {
            Some((k as f64).log(base).floor() as u32)
        };
        groups.entry(bin).or_default().push(v);
    }
    groups.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.0, 0.5, 5.0, 9.99, 10.0, -1.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 4);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
    }

    #[test]
    fn centers_are_midpoints() {
        let h = Histogram::new(0.0, 1.0, 2);
        let c = h.centers();
        assert_eq!(c[0].0, 0.25);
        assert_eq!(c[1].0, 0.75);
    }

    #[test]
    fn log_bins_group_by_magnitude() {
        let vals = vec![(0u64, 1.0), (1, 2.0), (5, 3.0), (10, 4.0), (99, 5.0), (100, 6.0)];
        let g = log_bins(&vals, 10.0);
        let keys: Vec<Option<u32>> = g.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![None, Some(0), Some(1), Some(2)]);
        // Bin 0 holds degrees 1..9, bin 1 holds 10..99.
        assert_eq!(g[1].1, vec![2.0, 3.0]);
        assert_eq!(g[2].1, vec![4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "hi must exceed lo")]
    fn bad_range_panics() {
        Histogram::new(1.0, 1.0, 4);
    }
}
