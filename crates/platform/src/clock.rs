//! Simulated study time.
//!
//! The longitudinal engine replays the paper's 14-month crawl as a
//! sequence of epochs over an evolving world. Everything time-dependent
//! on the serving side (rate-limit windows, penalty lockouts,
//! `X-RateLimit-Reset` headers) and on the crawling side (throttle
//! sleeps) keys off one shared [`SimClock`] instead of the wall clock,
//! so a sweep — or a killed-and-resumed sweep — replays identically no
//! matter when or how fast it actually runs.
//!
//! The clock is a monotone atomic: it only moves forward
//! ([`SimClock::advance_to`] is a `fetch_max`), which keeps concurrent
//! advancement races harmless — the furthest-ahead waiter wins and
//! everyone re-reads a consistent "now".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, monotone simulated clock (seconds since the Unix epoch,
/// like every other timestamp in the world). Cheap to clone; all clones
/// observe and advance the same instant.
#[derive(Debug, Clone, Default)]
pub struct SimClock(Arc<AtomicU64>);

impl SimClock {
    /// A clock starting at `now` (seconds).
    pub fn new(now: u64) -> Self {
        Self(Arc::new(AtomicU64::new(now)))
    }

    /// The current simulated time in seconds.
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Move the clock forward to `t`. A no-op if the clock is already at
    /// or past `t` — time never runs backwards, so concurrent advances
    /// resolve to the furthest instant.
    pub fn advance_to(&self, t: u64) {
        self.0.fetch_max(t, Ordering::AcqRel);
    }

    /// Move the clock forward by `secs` relative to its current reading.
    pub fn advance(&self, secs: u64) {
        self.0.fetch_add(secs, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_instant() {
        let a = SimClock::new(100);
        let b = a.clone();
        b.advance_to(250);
        assert_eq!(a.now(), 250);
        a.advance(10);
        assert_eq!(b.now(), 260);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = SimClock::new(500);
        c.advance_to(400);
        assert_eq!(c.now(), 500, "time never runs backwards");
        c.advance_to(501);
        assert_eq!(c.now(), 501);
    }
}
