//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! Each group compares a design decision against its alternative on the
//! same input, so the cost/benefit is measurable rather than asserted:
//!
//! * **stemming** — the §3.5.1 dictionary with vs without Porter stemming
//!   (the paper argues stemming trades false positives for recall);
//! * **adasyn** — SVM training time with vs without oversampling (the
//!   §3.5.3 imbalance treatment);
//! * **keep-alive** — crawler connection reuse vs fresh connections (the
//!   throughput choice behind the parallel fetcher);
//! * **featurizer dimension** — 2^12 vs 2^16 hash space (collision rate
//!   vs memory).

use classify::adasyn::{adasyn, AdasynConfig};
use classify::svm::{Featurizer, LinearSvm, SvmConfig};
use classify::HateDictionary;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use httpnet::{Client, Handler, Request, Response, Server, ServerConfig};
use std::sync::Arc;
use synth::labeled_corpus;
use textkit::tokenize;

fn bench_stemming_ablation(c: &mut Criterion) {
    let corpus = labeled_corpus(400, 3);
    let texts: Vec<&str> = corpus.iter().map(|s| s.text.as_str()).collect();
    let dict = HateDictionary::standard();
    let mut g = c.benchmark_group("ablation_stemming");
    g.bench_function("dictionary_with_stemming", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for t in &texts {
                acc += dict.score(t);
            }
            black_box(acc)
        });
    });
    g.bench_function("dictionary_without_stemming", |b| {
        // Raw-token matching: cheaper, but misses inflected forms.
        let lex = dict.lexicon();
        b.iter(|| {
            let mut acc = 0.0;
            for t in &texts {
                let tokens = tokenize(t);
                if tokens.is_empty() {
                    continue;
                }
                let hits = tokens.iter().filter(|w| lex.contains_stemmed(w)).count();
                acc += hits as f64 / tokens.len() as f64;
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn bench_adasyn_ablation(c: &mut Criterion) {
    let corpus = labeled_corpus(800, 5);
    let f = Featurizer::standard();
    let samples: Vec<_> = corpus.iter().map(|s| (f.featurize(&s.text), s.class.index())).collect();
    let cfg = SvmConfig { epochs: 4, ..SvmConfig::default() };
    let mut g = c.benchmark_group("ablation_adasyn");
    g.sample_size(10);
    g.bench_function("train_imbalanced", |b| {
        b.iter(|| black_box(LinearSvm::train(&samples, 3, cfg)));
    });
    let balanced = adasyn(&samples, 3, AdasynConfig::default());
    g.bench_function("train_oversampled", |b| {
        b.iter(|| black_box(LinearSvm::train(&balanced, 3, cfg)));
    });
    g.bench_function("adasyn_pass_itself", |b| {
        b.iter(|| black_box(adasyn(&samples, 3, AdasynConfig::default())));
    });
    g.finish();
}

fn bench_keepalive_ablation(c: &mut Criterion) {
    let handler: Arc<dyn Handler> = Arc::new(|_: &Request| Response::json("{\"ok\":true}".into()));
    let server = Server::start(handler, ServerConfig::default()).expect("server");
    let addr = server.addr();
    let mut g = c.benchmark_group("ablation_keepalive");
    g.bench_function("fresh_connection_per_request", |b| {
        let client = Client::builder(addr).build();
        b.iter(|| black_box(client.get("/x").unwrap()));
    });
    g.bench_function("keep_alive_connection", |b| {
        let mut client = Client::builder(addr).build();
        client.keep_alive(true);
        b.iter(|| black_box(client.get_keep_alive("/x").unwrap()));
    });
    g.finish();
}

fn bench_featurizer_dims(c: &mut Criterion) {
    let corpus = labeled_corpus(200, 9);
    let texts: Vec<&str> = corpus.iter().map(|s| s.text.as_str()).collect();
    let mut g = c.benchmark_group("ablation_feature_dim");
    for dim_bits in [12u32, 16, 18] {
        let f = Featurizer { dim: 1 << dim_bits };
        g.bench_function(format!("featurize_dim_2e{dim_bits}"), |b| {
            b.iter(|| {
                for t in &texts {
                    black_box(f.featurize(t));
                }
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_stemming_ablation,
    bench_adasyn_ablation,
    bench_keepalive_ablation,
    bench_featurizer_dims
);
criterion_main!(benches);
