//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses.
//!
//! The container building this repository has no crates.io access, so the
//! real crate cannot be fetched. This crate keeps the same property tests
//! compiling and running: the `proptest!` macro generates a `#[test]` that
//! draws a configurable number of random cases per property from
//! `Strategy` values (ranges, regex-like string patterns, combinators)
//! and asserts the body on each. Shrinking is not implemented — a failing
//! case panics with the drawn values unshrunk, which is enough signal for
//! a deterministic suite.

pub mod array;
pub mod arbitrary;
pub mod collection;
pub mod string;
pub mod strategy;
pub mod test_runner;

/// Convenience imports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert a condition inside a property body (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property body (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Define property tests. Each function parameter `pat in strategy` is
/// drawn fresh for every case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::test_runner::CASES {
                    $(
                        let $p =
                            $crate::strategy::Strategy::generate(&($s), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}
