//! Lifecycle and corruption coverage for the durable store: the
//! append/sync/rotate/snapshot path, compaction under both retention
//! policies, failpoint kills (clean and torn-tail), and every
//! corruption class the format is supposed to detect — flipped CRC
//! byte, short segment header, wrong magic/version/UUID, torn final
//! record.

use durable::{DurableStore, Failpoint, Retention, StoreOptions};
use std::path::{Path, PathBuf};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let d = std::env::temp_dir().join(format!(
            "durable-store-{tag}-{}-{:x}",
            std::process::id(),
            {
                use std::sync::atomic::{AtomicU64, Ordering};
                static SEQ: AtomicU64 = AtomicU64::new(0);
                SEQ.fetch_add(1, Ordering::Relaxed)
            }
        ));
        std::fs::create_dir_all(&d).unwrap();
        Self(d)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn opts() -> StoreOptions {
    StoreOptions { retention: Retention::KeepAll, ..StoreOptions::default() }
}

fn segment_files(dir: &Path) -> Vec<String> {
    let mut out: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("wal_"))
        .collect();
    out.sort();
    out
}

fn snapshot_files(dir: &Path) -> Vec<String> {
    let mut out: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("snap_"))
        .collect();
    out.sort();
    out
}

#[test]
fn append_sync_reopen_replays_everything_in_order() {
    let tmp = TempDir::new("roundtrip");
    let mut store = DurableStore::create(tmp.path(), opts()).unwrap();
    for i in 0u32..100 {
        store.append(i % 7, format!("payload-{i}").as_bytes()).unwrap();
    }
    store.sync().unwrap();
    drop(store);

    let (_, recovered) = DurableStore::open(tmp.path(), opts()).unwrap();
    assert!(recovered.snapshot.is_none());
    assert!(!recovered.torn_tail_recovered);
    assert_eq!(recovered.records.len(), 100);
    for (i, rec) in recovered.records.iter().enumerate() {
        assert_eq!(rec.tag, (i % 7) as u32);
        assert_eq!(rec.payload, format!("payload-{i}").into_bytes());
    }
}

#[test]
fn create_refuses_an_existing_store() {
    let tmp = TempDir::new("nooverwrite");
    let store = DurableStore::create(tmp.path(), opts()).unwrap();
    drop(store);
    let err = DurableStore::create(tmp.path(), opts()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
}

#[test]
fn open_refuses_an_empty_directory() {
    let tmp = TempDir::new("notastore");
    let err = DurableStore::open(tmp.path(), opts()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
}

#[test]
fn rotation_spreads_records_across_segments() {
    let tmp = TempDir::new("rotate");
    let options = StoreOptions {
        segment_max_bytes: 256,
        retention: Retention::KeepAll,
        ..StoreOptions::default()
    };
    let mut store = DurableStore::create(tmp.path(), options.clone()).unwrap();
    for i in 0u32..50 {
        store.append(1, format!("record-number-{i:04}").as_bytes()).unwrap();
    }
    store.sync().unwrap();
    assert!(store.segment_number() > 1, "256-byte cap must have forced rotations");
    drop(store);

    let (_, recovered) = DurableStore::open(tmp.path(), options).unwrap();
    assert_eq!(recovered.records.len(), 50);
    assert_eq!(recovered.records[49].payload, b"record-number-0049");
}

#[test]
fn snapshot_restores_sections_and_tail_records() {
    let tmp = TempDir::new("snapshot");
    let mut store = DurableStore::create(tmp.path(), opts()).unwrap();
    store.append(1, b"before-snap").unwrap();
    store
        .snapshot(&[(10, b"state-a".to_vec()), (11, b"state-b".to_vec())])
        .unwrap();
    store.append(2, b"after-snap").unwrap();
    store.sync().unwrap();
    drop(store);

    let (_, recovered) = DurableStore::open(tmp.path(), opts()).unwrap();
    let snap = recovered.snapshot.expect("snapshot must be found");
    assert_eq!(snap.sections, vec![(10, b"state-a".to_vec()), (11, b"state-b".to_vec())]);
    // Only the tail after the watermark replays; "before-snap" is covered.
    assert_eq!(recovered.records.len(), 1);
    assert_eq!(recovered.records[0].payload, b"after-snap");
}

#[test]
fn keep_all_retention_deletes_nothing() {
    let tmp = TempDir::new("keepall");
    let mut store = DurableStore::create(tmp.path(), opts()).unwrap();
    for round in 0u32..3 {
        store.append(1, &round.to_le_bytes()).unwrap();
        store.snapshot(&[(1, vec![round as u8])]).unwrap();
    }
    assert_eq!(segment_files(tmp.path()).len(), 4);
    assert_eq!(snapshot_files(tmp.path()).len(), 3);
}

#[test]
fn keep_last_retention_compacts_covered_segments_and_old_snapshots() {
    let tmp = TempDir::new("keeplast");
    let options = StoreOptions { retention: Retention::KeepLast(1), ..StoreOptions::default() };
    let mut store = DurableStore::create(tmp.path(), options.clone()).unwrap();
    for round in 0u32..4 {
        store.append(1, &round.to_le_bytes()).unwrap();
        store.snapshot(&[(1, vec![round as u8])]).unwrap();
    }
    // One covered segment kept + the fresh live one; live snapshot + one
    // predecessor.
    assert_eq!(segment_files(tmp.path()), vec!["wal_00000004.seg", "wal_00000005.seg"]);
    assert_eq!(snapshot_files(tmp.path()), vec!["snap_00000003.snap", "snap_00000004.snap"]);
    drop(store);

    let (_, recovered) = DurableStore::open(tmp.path(), options).unwrap();
    assert_eq!(recovered.snapshot.unwrap().sections, vec![(1, vec![3u8])]);
    assert!(recovered.records.is_empty());
}

#[test]
fn failpoint_kills_the_exact_op_and_is_recognizable() {
    let tmp = TempDir::new("failpoint");
    let options = StoreOptions {
        retention: Retention::KeepAll,
        failpoint: Failpoint { kill_at_op: Some(3), torn_tail: false },
        ..StoreOptions::default()
    };
    let mut store = DurableStore::create(tmp.path(), options).unwrap();
    store.append(1, b"one").unwrap();
    store.append(1, b"two").unwrap();
    let err = store.append(1, b"three").unwrap_err();
    assert!(durable::is_kill_error(&err), "not a kill error: {err}");
    assert!(!durable::is_kill_error(&std::io::Error::other("disk on fire")));
    drop(store);

    // The killed op never made it in; the first two are intact.
    let (_, recovered) = DurableStore::open(tmp.path(), opts()).unwrap();
    assert_eq!(recovered.records.len(), 2);
    assert!(!recovered.torn_tail_recovered);
}

#[test]
fn torn_tail_from_a_failpoint_kill_is_truncated_and_recovered() {
    let tmp = TempDir::new("torntail");
    let options = StoreOptions {
        retention: Retention::KeepAll,
        failpoint: Failpoint { kill_at_op: Some(3), torn_tail: true },
        ..StoreOptions::default()
    };
    let mut store = DurableStore::create(tmp.path(), options).unwrap();
    store.append(1, b"one").unwrap();
    store.append(1, b"two").unwrap();
    store.sync().unwrap();
    let err = store.append(1, b"three-will-tear").unwrap_err();
    assert!(durable::is_kill_error(&err));
    drop(store);

    let (mut reopened, recovered) = DurableStore::open(tmp.path(), opts()).unwrap();
    assert!(recovered.torn_tail_recovered, "torn tail must be reported");
    assert_eq!(recovered.records.len(), 2);

    // The store is fully usable after truncation: append, sync, replay.
    reopened.append(1, b"after-recovery").unwrap();
    reopened.sync().unwrap();
    drop(reopened);
    let (_, again) = DurableStore::open(tmp.path(), opts()).unwrap();
    assert!(!again.torn_tail_recovered);
    assert_eq!(again.records.len(), 3);
    assert_eq!(again.records[2].payload, b"after-recovery");
}

#[test]
fn torn_final_record_with_empty_payload_is_recovered_too() {
    let tmp = TempDir::new("tornempty");
    let options = StoreOptions {
        retention: Retention::KeepAll,
        failpoint: Failpoint { kill_at_op: Some(2), torn_tail: true },
        ..StoreOptions::default()
    };
    let mut store = DurableStore::create(tmp.path(), options).unwrap();
    store.append(1, b"one").unwrap();
    store.sync().unwrap();
    assert!(store.append(7, b"").is_err());
    drop(store);

    let (_, recovered) = DurableStore::open(tmp.path(), opts()).unwrap();
    assert!(recovered.torn_tail_recovered);
    assert_eq!(recovered.records.len(), 1);
}

#[test]
fn flipped_crc_byte_in_a_sealed_segment_is_detected() {
    let tmp = TempDir::new("crcflip");
    let options = StoreOptions { segment_max_bytes: 64, ..opts() };
    let mut store = DurableStore::create(tmp.path(), options.clone()).unwrap();
    for i in 0u32..20 {
        store.append(1, format!("record-{i:04}").as_bytes()).unwrap();
    }
    store.sync().unwrap();
    assert!(store.segment_number() >= 2);
    drop(store);

    // Flip one payload byte in the first (sealed) segment, past the
    // 40-byte header.
    let path = tmp.path().join("wal_00000001.seg");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[55] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let err = DurableStore::open(tmp.path(), options).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("sealed segment"), "{err}");
}

#[test]
fn short_header_on_a_sealed_segment_is_an_error() {
    let tmp = TempDir::new("shorthdr");
    let mut store = DurableStore::create(tmp.path(), opts()).unwrap();
    store.append(1, b"x").unwrap();
    store.rotate().unwrap();
    store.append(1, b"y").unwrap();
    store.sync().unwrap();
    drop(store);

    let path = tmp.path().join("wal_00000001.seg");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..10]).unwrap();

    let err = DurableStore::open(tmp.path(), opts()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("short segment header"), "{err}");
}

#[test]
fn short_header_on_the_final_segment_is_recovered_in_place() {
    let tmp = TempDir::new("tornhdr");
    let mut store = DurableStore::create(tmp.path(), opts()).unwrap();
    store.append(1, b"keep-me").unwrap();
    store.rotate().unwrap();
    drop(store);

    // Simulate a crash between creating wal_00000002.seg and its header
    // reaching disk.
    let path = tmp.path().join("wal_00000002.seg");
    std::fs::write(&path, b"DSRW").unwrap();

    let (mut reopened, recovered) = DurableStore::open(tmp.path(), opts()).unwrap();
    assert!(recovered.torn_tail_recovered);
    assert_eq!(recovered.records.len(), 1);
    assert_eq!(reopened.segment_number(), 2, "numbering stays contiguous");
    reopened.append(1, b"fresh").unwrap();
    reopened.sync().unwrap();
    drop(reopened);
    let (_, again) = DurableStore::open(tmp.path(), opts()).unwrap();
    assert_eq!(again.records.len(), 2);
}

#[test]
fn wrong_magic_is_detected() {
    let tmp = TempDir::new("magic");
    let mut store = DurableStore::create(tmp.path(), opts()).unwrap();
    store.append(1, b"x").unwrap();
    store.sync().unwrap();
    drop(store);

    let path = tmp.path().join("wal_00000001.seg");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] = b'X';
    std::fs::write(&path, &bytes).unwrap();

    let err = DurableStore::open(tmp.path(), opts()).unwrap_err();
    assert!(err.to_string().contains("bad WAL magic"), "{err}");
}

#[test]
fn wrong_version_is_detected() {
    let tmp = TempDir::new("version");
    let mut store = DurableStore::create(tmp.path(), opts()).unwrap();
    store.append(1, b"x").unwrap();
    store.sync().unwrap();
    drop(store);

    let path = tmp.path().join("wal_00000001.seg");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8] = 99;
    std::fs::write(&path, &bytes).unwrap();

    let err = DurableStore::open(tmp.path(), opts()).unwrap_err();
    assert!(err.to_string().contains("unsupported WAL format version"), "{err}");
}

#[test]
fn foreign_uuid_is_detected() {
    let tmp = TempDir::new("uuid");
    let mut store = DurableStore::create(tmp.path(), opts()).unwrap();
    store.append(1, b"x").unwrap();
    store.rotate().unwrap();
    store.append(1, b"y").unwrap();
    store.sync().unwrap();
    drop(store);

    // Rewrite segment 2's UUID: a segment from some other store that
    // landed in this directory.
    let path = tmp.path().join("wal_00000002.seg");
    let mut bytes = std::fs::read(&path).unwrap();
    for b in &mut bytes[24..40] {
        *b ^= 0xA5;
    }
    std::fs::write(&path, &bytes).unwrap();

    let err = DurableStore::open(tmp.path(), opts()).unwrap_err();
    assert!(err.to_string().contains("UUID mismatch"), "{err}");
}

#[test]
fn segment_number_mismatch_is_detected() {
    let tmp = TempDir::new("renamed");
    let mut store = DurableStore::create(tmp.path(), opts()).unwrap();
    store.append(1, b"x").unwrap();
    store.sync().unwrap();
    drop(store);

    std::fs::rename(
        tmp.path().join("wal_00000001.seg"),
        tmp.path().join("wal_00000003.seg"),
    )
    .unwrap();

    let err = DurableStore::open(tmp.path(), opts()).unwrap_err();
    assert!(err.to_string().contains("file name says"), "{err}");
}

#[test]
fn segment_gap_is_detected() {
    let tmp = TempDir::new("gap");
    let mut store = DurableStore::create(tmp.path(), opts()).unwrap();
    store.append(1, b"a").unwrap();
    store.rotate().unwrap();
    store.append(1, b"b").unwrap();
    store.rotate().unwrap();
    store.append(1, b"c").unwrap();
    store.sync().unwrap();
    drop(store);

    std::fs::remove_file(tmp.path().join("wal_00000002.seg")).unwrap();

    let err = DurableStore::open(tmp.path(), opts()).unwrap_err();
    assert!(err.to_string().contains("segment gap"), "{err}");
}

#[test]
fn corrupt_snapshot_section_is_detected() {
    let tmp = TempDir::new("snapcrc");
    let mut store = DurableStore::create(tmp.path(), opts()).unwrap();
    store.append(1, b"x").unwrap();
    store.snapshot(&[(5, b"important-state".to_vec())]).unwrap();
    drop(store);

    let path = tmp.path().join("snap_00000001.snap");
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let err = DurableStore::open(tmp.path(), opts()).unwrap_err();
    assert!(err.to_string().contains("CRC mismatch in section"), "{err}");
}

#[test]
fn wrong_snapshot_magic_and_version_are_detected() {
    let tmp = TempDir::new("snaphdr");
    let mut store = DurableStore::create(tmp.path(), opts()).unwrap();
    store.append(1, b"x").unwrap();
    store.snapshot(&[(5, b"state".to_vec())]).unwrap();
    drop(store);

    let path = tmp.path().join("snap_00000001.snap");
    let good = std::fs::read(&path).unwrap();

    let mut bad = good.clone();
    bad[0] = b'Z';
    std::fs::write(&path, &bad).unwrap();
    let err = DurableStore::open(tmp.path(), opts()).unwrap_err();
    assert!(err.to_string().contains("bad snapshot magic"), "{err}");

    let mut bad = good.clone();
    bad[8] = 42;
    std::fs::write(&path, &bad).unwrap();
    let err = DurableStore::open(tmp.path(), opts()).unwrap_err();
    assert!(err.to_string().contains("unsupported snapshot format version"), "{err}");
}

#[test]
fn stale_snapshot_tmp_file_is_swept_on_open() {
    let tmp = TempDir::new("staletmp");
    let mut store = DurableStore::create(tmp.path(), opts()).unwrap();
    store.append(1, b"x").unwrap();
    store.sync().unwrap();
    drop(store);

    // A crash mid-snapshot leaves the temp file; the rename never ran.
    std::fs::write(tmp.path().join("snap_00000001.snap.tmp"), b"half-written").unwrap();

    let (_, recovered) = DurableStore::open(tmp.path(), opts()).unwrap();
    assert!(recovered.snapshot.is_none());
    assert_eq!(recovered.records.len(), 1);
    assert!(!tmp.path().join("snap_00000001.snap.tmp").exists());
}

#[test]
fn metrics_counters_track_the_lifecycle() {
    let tmp = TempDir::new("metrics");
    let registry = obs::Registry::new();
    let options = StoreOptions {
        retention: Retention::KeepAll,
        metrics: Some(registry.clone()),
        ..StoreOptions::default()
    };
    let mut store = DurableStore::create(tmp.path(), options).unwrap();
    store.append(1, b"a").unwrap();
    store.append(1, b"b").unwrap();
    store.snapshot(&[(1, b"s".to_vec())]).unwrap();
    store.append(1, b"c").unwrap();
    store.sync().unwrap();
    drop(store);

    let snap = registry.snapshot();
    assert_eq!(snap.counter("wal.appends"), Some(3));
    assert_eq!(snap.counter("snapshot.written"), Some(1));
    assert!(snap.counter("wal.fsyncs").unwrap_or(0) >= 2);
    assert!(snap.counter("wal.rotations").unwrap_or(0) >= 1);
    assert!(snap.counter("snapshot.bytes").unwrap_or(0) > 0);

    // Replay counts land in a fresh registry on open.
    let reopen_registry = obs::Registry::new();
    let reopen_options = StoreOptions {
        retention: Retention::KeepAll,
        metrics: Some(reopen_registry.clone()),
        ..StoreOptions::default()
    };
    let (_, recovered) = DurableStore::open(tmp.path(), reopen_options).unwrap();
    assert_eq!(recovered.records.len(), 1);
    assert_eq!(reopen_registry.snapshot().counter("wal.replayed_records"), Some(1));
}
