//! Live crawl under adverse network conditions.
//!
//! ```sh
//! cargo run --release --example live_crawl
//! ```
//!
//! Starts the simulated services with fault injection enabled (dropped
//! connections, injected 500s, added latency — the smoltcp-style adversity
//! knobs), then runs the full §3 crawl and shows that the retry/timeout
//! hygiene of §4.3.1 still reconstructs the platform exactly.

use crawler::{Crawler, Endpoints};
use httpnet::{FaultConfig, ServerConfig};
use std::sync::Arc;
use std::time::Duration;
use synth::config::Scale;
use synth::WorldConfig;
use webfront::SimServices;

fn main() {
    let cfg = WorldConfig { scale: Scale::Custom(0.002), ..WorldConfig::small() };
    println!("generating world…");
    let (world, _) = synth::generate(&cfg);
    let truth_comments = world.dissenter.total_comments();
    let truth_urls = world.dissenter.url_count();
    let world = Arc::new(world);

    // 3% dropped connections, 2% injected 500s, 1% truncations and
    // resets, 0–2 ms jitter.
    let server_cfg = ServerConfig {
        faults: FaultConfig {
            drop_prob: 0.03,
            error_prob: 0.02,
            truncate_prob: 0.01,
            reset_prob: 0.01,
            jitter: Duration::from_millis(2),
            seed: 42,
            ..FaultConfig::none()
        },
        ..Default::default()
    };
    let services = SimServices::start(world.clone(), server_cfg).expect("services");
    println!(
        "services up: dissenter={} gab={} reddit={} youtube={} (faults ON)",
        services.dissenter.addr(),
        services.gab.addr(),
        services.reddit.addr(),
        services.youtube.addr()
    );

    let mut crawler = Crawler::new(Endpoints {
        dissenter: services.dissenter.addr(),
        gab: services.gab.addr(),
        reddit: services.reddit.addr(),
        youtube: services.youtube.addr(),
    });
    crawler.config.retries = 6;
    crawler.config.backoff = Duration::from_millis(5);
    crawler.config.enum_gap_tolerance = 600;

    println!("crawling through the faults…");
    let start = std::time::Instant::now();
    let store = crawler.full_crawl();
    let elapsed = start.elapsed();

    use std::sync::atomic::Ordering;
    println!("\ncrawl finished in {:.1}s", elapsed.as_secs_f64());
    println!("requests issued:   {}", store.stats.requests.load(Ordering::Relaxed));
    println!("retries:           {}", store.stats.retries.load(Ordering::Relaxed));
    println!("permanent fails:   {}", store.stats.failures.load(Ordering::Relaxed));
    println!(
        "mirror: {}/{} comments, {}/{} URLs, {} users",
        store.comments.len(),
        truth_comments,
        store.urls.len(),
        truth_urls,
        store.users.len()
    );
    let (sampled, confirmed) = store.shadow_validation;
    println!("shadow validation: {confirmed}/{sampled} confirmed");
    println!("\nper-phase coverage:");
    for (phase, snap) in store.stats.phase_snapshots() {
        println!(
            "  {:9} attempted={} succeeded={} retried={} dead_lettered={}",
            phase.name(),
            snap.attempted,
            snap.succeeded,
            snap.retried,
            snap.dead_lettered
        );
    }
    let dead = store.dead_letters();
    if !dead.is_empty() {
        println!("dead letters ({}):", dead.len());
        for d in dead.iter().take(10) {
            println!("  [{}] {} — {}", d.phase.name(), d.target, d.cause);
        }
    }

    if store.comments.len() == truth_comments && store.urls.len() == truth_urls {
        println!("\nreconstruction is EXACT despite the injected faults.");
    } else {
        println!("\nreconstruction incomplete — inspect retry budget / fault rates.");
    }
}
