//! Segmented WAL files: `wal_{:08}.seg`, a fixed 40-byte header
//! (`DSRWALv1` magic, format version, flags, segment number, store
//! UUID) followed by record frames `[len u32][tag u32][crc u32][payload]`
//! with the CRC32 taken over `tag_le ++ payload`. All integers little
//! endian.

use crate::{corrupt, crc::crc32, FORMAT_VERSION, WAL_MAGIC};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Bytes in a segment header.
pub(crate) const HEADER_LEN: u64 = 40;
/// Bytes in a record frame header (len + tag + crc).
const FRAME_LEN: usize = 12;

fn segment_path(dir: &Path, num: u64) -> PathBuf {
    dir.join(format!("wal_{num:08}.seg"))
}

/// All segments in `dir`, sorted by segment number.
pub(crate) fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if let Some(num) = name
            .strip_prefix("wal_")
            .and_then(|rest| rest.strip_suffix(".seg"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            out.push((num, path));
        }
    }
    out.sort_unstable_by_key(|(num, _)| *num);
    Ok(out)
}

fn frame(tag: u32, payload: &[u8]) -> Vec<u8> {
    let crc = crc32(&[&tag.to_le_bytes(), payload]);
    let mut buf = Vec::with_capacity(FRAME_LEN + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&tag.to_le_bytes());
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Appender over one live segment file.
pub(crate) struct SegmentWriter {
    out: io::BufWriter<std::fs::File>,
    seg_no: u64,
    bytes: u64,
}

impl SegmentWriter {
    /// Create segment `num` in `dir` with a synced header. Fails if the
    /// file already exists (segment numbers are never reused silently).
    pub(crate) fn create(dir: &Path, num: u64, uuid: [u8; 16]) -> io::Result<Self> {
        let path = segment_path(dir, num);
        let file = std::fs::OpenOptions::new().write(true).create_new(true).open(&path)?;
        let mut out = io::BufWriter::new(file);
        out.write_all(&WAL_MAGIC)?;
        out.write_all(&FORMAT_VERSION.to_le_bytes())?;
        out.write_all(&0u32.to_le_bytes())?; // flags, reserved
        out.write_all(&num.to_le_bytes())?;
        out.write_all(&uuid)?;
        out.flush()?;
        out.get_ref().sync_all()?;
        Ok(Self { out, seg_no: num, bytes: HEADER_LEN })
    }

    /// Reopen a validated segment for further appends at its current end.
    pub(crate) fn reopen(path: &Path, num: u64) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        let bytes = file.metadata()?.len();
        Ok(Self { out: io::BufWriter::new(file), seg_no: num, bytes })
    }

    /// Buffered frame write; durable only after [`SegmentWriter::sync`].
    pub(crate) fn append(&mut self, tag: u32, payload: &[u8]) -> io::Result<()> {
        let buf = frame(tag, payload);
        self.out.write_all(&buf)?;
        self.bytes += buf.len() as u64;
        Ok(())
    }

    /// Flush and fsync everything appended so far.
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.out.flush()?;
        self.out.get_ref().sync_all()
    }

    /// Write a deliberately incomplete frame (the on-disk shape a kill
    /// mid-append leaves behind) and flush it so recovery sees it.
    pub(crate) fn write_torn_record(&mut self, tag: u32, payload: &[u8]) -> io::Result<()> {
        let buf = frame(tag, payload);
        // Cut inside the payload when there is one, else inside the
        // frame header — either way the frame is unreadable past `len`.
        let cut = if payload.is_empty() { 8 } else { FRAME_LEN + payload.len() / 2 };
        self.out.write_all(&buf[..cut])?;
        self.bytes += cut as u64;
        self.out.flush()?;
        self.out.get_ref().sync_all()
    }

    /// Total bytes written to the segment, header included.
    pub(crate) fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// This segment's number.
    pub(crate) fn segment_number(&self) -> u64 {
        self.seg_no
    }
}

/// What reading one segment produced.
pub(crate) enum SegmentRead {
    /// Header validated; `records` decoded. `truncated_to` is set when a
    /// torn tail was found at that byte offset (final segment only).
    Valid { records: Vec<crate::Record>, truncated_to: Option<u64> },
    /// The file is shorter than a segment header — a crash landed
    /// between file creation and the header write. Final segment only;
    /// anywhere else it is reported as corruption.
    TornHeader,
}

/// Read and validate segment `num` at `path`. `uuid` is the store UUID
/// established so far (`None` until the first header is seen); `last`
/// marks the final segment, the only place torn-tail recovery applies —
/// anomalies in sealed segments are hard errors.
pub(crate) fn read_segment(
    path: &Path,
    num: u64,
    uuid: &mut Option<[u8; 16]>,
    last: bool,
) -> io::Result<SegmentRead> {
    let bytes = std::fs::read(path)?;
    let name = path.display();
    if (bytes.len() as u64) < HEADER_LEN {
        if last {
            return Ok(SegmentRead::TornHeader);
        }
        return Err(corrupt(format!("{name}: short segment header ({} bytes)", bytes.len())));
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(corrupt(format!("{name}: bad WAL magic")));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(corrupt(format!(
            "{name}: unsupported WAL format version {version} (expected {FORMAT_VERSION})"
        )));
    }
    let seg_no = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    if seg_no != num {
        return Err(corrupt(format!(
            "{name}: header says segment {seg_no} but the file name says {num}"
        )));
    }
    let file_uuid: [u8; 16] = bytes[24..40].try_into().unwrap();
    match *uuid {
        Some(expected) if expected != file_uuid => {
            return Err(corrupt(format!("{name}: store UUID mismatch (foreign segment?)")));
        }
        Some(_) => {}
        None => *uuid = Some(file_uuid),
    }

    let mut records = Vec::new();
    let mut offset = HEADER_LEN as usize;
    let mut truncated_to = None;
    while offset < bytes.len() {
        let frame_ok = (|| {
            let header = bytes.get(offset..offset + FRAME_LEN)?;
            let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
            let tag = u32::from_le_bytes(header[4..8].try_into().unwrap());
            let crc = u32::from_le_bytes(header[8..12].try_into().unwrap());
            let payload = bytes.get(offset + FRAME_LEN..offset + FRAME_LEN + len)?;
            if crc32(&[&tag.to_le_bytes(), payload]) != crc {
                return None;
            }
            Some((tag, payload.to_vec(), FRAME_LEN + len))
        })();
        match frame_ok {
            Some((tag, payload, advance)) => {
                records.push(crate::Record { tag, payload });
                offset += advance;
            }
            None if last => {
                // A kill mid-append: everything up to here is good, the
                // rest is the torn tail.
                truncated_to = Some(offset as u64);
                break;
            }
            None => {
                return Err(corrupt(format!(
                    "{name}: corrupt record at byte {offset} in a sealed segment"
                )));
            }
        }
    }
    Ok(SegmentRead::Valid { records, truncated_to })
}

/// Cut a torn tail off: truncate the segment file to `end` bytes and
/// sync it.
pub(crate) fn truncate_segment(path: &Path, end: u64) -> io::Result<()> {
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(end)?;
    file.sync_all()
}
