//! Windowed longitudinal outputs: growth curves, per-window toxicity,
//! crossover timing, and the scorer-drift report.
//!
//! The paper is a 14-month longitudinal crawl; the longitudinal engine
//! replays it as a base study window (window 0, everything up to
//! `STUDY_END`) followed by fixed-length epochs. Every function here is
//! a pure function of a [`CrawlStore`] and the window arithmetic below,
//! which is what makes the sweep≡one-shot differential oracle possible:
//! the world is append-only in timestamp order (no backdating — bans
//! flip metadata flags and deletions leave Dissenter ghosts), so the
//! comments of window *w* in sweep *w*'s store are exactly the comments
//! of window *w* in the final store.
//!
//! The drift half models a real measurement-infrastructure failure
//! mode: when a closed scoring service is silently retrained mid-study
//! ([`ScorerVersion`]),
//! per-window tables stop being comparable. [`drift_report`] detects
//! version boundaries, rescores a fixed calibration sample under both
//! revisions, and flags windows whose deltas are large enough to change
//! conclusions.

use crate::toxicity::score_texts_versioned_pooled;
use classify::ScorerVersion;
use crawler::store::CrawlStore;
use ids::clock::format_date;
use ids::{ObjectId, Timestamp, STUDY_END};
use std::fmt::Write as _;

/// Seconds per simulated epoch (30 days).
pub const EPOCH_SECS: u64 = 30 * 86_400;

/// Default conclusion-changing threshold on a calibration-sample mean
/// delta (absolute score units).
pub const DRIFT_FLAG_THRESHOLD: f64 = 0.005;

/// First instant of epoch `e` (1-based; epoch 0 is the base study
/// window and has no start of its own).
pub fn epoch_start(e: u32) -> Timestamp {
    assert!(e >= 1, "epoch 0 is the base study window");
    STUDY_END + (e as u64 - 1) * EPOCH_SECS
}

/// One past the last instant of window `e` (window 0 ends at
/// `STUDY_END`).
pub fn epoch_end(e: u32) -> Timestamp {
    STUDY_END + e as u64 * EPOCH_SECS
}

/// Which window a timestamp falls in: 0 for the base study window,
/// `e ≥ 1` for epoch `e`.
pub fn window_of(ts: Timestamp) -> u32 {
    if ts < STUDY_END {
        0
    } else {
        (1 + (ts - STUDY_END) / EPOCH_SECS) as u32
    }
}

/// One row of the per-window growth curve (§4.1 extended past the study
/// window).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowthRow {
    /// Window index (0 = base study window).
    pub window: u32,
    /// Date label of the window's end.
    pub until: String,
    /// Users whose author-id timestamp falls in this window.
    pub new_users: usize,
    /// Cumulative users through this window.
    pub total_users: usize,
    /// Comments created in this window.
    pub new_comments: usize,
    /// Cumulative comments through this window.
    pub total_comments: usize,
    /// URL threads first seen in this window.
    pub new_urls: usize,
    /// Cumulative URL threads through this window.
    pub total_urls: usize,
}

/// The growth curve over windows `0..=windows`, computed from crawl
/// output only (author-id / commenturl-id embedded timestamps and
/// scraped comment creation times — the same signals the paper used).
pub fn growth_curve(store: &CrawlStore, windows: u32) -> Vec<GrowthRow> {
    let n = windows as usize + 1;
    let (mut users, mut comments, mut urls) = (vec![0usize; n], vec![0usize; n], vec![0usize; n]);
    let clamp = |w: u32| (w.min(windows)) as usize;
    for u in store.users.values() {
        users[clamp(window_of(u.author_id.timestamp()))] += 1;
    }
    for c in store.comments.values() {
        comments[clamp(window_of(c.created_at))] += 1;
    }
    for u in store.urls.values() {
        urls[clamp(window_of(u.id.timestamp()))] += 1;
    }
    let (mut tu, mut tc, mut tl) = (0usize, 0usize, 0usize);
    (0..=windows)
        .map(|w| {
            let i = w as usize;
            tu += users[i];
            tc += comments[i];
            tl += urls[i];
            GrowthRow {
                window: w,
                until: format_date(epoch_end(w)),
                new_users: users[i],
                total_users: tu,
                new_comments: comments[i],
                total_comments: tc,
                new_urls: urls[i],
                total_urls: tl,
            }
        })
        .collect()
}

/// Toxicity summary of one window's comments under one scorer revision.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowToxicity {
    /// Window index.
    pub window: u32,
    /// Date label of the window's end.
    pub until: String,
    /// Scorer revision that produced these numbers.
    pub scorer_version: u32,
    /// Comments scored.
    pub comments: usize,
    /// Mean SEVERE_TOXICITY.
    pub mean_severe: f64,
    /// Mean LIKELY_TO_REJECT.
    pub mean_reject: f64,
    /// Mean ATTACK_ON_AUTHOR.
    pub mean_attack: f64,
}

/// Comment-ids of one window, ascending — the deterministic iteration
/// order every windowed aggregate uses.
fn window_comment_ids(store: &CrawlStore, window: u32) -> Vec<ObjectId> {
    let mut ids: Vec<ObjectId> = store
        .comments
        .values()
        .filter(|c| window_of(c.created_at) == window)
        .map(|c| c.id)
        .collect();
    ids.sort_unstable();
    ids
}

/// Score window `window`'s comments under `version` and summarize.
pub fn window_toxicity(
    store: &CrawlStore,
    window: u32,
    version: &ScorerVersion,
    pool: &httpnet::ThreadPool,
    metrics: Option<&obs::Registry>,
) -> WindowToxicity {
    let ids = window_comment_ids(store, window);
    let texts: Vec<&str> = ids.iter().map(|id| store.comments[id].text.as_str()).collect();
    let scores = score_texts_versioned_pooled(&texts, version, pool, metrics);
    let n = scores.len();
    let (mut severe, mut reject, mut attack) = (0.0f64, 0.0f64, 0.0f64);
    for s in &scores {
        severe += s.perspective.severe_toxicity;
        reject += s.perspective.likely_to_reject;
        attack += s.perspective.attack_on_author;
    }
    let mean = |sum: f64| if n > 0 { sum / n as f64 } else { 0.0 };
    WindowToxicity {
        window,
        until: format_date(epoch_end(window)),
        scorer_version: version.version,
        comments: n,
        mean_severe: mean(severe),
        mean_reject: mean(reject),
        mean_attack: mean(attack),
    }
}

/// First window (>0) whose mean SEVERE_TOXICITY exceeds the base
/// window's — the longitudinal "crossover" instant, if any.
pub fn crossover_window(rows: &[WindowToxicity]) -> Option<u32> {
    let base = rows.first()?.mean_severe;
    rows.iter().skip(1).find(|r| r.mean_severe > base).map(|r| r.window)
}

/// One detected scorer-version boundary with its rescoring deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftWindow {
    /// Window where the new revision took effect.
    pub window: u32,
    /// Revision active in the previous window.
    pub from_version: u32,
    /// Revision active from this window on.
    pub to_version: u32,
    /// Calibration comments rescored under both revisions.
    pub calibration_n: usize,
    /// New-minus-old mean SEVERE_TOXICITY over the calibration sample.
    pub mean_severe_delta: f64,
    /// New-minus-old mean LIKELY_TO_REJECT over the calibration sample.
    pub mean_reject_delta: f64,
    /// Largest per-comment |SEVERE_TOXICITY delta| in the sample.
    pub max_abs_comment_delta: f64,
    /// Deltas exceed the conclusion-changing threshold.
    pub flagged: bool,
}

/// The rescoring-delta report across a study's version timeline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DriftReport {
    /// One entry per detected version boundary, ascending by window.
    pub boundaries: Vec<DriftWindow>,
    /// Threshold used for flagging.
    pub threshold: f64,
}

impl DriftReport {
    /// Boundaries whose deltas cross the threshold.
    pub fn flagged(&self) -> Vec<&DriftWindow> {
        self.boundaries.iter().filter(|b| b.flagged).collect()
    }
}

fn mutation(name: &str) -> bool {
    static ACTIVE: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    ACTIVE.get_or_init(|| std::env::var("SIMCHECK_MUTATE").ok()).as_deref() == Some(name)
}

/// Detect scorer-version boundaries in `versions` (one entry per window,
/// index = window) and rescore a calibration sample across each
/// boundary.
///
/// The calibration sample is the first `calibration` comment-ids
/// (ascending) of the base window — fixed text, so any score movement is
/// the scorer's doing, not the platform's. A boundary is flagged when
/// either mean delta exceeds `threshold` in absolute value: drift large
/// enough to silently change a longitudinal conclusion.
pub fn drift_report(
    store: &CrawlStore,
    versions: &[ScorerVersion],
    calibration: usize,
    threshold: f64,
    pool: &httpnet::ThreadPool,
    metrics: Option<&obs::Registry>,
) -> DriftReport {
    let mut report = DriftReport { boundaries: Vec::new(), threshold };
    let sample_ids: Vec<ObjectId> =
        window_comment_ids(store, 0).into_iter().take(calibration.max(1)).collect();
    let texts: Vec<&str> =
        sample_ids.iter().map(|id| store.comments[id].text.as_str()).collect();
    for w in 1..versions.len() {
        let (prev, cur) = (&versions[w - 1], &versions[w]);
        if prev.version == cur.version && prev.drift == cur.drift && prev.seed == cur.seed {
            continue;
        }
        if mutation("skip_drift_rescore") {
            // Failpoint: report the boundary but skip the rescoring pass,
            // leaving every delta zero — exactly the silent-drift blind
            // spot the longitudinal.drift oracle exists to catch.
            report.boundaries.push(DriftWindow {
                window: w as u32,
                from_version: prev.version,
                to_version: cur.version,
                calibration_n: texts.len(),
                mean_severe_delta: 0.0,
                mean_reject_delta: 0.0,
                max_abs_comment_delta: 0.0,
                flagged: false,
            });
            continue;
        }
        let old = score_texts_versioned_pooled(&texts, prev, pool, metrics);
        let new = score_texts_versioned_pooled(&texts, cur, pool, metrics);
        let n = texts.len();
        let (mut dsev, mut drej, mut dmax) = (0.0f64, 0.0f64, 0.0f64);
        for (o, s) in old.iter().zip(&new) {
            let ds = s.perspective.severe_toxicity - o.perspective.severe_toxicity;
            dsev += ds;
            drej += s.perspective.likely_to_reject - o.perspective.likely_to_reject;
            dmax = dmax.max(ds.abs());
        }
        let mean = |sum: f64| if n > 0 { sum / n as f64 } else { 0.0 };
        let (msev, mrej) = (mean(dsev), mean(drej));
        report.boundaries.push(DriftWindow {
            window: w as u32,
            from_version: prev.version,
            to_version: cur.version,
            calibration_n: n,
            mean_severe_delta: msev,
            mean_reject_delta: mrej,
            max_abs_comment_delta: dmax,
            flagged: msev.abs() > threshold || mrej.abs() > threshold,
        });
    }
    report
}

/// `growth_curve.csv` — one row per window.
pub fn growth_csv(rows: &[GrowthRow]) -> String {
    let mut s = String::from(
        "window,until,new_users,total_users,new_comments,total_comments,new_urls,total_urls\n",
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{}",
            r.window, r.until, r.new_users, r.total_users, r.new_comments, r.total_comments,
            r.new_urls, r.total_urls
        );
    }
    s
}

/// `window_toxicity.csv` — one row per window.
pub fn window_toxicity_csv(rows: &[WindowToxicity]) -> String {
    let mut s = String::from(
        "window,until,scorer_version,comments,mean_severe,mean_reject,mean_attack\n",
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{},{},{},{},{:.6},{:.6},{:.6}",
            r.window, r.until, r.scorer_version, r.comments, r.mean_severe, r.mean_reject,
            r.mean_attack
        );
    }
    s
}

/// `drift_report.csv` — one row per detected version boundary.
pub fn drift_csv(report: &DriftReport) -> String {
    let mut s = String::from(
        "window,from_version,to_version,calibration_n,mean_severe_delta,mean_reject_delta,max_abs_comment_delta,flagged\n",
    );
    for b in &report.boundaries {
        let _ = writeln!(
            s,
            "{},{},{},{},{:.6},{:.6},{:.6},{}",
            b.window, b.from_version, b.to_version, b.calibration_n, b.mean_severe_delta,
            b.mean_reject_delta, b.max_abs_comment_delta, b.flagged
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_arithmetic_is_consistent() {
        assert_eq!(window_of(STUDY_END - 1), 0);
        assert_eq!(window_of(STUDY_END), 1);
        assert_eq!(window_of(STUDY_END + EPOCH_SECS - 1), 1);
        assert_eq!(window_of(STUDY_END + EPOCH_SECS), 2);
        assert_eq!(epoch_start(1), STUDY_END);
        assert_eq!(epoch_end(0), STUDY_END);
        assert_eq!(epoch_end(2), epoch_start(3));
        for e in 1..5 {
            assert_eq!(window_of(epoch_start(e)), e);
            assert_eq!(window_of(epoch_end(e) - 1), e);
        }
    }

    #[test]
    fn crossover_finds_first_exceeding_window() {
        let row = |w: u32, severe: f64| WindowToxicity {
            window: w,
            until: String::new(),
            scorer_version: 0,
            comments: 1,
            mean_severe: severe,
            mean_reject: 0.0,
            mean_attack: 0.0,
        };
        let rows = vec![row(0, 0.2), row(1, 0.15), row(2, 0.25), row(3, 0.3)];
        assert_eq!(crossover_window(&rows), Some(2));
        assert_eq!(crossover_window(&rows[..2]), None);
        assert_eq!(crossover_window(&[]), None);
    }

    #[test]
    fn csv_shapes_are_stable() {
        let g = GrowthRow {
            window: 0,
            until: "2020-04-30".into(),
            new_users: 3,
            total_users: 3,
            new_comments: 9,
            total_comments: 9,
            new_urls: 2,
            total_urls: 2,
        };
        let csv = growth_csv(std::slice::from_ref(&g));
        assert!(csv.starts_with("window,until,"));
        assert!(csv.contains("0,2020-04-30,3,3,9,9,2,2\n"));
        let d = DriftReport {
            boundaries: vec![DriftWindow {
                window: 1,
                from_version: 0,
                to_version: 1,
                calibration_n: 5,
                mean_severe_delta: 0.0123456,
                mean_reject_delta: -0.01,
                max_abs_comment_delta: 0.2,
                flagged: true,
            }],
            threshold: DRIFT_FLAG_THRESHOLD,
        };
        let csv = drift_csv(&d);
        assert!(csv.contains("1,0,1,5,0.012346,-0.010000,0.200000,true\n"));
        assert_eq!(d.flagged().len(), 1);
    }
}
