//! §§4.3–4.4 — toxicity scoring and distribution comparisons.
//!
//! All comments (Dissenter + baselines) are scored with the full §3.5
//! stack: the hate dictionary, the four Perspective-style models, and —
//! via [`crate::report`] — the SVM class probabilities. This module owns
//! the scoring pass and the Figure 4 / 7 / 8 aggregations.

use crate::allsides::{bias_of_domain, Bias};
use crate::url::ParsedUrl;
use classify::{HateDictionary, PerspectiveModel, PerspectiveScores, ScorerVersion};
use crawler::store::{CrawlStore, ShadowLabel};
use ids::ObjectId;
use stats::{ks_two_sample_sketch, EcdfSketch, KsResult};
use std::collections::HashMap;

/// Scores for one comment.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommentScores {
    /// Perspective-style model outputs.
    pub perspective: PerspectiveScores,
    /// Dictionary hate ratio.
    pub dictionary: f64,
}

/// Score a batch of texts in parallel (sharded on a transient pool).
pub fn score_texts(texts: &[&str], workers: usize) -> Vec<CommentScores> {
    score_texts_with_metrics(texts, workers, None)
}

/// [`score_texts`], exporting per-scorer throughput to `metrics` (see
/// [`score_texts_pooled`]). Spins up a transient `workers`-sized pool;
/// callers that already own a pool should prefer the pooled variant.
pub fn score_texts_with_metrics(
    texts: &[&str],
    workers: usize,
    metrics: Option<&obs::Registry>,
) -> Vec<CommentScores> {
    let workers = workers.max(1);
    let pool = httpnet::ThreadPool::new(workers, workers * 2);
    score_texts_pooled(texts, &pool, metrics)
}

/// Score a batch of texts on a shared [`httpnet::ThreadPool`], split
/// into fixed-size index-ordered shards and merged in shard order —
/// byte-identical output for any pool size (scoring is a pure function
/// of the text).
///
/// Exports per-scorer throughput to `metrics`:
/// `classify.<scorer>.comments` counters (text counts, deterministic),
/// `classify.<scorer>.busy` histograms (per-shard scorer busy time),
/// `classify.<scorer>.comments_per_sec` gauges (per-core rate: comments
/// over summed cross-shard busy time), plus `shard.classify.score.*`
/// shard execution metrics (deterministic `jobs`/`items` counts,
/// wall-clock `busy`/`gather` histograms).
pub fn score_texts_pooled(
    texts: &[&str],
    pool: &httpnet::ThreadPool,
    metrics: Option<&obs::Registry>,
) -> Vec<CommentScores> {
    score_texts_versioned_pooled(texts, &ScorerVersion::launch(0), pool, metrics)
}

/// [`score_texts_pooled`] under a specific [`ScorerVersion`]. The launch
/// revision (or any zero-drift revision) scores bit-identically to the
/// standard model, so the unversioned entry points delegate here; the
/// windowed longitudinal analysis passes drifted revisions to reproduce
/// mid-study scorer retraining.
pub fn score_texts_versioned_pooled(
    texts: &[&str],
    version: &ScorerVersion,
    pool: &httpnet::ThreadPool,
    metrics: Option<&obs::Registry>,
) -> Vec<CommentScores> {
    use std::time::{Duration, Instant};
    let version = *version;
    let bounds = classify::shard::shard_bounds(texts.len(), classify::shard::DEFAULT_SHARD_SIZE);
    // (scores, perspective busy, dictionary busy) per shard.
    let jobs: Vec<_> = bounds
        .iter()
        .map(|r| {
            let shard: Vec<String> = texts[r.clone()].iter().map(|t| (*t).to_owned()).collect();
            move || {
                let model = PerspectiveModel::versioned(&version);
                let dict = HateDictionary::standard();
                let mut persp_busy = Duration::ZERO;
                let mut dict_busy = Duration::ZERO;
                let scores = shard
                    .iter()
                    .map(|t| {
                        let t0 = Instant::now();
                        let perspective = model.score(t);
                        let t1 = Instant::now();
                        let dictionary = dict.score(t);
                        persp_busy += t1 - t0;
                        dict_busy += t1.elapsed();
                        CommentScores { perspective, dictionary }
                    })
                    .collect::<Vec<_>>();
                (scores, persp_busy, dict_busy)
            }
        })
        .collect();
    let out = pool.scatter_labeled("classify.score", metrics, jobs);
    if let Some(registry) = metrics {
        let n = texts.len() as u64;
        registry.add("shard.classify.score.items", n);
        let persp_total: Duration = out.iter().map(|(_, p, _)| *p).sum();
        let dict_total: Duration = out.iter().map(|(_, _, d)| *d).sum();
        for (scorer, busy) in [("perspective", persp_total), ("dictionary", dict_total)] {
            registry.add(&format!("classify.{scorer}.comments"), n);
            registry.observe(&format!("classify.{scorer}.busy"), busy);
            if busy > Duration::ZERO {
                // Cumulative per-core rate across every scoring pass so
                // far in this registry's lifetime.
                let comments = registry.counter(&format!("classify.{scorer}.comments")).get();
                let busy_total = registry
                    .histogram(&format!("classify.{scorer}.busy"))
                    .snapshot()
                    .sum_ns as f64
                    / 1e9;
                registry.set_gauge(
                    &format!("classify.{scorer}.comments_per_sec"),
                    comments as f64 / busy_total,
                );
            }
        }
    }
    out.into_iter().flat_map(|(scores, _, _)| scores).collect()
}

/// All Dissenter comments scored, keyed by comment-id.
pub fn score_store(store: &CrawlStore, workers: usize) -> HashMap<ObjectId, CommentScores> {
    score_store_with_metrics(store, workers, None)
}

/// [`score_store`] with per-scorer metrics (see
/// [`score_texts_with_metrics`]).
pub fn score_store_with_metrics(
    store: &CrawlStore,
    workers: usize,
    metrics: Option<&obs::Registry>,
) -> HashMap<ObjectId, CommentScores> {
    let workers = workers.max(1);
    let pool = httpnet::ThreadPool::new(workers, workers * 2);
    score_store_pooled(store, &pool, metrics)
}

/// [`score_store`] on a shared pool (see [`score_texts_pooled`]).
pub fn score_store_pooled(
    store: &CrawlStore,
    pool: &httpnet::ThreadPool,
    metrics: Option<&obs::Registry>,
) -> HashMap<ObjectId, CommentScores> {
    let items: Vec<(&ObjectId, &str)> =
        store.comments.iter().map(|(id, c)| (id, c.text.as_str())).collect();
    let texts: Vec<&str> = items.iter().map(|(_, t)| *t).collect();
    let scores = score_texts_pooled(&texts, pool, metrics);
    items.iter().map(|(id, _)| **id).zip(scores).collect()
}

/// One Figure-4 style dataset: streaming ECDF sketches of the three
/// §4.3.1 models for a comment subset. Sketch statistics are
/// bit-identical to the vector-backed [`stats::Ecdf`] they replaced
/// (see `stats::stream`), so every rendered byte is unchanged.
#[derive(Debug, Clone, Default)]
pub struct ShadowCdfs {
    /// LIKELY_TO_REJECT ECDF sketch.
    pub likely_to_reject: EcdfSketch,
    /// OBSCENE ECDF sketch.
    pub obscene: EcdfSketch,
    /// SEVERE_TOXICITY ECDF sketch.
    pub severe_toxicity: EcdfSketch,
    /// Sample size.
    pub n: usize,
}

impl ShadowCdfs {
    fn push(&mut self, s: &PerspectiveScores) {
        self.likely_to_reject.push(s.likely_to_reject);
        self.obscene.push(s.obscene);
        self.severe_toxicity.push(s.severe_toxicity);
        self.n += 1;
    }
}

/// Figure 4: All vs NSFW-only vs Offensive-only.
#[derive(Debug, Clone)]
pub struct Figure4 {
    /// All comments.
    pub all: ShadowCdfs,
    /// NSFW-labeled comments.
    pub nsfw: ShadowCdfs,
    /// Offensive-labeled comments.
    pub offensive: ShadowCdfs,
}

/// Compute Figure 4 from pre-computed scores.
pub fn figure4(store: &CrawlStore, scores: &HashMap<ObjectId, CommentScores>) -> Figure4 {
    let mut all = ShadowCdfs::default();
    let mut nsfw = ShadowCdfs::default();
    let mut off = ShadowCdfs::default();
    for c in store.comments.values() {
        let Some(s) = scores.get(&c.id) else { continue };
        all.push(&s.perspective);
        match c.label {
            ShadowLabel::Nsfw => nsfw.push(&s.perspective),
            ShadowLabel::Offensive => off.push(&s.perspective),
            ShadowLabel::Both => {
                nsfw.push(&s.perspective);
                off.push(&s.perspective);
            }
            ShadowLabel::Standard => {}
        }
    }
    Figure4 { all, nsfw, offensive: off }
}

/// Figure 7: the four-dataset comparison. Datasets are scored score
/// vectors for each model.
#[derive(Debug, Clone)]
pub struct Figure7Dataset {
    /// Dataset name.
    pub name: String,
    /// LIKELY_TO_REJECT ECDF sketch.
    pub likely_to_reject: EcdfSketch,
    /// SEVERE_TOXICITY ECDF sketch.
    pub severe_toxicity: EcdfSketch,
    /// ATTACK_ON_AUTHOR ECDF sketch.
    pub attack_on_author: EcdfSketch,
    /// Comments scored.
    pub n: usize,
}

/// Build one Figure-7 dataset from raw scores.
pub fn figure7_dataset(name: &str, scores: &[PerspectiveScores]) -> Figure7Dataset {
    let mut d = Figure7Dataset {
        name: name.to_owned(),
        likely_to_reject: EcdfSketch::new(),
        severe_toxicity: EcdfSketch::new(),
        attack_on_author: EcdfSketch::new(),
        n: scores.len(),
    };
    for s in scores {
        d.likely_to_reject.push(s.likely_to_reject);
        d.severe_toxicity.push(s.severe_toxicity);
        d.attack_on_author.push(s.attack_on_author);
    }
    d
}

/// Figure 8: Dissenter scores conditioned on the URL's Allsides bias.
#[derive(Debug, Clone)]
pub struct Figure8 {
    /// Per-bias SEVERE_TOXICITY sketches (Fig. 8a's boxes render the
    /// sketch's `n`/`mean`/`median`, which match the old
    /// `stats::Describe` fields bit for bit).
    pub severe_by_bias: Vec<(Bias, EcdfSketch)>,
    /// Per-bias ATTACK_ON_AUTHOR ECDF sketches (Fig. 8b).
    pub attack_by_bias: Vec<(Bias, EcdfSketch)>,
    /// Pairwise KS tests on SEVERE_TOXICITY across ranked biases.
    pub ks_severe: Vec<(Bias, Bias, KsResult)>,
    /// Comments on unranked URLs.
    pub unranked_comments: usize,
    /// Comments on ranked URLs.
    pub ranked_comments: usize,
}

/// Compute Figure 8 from pre-computed scores.
pub fn figure8(store: &CrawlStore, scores: &HashMap<ObjectId, CommentScores>) -> Figure8 {
    // URL id → bias.
    let bias_of_url: HashMap<ObjectId, Bias> = store
        .urls
        .iter()
        .map(|(&id, u)| {
            let bias = ParsedUrl::parse(&u.url)
                .filter(|p| !p.host.is_empty())
                .map(|p| bias_of_domain(&p.domain()))
                .unwrap_or(Bias::NotRanked);
            (id, bias)
        })
        .collect();
    let mut severe: HashMap<Bias, EcdfSketch> = HashMap::new();
    let mut attack: HashMap<Bias, EcdfSketch> = HashMap::new();
    let mut unranked = 0usize;
    let mut ranked = 0usize;
    // Comments in id order: the store is a hash map, so without this the
    // per-bias push order (and the push-order f64 mean the sketch keeps)
    // would vary run to run and break the byte-identical export contract.
    let mut comment_ids: Vec<ObjectId> = store.comments.keys().copied().collect();
    comment_ids.sort_unstable();
    for id in comment_ids {
        let c = &store.comments[&id];
        let Some(s) = scores.get(&c.id) else { continue };
        let bias = bias_of_url.get(&c.url_id).copied().unwrap_or(Bias::NotRanked);
        if bias == Bias::NotRanked {
            unranked += 1;
        } else {
            ranked += 1;
        }
        severe.entry(bias).or_default().push(s.perspective.severe_toxicity);
        attack.entry(bias).or_default().push(s.perspective.attack_on_author);
    }
    let severe_by_bias: Vec<(Bias, EcdfSketch)> = Bias::ALL
        .iter()
        .filter_map(|&b| severe.get(&b).map(|s| (b, s.clone())))
        .collect();
    let attack_by_bias: Vec<(Bias, EcdfSketch)> = Bias::ALL
        .iter()
        .filter_map(|&b| attack.get(&b).map(|s| (b, s.clone())))
        .collect();
    let ranked_biases: Vec<Bias> = Bias::ALL.into_iter().filter(|&b| b != Bias::NotRanked).collect();
    let mut ks_severe = Vec::new();
    for (i, &a) in ranked_biases.iter().enumerate() {
        for &b in &ranked_biases[i + 1..] {
            if let (Some(va), Some(vb)) = (severe.get(&a), severe.get(&b)) {
                if !va.is_empty() && !vb.is_empty() {
                    ks_severe.push((a, b, ks_two_sample_sketch(va, vb)));
                }
            }
        }
    }
    Figure8 {
        severe_by_bias,
        attack_by_bias,
        ks_severe,
        unranked_comments: unranked,
        ranked_comments: ranked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_texts_parallel_matches_serial() {
        let texts: Vec<String> = (0..100)
            .map(|i| format!("comment number {i} about the news and the media today"))
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let par = score_texts(&refs, 4);
        let ser = score_texts(&refs, 1);
        assert_eq!(par.len(), ser.len());
        for (a, b) in par.iter().zip(&ser) {
            assert_eq!(a.perspective.severe_toxicity, b.perspective.severe_toxicity);
            assert_eq!(a.dictionary, b.dictionary);
        }
    }

    #[test]
    fn figure7_dataset_shapes() {
        let scores = vec![
            PerspectiveScores { severe_toxicity: 0.1, likely_to_reject: 0.2, obscene: 0.0, attack_on_author: 0.0 },
            PerspectiveScores { severe_toxicity: 0.9, likely_to_reject: 0.95, obscene: 0.1, attack_on_author: 0.2 },
        ];
        let d = figure7_dataset("Test", &scores);
        assert_eq!(d.n, 2);
        assert_eq!(d.severe_toxicity.eval(0.5), 0.5);
        assert_eq!(d.likely_to_reject.eval(0.99), 1.0);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert!(score_texts(&[], 4).is_empty());
        let d = figure7_dataset("Empty", &[]);
        assert_eq!(d.n, 0);
    }
}
