//! Word and character n-gram extraction.
//!
//! The SVM of §3.5.3 uses 1- and 2-grams of cleaned, stemmed word tokens;
//! the language identifier uses character trigrams.

/// Word n-grams of order `n`, joined with a single space.
///
/// Returns an empty vector when the input is shorter than `n`.
pub fn word_ngrams(tokens: &[String], n: usize) -> Vec<String> {
    assert!(n >= 1, "n-gram order must be >= 1");
    if tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.join(" ")).collect()
}

/// All word n-grams with orders in `1..=max_n`, concatenated.
pub fn word_ngrams_up_to(tokens: &[String], max_n: usize) -> Vec<String> {
    let mut out = Vec::new();
    for n in 1..=max_n {
        out.extend(word_ngrams(tokens, n));
    }
    out
}

/// Character n-grams over the raw text with `^`/`$` boundary padding.
///
/// Operates on `char`s so multi-byte letters (umlauts, accents — the very
/// signal that separates German/French from English) count as one symbol.
pub fn char_ngrams(text: &str, n: usize) -> Vec<String> {
    assert!(n >= 1, "n-gram order must be >= 1");
    let mut chars: Vec<char> = Vec::with_capacity(text.len() + 2);
    chars.push('^');
    chars.extend(text.chars().map(|c| if c.is_whitespace() { ' ' } else { c }));
    chars.push('$');
    if chars.len() < n {
        return Vec::new();
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unigrams_are_tokens() {
        let t = toks(&["a", "b"]);
        assert_eq!(word_ngrams(&t, 1), vec!["a", "b"]);
    }

    #[test]
    fn bigrams_join_with_space() {
        let t = toks(&["free", "speech", "browser"]);
        assert_eq!(word_ngrams(&t, 2), vec!["free speech", "speech browser"]);
    }

    #[test]
    fn short_input_yields_empty() {
        let t = toks(&["only"]);
        assert!(word_ngrams(&t, 2).is_empty());
        assert!(word_ngrams(&[], 1).is_empty());
    }

    #[test]
    fn up_to_concatenates_orders() {
        let t = toks(&["a", "b", "c"]);
        let g = word_ngrams_up_to(&t, 2);
        assert_eq!(g, vec!["a", "b", "c", "a b", "b c"]);
    }

    #[test]
    fn char_trigrams_have_padding() {
        let g = char_ngrams("ab", 3);
        assert_eq!(g, vec!["^ab", "ab$"]);
    }

    #[test]
    fn char_ngrams_unicode_counts_chars() {
        let g = char_ngrams("\u{fc}b", 3);
        assert_eq!(g, vec!["^\u{fc}b", "\u{fc}b$"]);
    }

    #[test]
    fn char_ngrams_whitespace_normalized() {
        let g = char_ngrams("a\tb", 3);
        assert!(g.contains(&"a b".to_string()));
    }

    #[test]
    #[should_panic(expected = "order")]
    fn zero_order_panics() {
        word_ngrams(&[], 0);
    }
}
