//! Crawl-mirror persistence.
//!
//! The paper "effectively mirror[s] the Dissenter database"; a mirror you
//! cannot save is not much of a mirror. This module serializes a
//! [`CrawlStore`] to a directory of JSON-Lines files (one entity type per
//! file, one JSON object per line — the archive format Pushshift itself
//! uses) and loads it back, so expensive crawls can be archived and
//! re-analyzed without re-crawling.

use crate::store::{
    CrawlStore, CrawledComment, CrawledUrl, CrawledUser, CrawledYoutube, GabAccount, HiddenMeta,
    RedditMatch, ShadowLabel,
};
use ids::ObjectId;
use jsonlite::Value;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// File names written by [`save`].
pub const FILES: [&str; 7] = [
    "gab_accounts.jsonl",
    "users.jsonl",
    "urls.jsonl",
    "comments.jsonl",
    "youtube.jsonl",
    "follow_edges.jsonl",
    "reddit.jsonl",
];

/// Save a crawl store into `dir` (created if missing).
pub fn save(store: &CrawlStore, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let write_lines = |name: &str, lines: Vec<Value>| -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(dir.join(name))?);
        for v in lines {
            writeln!(w, "{}", jsonlite::to_string(&v))?;
        }
        w.flush()
    };

    let mut gab: Vec<&GabAccount> = store.gab_accounts.iter().collect();
    gab.sort_by_key(|a| a.gab_id);
    write_lines(
        "gab_accounts.jsonl",
        gab.iter()
            .map(|a| {
                Value::object()
                    .with("gab_id", a.gab_id)
                    .with("username", a.username.as_str())
                    .with("created_at", a.created_at.as_str())
                    .with("created_epoch", a.created_epoch)
                    .with("followers_count", a.followers_count)
                    .with("following_count", a.following_count)
            })
            .collect(),
    )?;

    let mut users: Vec<&CrawledUser> = store.users.values().collect();
    users.sort_by(|a, b| a.username.cmp(&b.username));
    write_lines(
        "users.jsonl",
        users
            .iter()
            .map(|u| {
                let mut v = Value::object()
                    .with("username", u.username.as_str())
                    .with("author_id", u.author_id.to_hex())
                    .with("display_name", u.display_name.as_str())
                    .with("bio", u.bio.as_str())
                    .with(
                        "url_ids",
                        Value::Array(u.url_ids.iter().map(|i| Value::Str(i.to_hex())).collect()),
                    );
                if let Some(m) = &u.meta {
                    v = v.with("meta", meta_to_json(m));
                }
                v
            })
            .collect(),
    )?;

    let mut urls: Vec<&CrawledUrl> = store.urls.values().collect();
    urls.sort_by_key(|u| u.id);
    write_lines(
        "urls.jsonl",
        urls.iter()
            .map(|u| {
                Value::object()
                    .with("id", u.id.to_hex())
                    .with("url", u.url.as_str())
                    .with("title", u.title.as_str())
                    .with("description", u.description.as_str())
                    .with("upvotes", u.upvotes)
                    .with("downvotes", u.downvotes)
                    .with("declared_comment_count", u.declared_comment_count)
            })
            .collect(),
    )?;

    let mut comments: Vec<&CrawledComment> = store.comments.values().collect();
    comments.sort_by_key(|c| c.id);
    write_lines(
        "comments.jsonl",
        comments
            .iter()
            .map(|c| {
                Value::object()
                    .with("id", c.id.to_hex())
                    .with("url_id", c.url_id.to_hex())
                    .with("author_id", c.author_id.to_hex())
                    .with("parent", c.parent.map(|p| p.to_hex()))
                    .with("text", c.text.as_str())
                    .with("created_at", c.created_at)
                    .with("label", label_str(c.label))
            })
            .collect(),
    )?;

    let mut yt: Vec<&CrawledYoutube> = store.youtube.iter().collect();
    yt.sort_by(|a, b| a.url.cmp(&b.url));
    write_lines(
        "youtube.jsonl",
        yt.iter()
            .map(|y| {
                Value::object()
                    .with("url", y.url.as_str())
                    .with("kind", y.kind.as_str())
                    .with("available", y.available)
                    .with("reason", y.reason.clone())
                    .with("owner", y.owner.clone())
                    .with("comments_disabled", y.comments_disabled)
            })
            .collect(),
    )?;

    let mut edges = store.follow_edges.clone();
    edges.sort();
    write_lines(
        "follow_edges.jsonl",
        edges
            .iter()
            .map(|(f, t)| Value::object().with("from", f.to_hex()).with("to", t.to_hex()))
            .collect(),
    )?;

    let mut reddit: Vec<&RedditMatch> = store.reddit.values().collect();
    reddit.sort_by(|a, b| a.username.cmp(&b.username));
    write_lines(
        "reddit.jsonl",
        reddit
            .iter()
            .map(|m| {
                Value::object()
                    .with("username", m.username.as_str())
                    .with("total_comments", m.total_comments)
                    .with(
                        "comments",
                        Value::Array(m.comments.iter().map(|c| Value::Str(c.clone())).collect()),
                    )
            })
            .collect(),
    )?;

    Ok(())
}

/// Load a crawl store previously written by [`save`]. Crawl statistics and
/// validation counters are not persisted (they describe the crawl run, not
/// the mirror) and come back zeroed.
pub fn load(dir: &Path) -> io::Result<CrawlStore> {
    let mut store = CrawlStore::default();
    let read_lines = |name: &str| -> io::Result<Vec<Value>> {
        let f = std::fs::File::open(dir.join(name))?;
        let mut out = Vec::new();
        for line in io::BufReader::new(f).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            out.push(jsonlite::parse(&line).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("{name}: {e}"))
            })?);
        }
        Ok(out)
    };
    let oid = |v: &Value, k: &str| -> io::Result<ObjectId> {
        v.get(k)
            .and_then(|x| x.as_str())
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("bad id field {k}")))
    };
    let s = |v: &Value, k: &str| v.get(k).and_then(|x| x.as_str()).unwrap_or("").to_owned();
    let n = |v: &Value, k: &str| v.get(k).and_then(|x| x.as_i64()).unwrap_or(0);

    for v in read_lines("gab_accounts.jsonl")? {
        store.gab_accounts.push(GabAccount {
            gab_id: n(&v, "gab_id") as u64,
            username: s(&v, "username"),
            created_at: s(&v, "created_at"),
            created_epoch: n(&v, "created_epoch") as u64,
            followers_count: n(&v, "followers_count") as u64,
            following_count: n(&v, "following_count") as u64,
        });
        store.dissenter_usernames.clear(); // rebuilt below
    }
    for v in read_lines("users.jsonl")? {
        let user = CrawledUser {
            username: s(&v, "username"),
            author_id: oid(&v, "author_id")?,
            display_name: s(&v, "display_name"),
            bio: s(&v, "bio"),
            url_ids: v
                .get("url_ids")
                .and_then(|a| a.as_array())
                .map(|items| {
                    items.iter().filter_map(|i| i.as_str()?.parse().ok()).collect()
                })
                .unwrap_or_default(),
            meta: v.get("meta").map(meta_from_json),
        };
        store.dissenter_usernames.push(user.username.clone());
        store.users.insert(user.username.clone(), user);
    }
    store.dissenter_usernames.sort();
    for v in read_lines("urls.jsonl")? {
        let u = CrawledUrl {
            id: oid(&v, "id")?,
            url: s(&v, "url"),
            title: s(&v, "title"),
            description: s(&v, "description"),
            upvotes: n(&v, "upvotes") as u32,
            downvotes: n(&v, "downvotes") as u32,
            declared_comment_count: n(&v, "declared_comment_count") as usize,
        };
        store.urls.insert(u.id, u);
    }
    for v in read_lines("comments.jsonl")? {
        let c = CrawledComment {
            id: oid(&v, "id")?,
            url_id: oid(&v, "url_id")?,
            author_id: oid(&v, "author_id")?,
            parent: v.get("parent").and_then(|p| p.as_str()).and_then(|p| p.parse().ok()),
            text: s(&v, "text"),
            created_at: n(&v, "created_at") as u64,
            label: label_from_str(&s(&v, "label")),
        };
        store.comments.insert(c.id, c);
    }
    for v in read_lines("youtube.jsonl")? {
        store.youtube.push(CrawledYoutube {
            url: s(&v, "url"),
            kind: s(&v, "kind"),
            available: v.get("available").and_then(|b| b.as_bool()).unwrap_or(false),
            reason: v.get("reason").and_then(|r| r.as_str()).map(str::to_owned),
            owner: v.get("owner").and_then(|o| o.as_str()).map(str::to_owned),
            comments_disabled: v
                .get("comments_disabled")
                .and_then(|b| b.as_bool())
                .unwrap_or(false),
        });
    }
    for v in read_lines("follow_edges.jsonl")? {
        store.follow_edges.push((oid(&v, "from")?, oid(&v, "to")?));
    }
    for v in read_lines("reddit.jsonl")? {
        let m = RedditMatch {
            username: s(&v, "username"),
            total_comments: n(&v, "total_comments") as u64,
            comments: v
                .get("comments")
                .and_then(|a| a.as_array())
                .map(|items| items.iter().filter_map(|i| i.as_str().map(str::to_owned)).collect())
                .unwrap_or_default(),
        };
        store.reddit.insert(m.username.clone(), m);
    }
    Ok(store)
}

fn label_str(l: ShadowLabel) -> &'static str {
    match l {
        ShadowLabel::Standard => "standard",
        ShadowLabel::Nsfw => "nsfw",
        ShadowLabel::Offensive => "offensive",
        ShadowLabel::Both => "both",
    }
}

fn label_from_str(s: &str) -> ShadowLabel {
    match s {
        "nsfw" => ShadowLabel::Nsfw,
        "offensive" => ShadowLabel::Offensive,
        "both" => ShadowLabel::Both,
        _ => ShadowLabel::Standard,
    }
}

fn meta_to_json(m: &HiddenMeta) -> Value {
    Value::object()
        .with("language", m.language.as_str())
        .with("canLogin", m.can_login)
        .with("canPost", m.can_post)
        .with("canReport", m.can_report)
        .with("canChat", m.can_chat)
        .with("canVote", m.can_vote)
        .with("isBanned", m.is_banned)
        .with("isAdmin", m.is_admin)
        .with("isModerator", m.is_moderator)
        .with("isPro", m.is_pro)
        .with("isDonor", m.is_donor)
        .with("isInvestor", m.is_investor)
        .with("isPremium", m.is_premium)
        .with("isTippable", m.is_tippable)
        .with("isPrivate", m.is_private)
        .with("verified", m.verified)
        .with("filterPro", m.filter_pro)
        .with("filterVerified", m.filter_verified)
        .with("filterStandard", m.filter_standard)
        .with("filterNsfw", m.filter_nsfw)
        .with("filterOffensive", m.filter_offensive)
}

fn meta_from_json(v: &Value) -> HiddenMeta {
    let b = |k: &str| v.get(k).and_then(|x| x.as_bool()).unwrap_or(false);
    HiddenMeta {
        language: v.get("language").and_then(|x| x.as_str()).unwrap_or("").to_owned(),
        can_login: b("canLogin"),
        can_post: b("canPost"),
        can_report: b("canReport"),
        can_chat: b("canChat"),
        can_vote: b("canVote"),
        is_banned: b("isBanned"),
        is_admin: b("isAdmin"),
        is_moderator: b("isModerator"),
        is_pro: b("isPro"),
        is_donor: b("isDonor"),
        is_investor: b("isInvestor"),
        is_premium: b("isPremium"),
        is_tippable: b("isTippable"),
        is_private: b("isPrivate"),
        verified: b("verified"),
        filter_pro: b("filterPro"),
        filter_verified: b("filterVerified"),
        filter_standard: b("filterStandard"),
        filter_nsfw: b("filterNsfw"),
        filter_offensive: b("filterOffensive"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids::{EntityKind, ObjectIdGen};

    fn sample_store() -> CrawlStore {
        let mut store = CrawlStore::default();
        let mut ag = ObjectIdGen::new(EntityKind::Author, 1);
        let mut ug = ObjectIdGen::new(EntityKind::CommentUrl, 2);
        let mut cg = ObjectIdGen::new(EntityKind::Comment, 3);
        store.gab_accounts.push(GabAccount {
            gab_id: 1,
            username: "e".into(),
            created_at: "2016-08-15T00:00:00Z".into(),
            created_epoch: 1_471_219_200,
            followers_count: 10,
            following_count: 2,
        });
        let author = ag.next(100);
        let url = ug.next(200);
        store.users.insert(
            "alice".into(),
            CrawledUser {
                username: "alice".into(),
                author_id: author,
                display_name: "Alice & Co".into(),
                bio: "speaks \"freely\"\nnewline".into(),
                url_ids: vec![url],
                meta: Some(HiddenMeta {
                    language: "de".into(),
                    can_login: true,
                    filter_nsfw: true,
                    ..Default::default()
                }),
            },
        );
        store.dissenter_usernames.push("alice".into());
        store.urls.insert(
            url,
            CrawledUrl {
                id: url,
                url: "https://example.com/a?x=1&y=2".into(),
                title: "T".into(),
                description: String::new(),
                upvotes: 3,
                downvotes: 1,
                declared_comment_count: 2,
            },
        );
        let parent = cg.next(300);
        for (id, p, label) in [
            (parent, None, ShadowLabel::Standard),
            (cg.next(301), Some(parent), ShadowLabel::Both),
        ] {
            store.comments.insert(
                id,
                CrawledComment {
                    id,
                    url_id: url,
                    author_id: author,
                    parent: p,
                    text: "hi \u{1F600} unicode".into(),
                    created_at: 300,
                    label,
                },
            );
        }
        store.youtube.push(CrawledYoutube {
            url: "https://youtube.com/watch?v=x".into(),
            kind: "video".into(),
            available: false,
            reason: Some("This video is private".into()),
            owner: None,
            comments_disabled: false,
        });
        store.follow_edges.push((author, author));
        store.reddit.insert(
            "alice".into(),
            RedditMatch { username: "alice".into(), total_comments: 7, comments: vec!["r1".into()] },
        );
        store
    }

    #[test]
    fn round_trips_everything() {
        let store = sample_store();
        let dir = std::env::temp_dir().join(format!("crawl-persist-{}", std::process::id()));
        save(&store, &dir).expect("save");
        for f in FILES {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        let loaded = load(&dir).expect("load");
        assert_eq!(loaded.gab_accounts.len(), 1);
        assert_eq!(loaded.gab_accounts[0].username, "e");
        let alice = &loaded.users["alice"];
        assert_eq!(alice.bio, "speaks \"freely\"\nnewline");
        assert_eq!(alice.url_ids.len(), 1);
        assert_eq!(alice.meta.as_ref().unwrap().language, "de");
        assert!(alice.meta.as_ref().unwrap().filter_nsfw);
        assert_eq!(loaded.urls.len(), 1);
        assert_eq!(loaded.comments.len(), 2);
        let both = loaded.comments.values().find(|c| c.parent.is_some()).unwrap();
        assert_eq!(both.label, ShadowLabel::Both);
        assert_eq!(both.text, "hi \u{1F600} unicode");
        assert_eq!(loaded.youtube.len(), 1);
        assert_eq!(loaded.follow_edges.len(), 1);
        assert_eq!(loaded.reddit["alice"].total_comments, 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_dir_errors() {
        assert!(load(Path::new("/nonexistent/xyz")).is_err());
    }

    #[test]
    fn save_is_deterministic() {
        let store = sample_store();
        let d1 = std::env::temp_dir().join(format!("crawl-det1-{}", std::process::id()));
        let d2 = std::env::temp_dir().join(format!("crawl-det2-{}", std::process::id()));
        save(&store, &d1).unwrap();
        save(&store, &d2).unwrap();
        for f in FILES {
            let a = std::fs::read(d1.join(f)).unwrap();
            let b = std::fs::read(d2.join(f)).unwrap();
            assert_eq!(a, b, "{f} differs");
        }
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d2).ok();
    }
}
