//! Seeded scenario sweeps for CI and soak runs.
//!
//! ```text
//! simcheck [--count N] [--start S] [--family all|crash|abuse|longitudinal|scale] [--replay-dir DIR] [--replay FILE]
//! ```
//!
//! Runs `N` seeded scenarios starting at seed `S` through every oracle.
//! On failure the scenario is shrunk to a minimal still-failing case and
//! written as a replay JSON under `--replay-dir` (default
//! `simcheck/replays/`); the sweep continues through the remaining seeds
//! and the process exits nonzero. `--replay FILE` re-executes one replay
//! file instead of sweeping. `--family crash` restricts both the sweep
//! and the shrinker to the crash-recovery oracle family (the CI crash
//! job's mode — a kill-point sweep without the full differential stack);
//! `--family abuse` does the same for the adversarial-traffic family
//! (seeded hostile profiles against hardened services); `--family
//! longitudinal` restricts to the sweep-composition family (incremental
//! sweeps over an evolving world vs a one-shot study); `--family scale`
//! restricts to the out-of-core family (streamed world generation and
//! spilled/merged analysis vs the in-memory reference path).

use simcheck::{check_scenario_family, replay, shrink, Family, Scenario};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    count: u64,
    start: u64,
    family: Family,
    replay_dir: PathBuf,
    replay_file: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        count: 5,
        start: 1,
        family: Family::All,
        replay_dir: PathBuf::from(replay::DEFAULT_DIR),
        replay_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--count" => args.count = value("--count")?.parse().map_err(|e| format!("--count: {e}"))?,
            "--start" => args.start = value("--start")?.parse().map_err(|e| format!("--start: {e}"))?,
            "--family" => args.family = Family::parse(&value("--family")?)?,
            "--replay-dir" => args.replay_dir = PathBuf::from(value("--replay-dir")?),
            "--replay" => args.replay_file = Some(PathBuf::from(value("--replay")?)),
            "--help" | "-h" => {
                println!(
                    "usage: simcheck [--count N] [--start S] [--family all|crash|abuse|longitudinal|scale] \
                     [--replay-dir DIR] [--replay FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn describe(sc: &Scenario) -> String {
    format!(
        "scale {:.5}, workers {}x{}, retries {}, fault mass {:.4}{}{}{}{}{}",
        sc.scale,
        sc.workers,
        sc.crawl_workers,
        sc.retries,
        sc.total_fault_prob(),
        if sc.svm { ", +svm" } else { "" },
        if sc.kill_fraction > 0.0 {
            format!(", kill@{:.2}{}", sc.kill_fraction, if sc.torn_tail { " torn" } else { "" })
        } else {
            String::new()
        },
        if sc.abuse_conns > 0 {
            format!(
                ", abuse {}x{}",
                bench::abusegen::Profile::from_index(sc.abuse_profile).name(),
                sc.abuse_conns
            )
        } else {
            String::new()
        },
        if sc.epochs > 0 {
            format!(", longitudinal {}e drift {:.2}", sc.epochs, sc.drift)
        } else {
            String::new()
        },
        if sc.stream_batch > 0 {
            format!(", scale batch {} spill {}", sc.stream_batch, sc.spill_budget)
        } else {
            String::new()
        }
    )
}

fn run_one(sc: &Scenario, family: Family, replay_dir: &std::path::Path) -> bool {
    let started = Instant::now();
    match check_scenario_family(sc, family) {
        Ok(()) => {
            println!(
                "seed {:>6}: ok    ({:.1}s; {})",
                sc.seed,
                started.elapsed().as_secs_f64(),
                describe(sc)
            );
            true
        }
        Err(failure) => {
            eprintln!("seed {:>6}: FAIL  {failure}", sc.seed);
            eprintln!("  shrinking ({})...", describe(sc));
            let (min, min_failure) =
                shrink::shrink(sc.clone(), failure, |c| check_scenario_family(c, family).err());
            eprintln!("  minimal: {} -> {min_failure}", describe(&min));
            match replay::write(replay_dir, &replay::Replay::new(min, &min_failure)) {
                Ok(path) => eprintln!("  replay written: {}", path.display()),
                Err(e) => eprintln!("  replay write failed: {e}"),
            }
            false
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simcheck: {e}");
            std::process::exit(2);
        }
    };

    if let Some(file) = &args.replay_file {
        let replay = match replay::read(file) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("simcheck: {e}");
                std::process::exit(2);
            }
        };
        println!("replaying {} (originally failed: [{}] {})", file.display(), replay.check, replay.detail);
        if !run_one(&replay.scenario, args.family, &args.replay_dir) {
            std::process::exit(1);
        }
        return;
    }

    let started = Instant::now();
    let mut failed = 0u64;
    for seed in args.start..args.start.saturating_add(args.count) {
        if !run_one(&Scenario::from_seed(seed), args.family, &args.replay_dir) {
            failed += 1;
        }
    }
    println!(
        "{} scenarios, {} failed, {:.1}s total",
        args.count,
        failed,
        started.elapsed().as_secs_f64()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
