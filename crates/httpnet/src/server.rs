//! The threaded HTTP server.
//!
//! Accept loop on a dedicated thread; each connection is handled on a
//! bounded worker pool with keep-alive. Shutdown is cooperative: a flag is
//! set and the accept loop woken with a self-connection.

use crate::fault::{FaultAction, FaultConfig, FaultInjector};
use crate::http::{read_request, Request, Response, Status, WireError};
use crate::pool::ThreadPool;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A request handler. Implementations must be thread-safe; the server
/// invokes them concurrently.
pub trait Handler: Send + Sync + 'static {
    /// Produce a response for one request.
    fn handle(&self, req: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: &Request) -> Response {
        self(req)
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads.
    pub workers: usize,
    /// Pending-connection queue per worker pool.
    pub queue: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout — symmetric with `read_timeout`: a
    /// peer that stops draining its receive window must not pin a worker
    /// forever any more than a peer that stops sending.
    pub write_timeout: Duration,
    /// Maximum keep-alive requests per connection.
    pub max_requests_per_conn: usize,
    /// Fault injection.
    pub faults: FaultConfig,
    /// Optional metrics registry: worker-pool job panics are counted
    /// here under `pool.job_panics` when set.
    pub metrics: Option<obs::Registry>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 8,
            queue: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_requests_per_conn: 1000,
            faults: FaultConfig::none(),
            metrics: None,
        }
    }
}

/// A running HTTP server. Dropping it shuts it down and joins all threads.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    requests_served: Arc<AtomicU64>,
    access_log: Arc<crate::log::AccessLog>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Server({})", self.addr)
    }
}

impl Server {
    /// Bind to `127.0.0.1:0` (ephemeral port) and start serving.
    pub fn start(handler: Arc<dyn Handler>, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests_served = Arc::new(AtomicU64::new(0));
        let injector = Arc::new(FaultInjector::new(config.faults));
        let access_log = Arc::new(crate::log::AccessLog::new(4096));

        let accept_stop = stop.clone();
        let counter = requests_served.clone();
        let log = access_log.clone();
        let accept_thread = std::thread::Builder::new()
            .name("httpnet-accept".into())
            .spawn(move || {
                let pool =
                    ThreadPool::with_metrics(config.workers, config.queue, config.metrics.as_ref());
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let handler = handler.clone();
                    let injector = injector.clone();
                    let counter = counter.clone();
                    let log = log.clone();
                    let cfg = config.clone();
                    pool.execute(move || {
                        handle_connection(stream, &*handler, &injector, &counter, &log, &cfg);
                    });
                }
                // Pool drop joins workers.
            })?;

        Ok(Server { addr, stop, accept_thread: Some(accept_thread), requests_served, access_log })
    }

    /// The server's access log (bounded ring of recent requests).
    pub fn access_log(&self) -> &crate::log::AccessLog {
        &self.access_log
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::SeqCst)
    }

    /// Stop accepting and join all threads.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A throttling response advertising when the client may retry.
/// `Retry-After` is written in (possibly fractional) seconds; the
/// simulation allows sub-second values so throttle tests stay fast.
fn retry_after_response(status: Status, retry_after: Duration) -> Response {
    let mut resp = Response::status(status);
    resp.headers.add("Retry-After", &format!("{}", retry_after.as_secs_f64()));
    resp
}

fn handle_connection(
    stream: TcpStream,
    handler: &dyn Handler,
    injector: &FaultInjector,
    counter: &AtomicU64,
    log: &crate::log::AccessLog,
    cfg: &ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    for _ in 0..cfg.max_requests_per_conn {
        let req = match read_request(&mut reader) {
            Ok(r) => r,
            Err(WireError::Eof) => return,
            Err(_) => {
                let resp = Response::status(Status(400));
                let _ = resp.write_to(&mut write_half);
                return;
            }
        };
        let close_requested = req
            .headers
            .get("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false);

        let action = injector.decide();
        let started = std::time::Instant::now();
        let (delay, resp) = match action {
            FaultAction::Proceed(d) | FaultAction::Stall(d) => (d, handler.handle(&req)),
            FaultAction::Error(d) => (d, Response::status(Status::INTERNAL)),
            FaultAction::Drop(d) => {
                std::thread::sleep(d);
                return; // close without responding
            }
            FaultAction::Reset(d) => {
                // A few raw bytes of status line, then close mid-send.
                std::thread::sleep(d);
                let _ = write_half.write_all(b"HTTP/1.1 2");
                let _ = write_half.flush();
                return;
            }
            FaultAction::Malformed(d) => {
                std::thread::sleep(d);
                let _ = write_half.write_all(b"SMTP/0.9 GARBAGE NOISE\r\n\r\n");
                let _ = write_half.flush();
                return;
            }
            FaultAction::Truncate(d) => {
                // Correct status line and headers (promising the full
                // Content-Length), then only part of the body.
                std::thread::sleep(d);
                let resp = handler.handle(&req);
                let mut buf = Vec::new();
                let _ = resp.write_to(&mut buf);
                let cut = buf.len().saturating_sub(resp.body.len() / 2 + 1).max(1);
                let _ = write_half.write_all(&buf[..cut]);
                let _ = write_half.flush();
                return;
            }
            FaultAction::RateLimit(d) => {
                (d, retry_after_response(Status::TOO_MANY, cfg.faults.retry_after))
            }
            FaultAction::Unavailable(d) => {
                (d, retry_after_response(Status(503), cfg.faults.retry_after))
            }
        };
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        counter.fetch_add(1, Ordering::SeqCst);
        log.record(crate::log::AccessEntry {
            method: req.method.clone(),
            target: req.target.clone(),
            status: resp.status.0,
            body_len: resp.body.len(),
            duration: started.elapsed(),
        });
        if resp.write_to(&mut write_half).is_err() {
            return;
        }
        let _ = write_half.flush();
        if close_requested {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn echo_server(config: ServerConfig) -> Server {
        let handler: Arc<dyn Handler> = Arc::new(|req: &Request| {
            Response::html(format!("echo:{}", req.path()))
        });
        Server::start(handler, config).expect("server starts")
    }

    #[test]
    fn serves_requests() {
        let server = echo_server(ServerConfig::default());
        let client = Client::builder(server.addr()).build();
        let resp = client.get("/hello").unwrap();
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.text(), "echo:/hello");
        assert_eq!(server.requests_served(), 1);
    }

    #[test]
    fn keep_alive_reuses_connection() {
        let server = echo_server(ServerConfig::default());
        let mut client = Client::builder(server.addr()).build();
        client.keep_alive(true);
        for i in 0..5 {
            let resp = client.get(&format!("/r{i}")).unwrap();
            assert_eq!(resp.text(), format!("echo:/r{i}"));
        }
        assert_eq!(server.requests_served(), 5);
    }

    #[test]
    fn concurrent_clients() {
        let server = echo_server(ServerConfig::default());
        let addr = server.addr();
        let mut handles = Vec::new();
        for t in 0..8 {
            handles.push(std::thread::spawn(move || {
                let client = Client::builder(addr).build();
                for i in 0..20 {
                    let resp = client.get(&format!("/t{t}/{i}")).unwrap();
                    assert_eq!(resp.text(), format!("echo:/t{t}/{i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.requests_served(), 160);
    }

    #[test]
    fn access_log_records_served_requests() {
        let server = echo_server(ServerConfig::default());
        let client = Client::builder(server.addr()).build();
        client.get("/logged?x=1").unwrap();
        client.get("/another").unwrap();
        let snap = server.access_log().snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].target, "/logged?x=1");
        assert_eq!(snap[0].status, 200);
        assert!(snap[0].body_len > 0);
        assert_eq!(server.access_log().count_status_class(2), 2);
    }

    #[test]
    fn shutdown_is_idempotent_and_joins() {
        let mut server = echo_server(ServerConfig::default());
        server.shutdown();
        server.shutdown();
    }

    #[test]
    fn fault_injection_drops_connections() {
        let cfg = ServerConfig {
            faults: FaultConfig { drop_prob: 1.0, seed: 1, ..Default::default() },
            ..Default::default()
        };
        let server = echo_server(cfg);
        let client = Client::builder(server.addr()).build();
        assert!(client.get("/x").is_err(), "dropped connection must error");
    }

    #[test]
    fn fault_injection_errors() {
        let cfg = ServerConfig {
            faults: FaultConfig { error_prob: 1.0, seed: 2, ..Default::default() },
            ..Default::default()
        };
        let server = echo_server(cfg);
        let client = Client::builder(server.addr()).build();
        let resp = client.get("/x").unwrap();
        assert_eq!(resp.status, Status::INTERNAL);
    }

    #[test]
    fn fault_injection_truncates_bodies() {
        let cfg = ServerConfig {
            faults: FaultConfig { truncate_prob: 1.0, seed: 4, ..Default::default() },
            ..Default::default()
        };
        let server = echo_server(cfg);
        let client = Client::builder(server.addr()).build();
        match client.get("/x") {
            Err(crate::client::ClientError::Wire(WireError::Malformed(m))) => {
                assert!(m.contains("truncated"), "{m}");
            }
            other => panic!("expected truncated-body error, got {other:?}"),
        }
    }

    #[test]
    fn fault_injection_resets_mid_line() {
        let cfg = ServerConfig {
            faults: FaultConfig { reset_prob: 1.0, seed: 5, ..Default::default() },
            ..Default::default()
        };
        let server = echo_server(cfg);
        let client = Client::builder(server.addr()).build();
        assert!(client.get("/x").is_err(), "mid-line reset must error");
    }

    #[test]
    fn fault_injection_malformed_status_line() {
        let cfg = ServerConfig {
            faults: FaultConfig { malformed_prob: 1.0, seed: 6, ..Default::default() },
            ..Default::default()
        };
        let server = echo_server(cfg);
        let client = Client::builder(server.addr()).build();
        match client.get("/x") {
            Err(crate::client::ClientError::Wire(WireError::Malformed(_))) => {}
            other => panic!("expected malformed-wire error, got {other:?}"),
        }
    }

    #[test]
    fn fault_injection_stall_outlives_client_timeout() {
        let cfg = ServerConfig {
            faults: FaultConfig {
                stall_prob: 1.0,
                stall: Duration::from_millis(300),
                seed: 7,
                ..Default::default()
            },
            ..Default::default()
        };
        let server = echo_server(cfg);
        let mut client = Client::builder(server.addr()).build();
        client.timeout(Duration::from_millis(50));
        match client.get("/x") {
            Err(crate::client::ClientError::Wire(WireError::Io(e))) => {
                assert!(
                    matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ),
                    "{e:?}"
                );
            }
            other => panic!("expected read timeout, got {other:?}"),
        }
    }

    #[test]
    fn fault_injection_rate_limit_carries_retry_after() {
        let cfg = ServerConfig {
            faults: FaultConfig {
                rate_limit_prob: 1.0,
                retry_after: Duration::from_millis(250),
                seed: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        let server = echo_server(cfg);
        let client = Client::builder(server.addr()).build();
        let resp = client.get("/x").unwrap();
        assert_eq!(resp.status, Status::TOO_MANY);
        let ra: f64 = resp.headers.get("retry-after").unwrap().parse().unwrap();
        assert!((ra - 0.25).abs() < 1e-9, "{ra}");
    }

    #[test]
    fn fault_injection_unavailable_is_503() {
        let cfg = ServerConfig {
            faults: FaultConfig { unavailable_prob: 1.0, seed: 9, ..Default::default() },
            ..Default::default()
        };
        let server = echo_server(cfg);
        let client = Client::builder(server.addr()).build();
        let resp = client.get("/x").unwrap();
        assert_eq!(resp.status.0, 503);
        assert!(resp.headers.get("retry-after").is_some());
    }

    #[test]
    fn malformed_request_gets_400() {
        use std::io::{Read, Write};
        let server = echo_server(ServerConfig::default());
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        let _ = s.read_to_end(&mut buf);
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    }
}
