#!/usr/bin/env bash
# Paper-scale bench: run the out-of-core study (streamed world source,
# spilled analysis tables) under a hard peak-RSS ceiling and emit the
# result as BENCH_SCALE.json in the repo root. The scalebench binary
# self-validates: it exits nonzero unless the study completes with peak
# RSS under the budget (checked inside run_study at every stage boundary
# and every 100k streamed world items), and — on >= 4-CPU hosts — unless
# the sharded run clears an Amdahl-adjusted speedup floor (0.6x
# efficiency per added core on the parallelizable portion, with the
# measured crawl-stage serial residue carried at 1x) while rendering
# byte-identically to a serial control run. On < 4 CPUs the speedup leg
# is refused ("speedup": null, "speedup_refused": true), never silently
# passed.
#
# Usage: scripts/bench_scale.sh [extra scalebench args, e.g. --scale 0.1]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p bench --bin scalebench -- --out BENCH_SCALE.json "$@"

# The artifact must parse and carry the headline fields.
python3 - <<'EOF'
import json
with open("BENCH_SCALE.json") as f:
    report = json.load(f)
for key in ("scale", "cpus", "workers", "wall_ms", "budget_bytes",
            "peak_rss_bytes", "rss_within_budget", "crawl_serial_residue",
            "speedup", "speedup_refused", "stages_us"):
    assert key in report, f"BENCH_SCALE.json missing {key!r}"
assert report["rss_within_budget"] is True, "peak RSS over budget"
assert 0 < report["peak_rss_bytes"] <= report["budget_bytes"], \
    f"peak {report['peak_rss_bytes']} vs budget {report['budget_bytes']}"
assert 0.0 <= report["crawl_serial_residue"] <= 1.0, "residue out of range"
if report["speedup_refused"]:
    assert report["speedup"] is None, "refused leg must not carry a number"
    assert report["cpus"] < 4, "refusal is only legitimate below 4 cpus"
else:
    assert report["speedup"] >= report["required_speedup"], \
        f"speedup {report['speedup']} below floor {report['required_speedup']}"
assert set(report["stages_us"]) == {"synth", "serve", "crawl", "report", "svm"}, \
    f"unexpected stage set {sorted(report['stages_us'])}"
leg = ("refused" if report["speedup_refused"]
       else f"{report['speedup']:.2f}x (floor {report['required_speedup']:.2f}x)")
print("BENCH_SCALE.json OK:",
      f"scale {report['scale']:.4g},",
      f"{report['comments']} comments in {report['wall_ms']/1e3:.1f} s,",
      f"peak RSS {report['peak_rss_bytes']/2**20:.0f} MiB",
      f"of {report['budget_bytes']/2**20:.0f} MiB,",
      f"crawl residue {report['crawl_serial_residue']:.0%},",
      f"speedup {leg} on {report['cpus']} cpu(s)")
EOF
