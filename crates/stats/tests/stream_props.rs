//! Property tests: the streaming [`stats::EcdfSketch`] must agree with
//! the vector-backed [`stats::Ecdf`] / [`stats::Describe`] /
//! [`stats::ks_two_sample`] **bit for bit** on arbitrary inputs — not
//! approximately, exactly. The report pipeline's byte-identity contract
//! rests on this equivalence.

use proptest::prelude::*;
use stats::{ks_two_sample, Describe, Ecdf, EcdfSketch};

/// Finite sample values on a score-like lattice plus arbitrary finite
/// doubles: `v / 97` hits repeated values (ties exercise the counting
/// path), the raw component exercises irregular spacing.
fn sample_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0u32..10_000u32, 1u32..97u32), 1..max_len)
        .prop_map(|pairs| pairs.into_iter().map(|(a, b)| a as f64 / b as f64).collect())
}

proptest! {
    #[test]
    fn sketch_matches_ecdf_at_every_quantile(xs in sample_strategy(400)) {
        let e = Ecdf::new(&xs);
        let s = EcdfSketch::of(&xs);
        prop_assert_eq!(s.n(), e.n());
        // Every percentile, endpoints included: bitwise equality.
        for i in 0..=100u32 {
            let q = i as f64 / 100.0;
            let (a, b) = (s.quantile(q), e.quantile(q));
            prop_assert_eq!(
                a.map(f64::to_bits),
                b.map(f64::to_bits),
                "q={} sketch={:?} ecdf={:?}",
                q, a, b
            );
        }
        prop_assert_eq!(s.to_sorted(), e.sorted().to_vec());
    }

    #[test]
    fn sketch_matches_ecdf_eval_and_curve(xs in sample_strategy(300), probe in 0.0f64..120.0) {
        let e = Ecdf::new(&xs);
        let s = EcdfSketch::of(&xs);
        prop_assert_eq!(s.eval(probe).to_bits(), e.eval(probe).to_bits());
        prop_assert_eq!(s.survival(probe).to_bits(), e.survival(probe).to_bits());
        // The exported plotting grid (CSV exports use curve(101)).
        let (ca, cb) = (s.curve(101), e.curve(101));
        prop_assert_eq!(ca.len(), cb.len());
        for (i, (a, b)) in ca.iter().zip(&cb).enumerate() {
            prop_assert_eq!(a.0.to_bits(), b.0.to_bits(), "curve x at {}", i);
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits(), "curve y at {}", i);
        }
    }

    #[test]
    fn sketch_mean_median_match_describe(xs in sample_strategy(300)) {
        let d = Describe::of(&xs);
        let s = EcdfSketch::of(&xs);
        prop_assert_eq!(s.mean().to_bits(), d.mean.to_bits());
        prop_assert_eq!(s.median().to_bits(), d.median.to_bits());
    }

    #[test]
    fn sketch_ks_matches_vector_ks(a in sample_strategy(200), b in sample_strategy(200)) {
        let want = ks_two_sample(&a, &b);
        let have = stats::ks_two_sample_sketch(&EcdfSketch::of(&a), &EcdfSketch::of(&b));
        prop_assert_eq!(have.statistic.to_bits(), want.statistic.to_bits());
        prop_assert_eq!(have.p_value.to_bits(), want.p_value.to_bits());
        prop_assert_eq!((have.n1, have.n2), (want.n1, want.n2));
    }

    #[test]
    fn merge_tree_is_count_invariant(
        xs in sample_strategy(300),
        cut in 0usize..300,
    ) {
        let cut = cut.min(xs.len());
        let whole = EcdfSketch::of(&xs);
        let mut merged = EcdfSketch::of(&xs[..cut]);
        merged.merge(&EcdfSketch::of(&xs[cut..]));
        prop_assert_eq!(merged.n(), whole.n());
        prop_assert_eq!(merged.to_sorted(), whole.to_sorted());
        for i in 0..=20u32 {
            let q = i as f64 / 20.0;
            prop_assert_eq!(
                merged.quantile(q).map(f64::to_bits),
                whole.quantile(q).map(f64::to_bits)
            );
        }
    }
}
