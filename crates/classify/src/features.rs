//! Shared lexical feature extraction for the Perspective-like models and
//! the SVM's dense auxiliary features.
//!
//! All features are ratios/densities in `[0, 1]`, computed from token-level
//! matches against marker lists. The synthetic text generator embeds the
//! same markers, so these features carry genuine signal.

use crate::lexicon::Lexicon;
use std::collections::HashSet;
use textkit::{porter_stem, tokenize};

/// Mild insult markers (real words — intentionally ordinary ones) feeding
/// the `ATTACK_ON_AUTHOR` and `LIKELY_TO_REJECT` models.
pub const INSULTS: &[&str] = &[
    "idiot", "fool", "clown", "liar", "moron", "stupid", "dumb", "pathetic", "loser", "trash",
    "garbage", "coward", "traitor", "shill", "hack", "disgusting", "vile", "corrupt", "fraud",
    "sheep",
];

/// Markers indicating the comment addresses the *author* of the content.
pub const AUTHOR_WORDS: &[&str] = &[
    "author", "writer", "journalist", "reporter", "editor", "wrote", "writes", "columnist",
    "publisher", "hackjob",
];

/// Second-person markers.
pub const SECOND_PERSON: &[&str] = &["you", "your", "yours", "yourself", "u"];

/// Number of synthetic obscenity markers.
pub const OBSCENE_COUNT: usize = 64;

/// Deterministic synthetic obscenity marker list (stand-ins for profanity;
/// same generation scheme as the hate lexicon, different stream).
pub fn obscene_markers() -> Vec<String> {
    let mut state = 0x5851_f42d_4c95_7f2du64;
    let mut out = Vec::with_capacity(OBSCENE_COUNT);
    let mut seen = HashSet::new();
    while out.len() < OBSCENE_COUNT {
        let w = super::lexicon::pseudo_word_public(&mut state);
        if seen.insert(w.clone()) {
            out.push(w);
        }
    }
    out
}

/// Token-level feature vector for one comment.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TextFeatures {
    /// Hate-lexicon token ratio.
    pub hate_ratio: f64,
    /// Obscenity-marker token ratio.
    pub obscene_ratio: f64,
    /// Insult token ratio.
    pub insult_ratio: f64,
    /// Author-word token ratio.
    pub author_ratio: f64,
    /// Second-person token ratio.
    pub second_person_ratio: f64,
    /// `!` characters per character (capped at 1).
    pub exclaim_density: f64,
    /// Uppercase letters per letter in the raw text.
    pub caps_ratio: f64,
    /// Token count.
    pub tokens: usize,
}

/// Extracts [`TextFeatures`]; construction pre-stems all marker lists.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    hate: Lexicon,
    obscene: HashSet<String>,
    insults: HashSet<String>,
    author: HashSet<String>,
    second: HashSet<String>,
}

impl FeatureExtractor {
    /// Extractor over the standard lexicon and marker lists.
    pub fn standard() -> Self {
        Self::new(Lexicon::standard())
    }

    /// Extractor with a custom hate lexicon.
    pub fn new(hate: Lexicon) -> Self {
        let stem_set = |ws: &[&str]| ws.iter().map(|w| porter_stem(w)).collect::<HashSet<_>>();
        Self {
            hate,
            obscene: obscene_markers().iter().map(|w| porter_stem(w)).collect(),
            insults: stem_set(INSULTS),
            author: stem_set(AUTHOR_WORDS),
            second: SECOND_PERSON.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The hate lexicon in use.
    pub fn lexicon(&self) -> &Lexicon {
        &self.hate
    }

    /// Compute features for raw comment text.
    pub fn extract(&self, text: &str) -> TextFeatures {
        let raw_tokens = tokenize(text);
        let n = raw_tokens.len();
        if n == 0 {
            return TextFeatures::default();
        }
        let mut hate = 0usize;
        let mut obscene = 0usize;
        let mut insult = 0usize;
        let mut author = 0usize;
        let mut second = 0usize;
        for t in &raw_tokens {
            if self.second.contains(t.as_str()) {
                second += 1;
                continue;
            }
            let s = porter_stem(t);
            if self.hate.contains_stemmed(&s) {
                hate += 1;
            }
            if self.obscene.contains(&s) {
                obscene += 1;
            }
            if self.insults.contains(&s) {
                insult += 1;
            }
            if self.author.contains(&s) {
                author += 1;
            }
        }
        let chars = text.chars().count().max(1);
        let letters = text.chars().filter(|c| c.is_alphabetic()).count();
        let uppers = text.chars().filter(|c| c.is_uppercase()).count();
        TextFeatures {
            hate_ratio: hate as f64 / n as f64,
            obscene_ratio: obscene as f64 / n as f64,
            insult_ratio: insult as f64 / n as f64,
            author_ratio: author as f64 / n as f64,
            second_person_ratio: second as f64 / n as f64,
            exclaim_density: (text.matches('!').count() as f64 / chars as f64).min(1.0),
            caps_ratio: if letters > 0 { uppers as f64 / letters as f64 } else { 0.0 },
            tokens: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_text_all_zero() {
        let fx = FeatureExtractor::standard();
        assert_eq!(fx.extract(""), TextFeatures::default());
    }

    #[test]
    fn benign_text_near_zero() {
        let fx = FeatureExtractor::standard();
        let f = fx.extract("what a nice day to read the news");
        assert_eq!(f.hate_ratio, 0.0);
        assert_eq!(f.obscene_ratio, 0.0);
        assert_eq!(f.insult_ratio, 0.0);
        assert!(f.tokens > 0);
    }

    #[test]
    fn marker_channels_are_independent() {
        let fx = FeatureExtractor::standard();
        let hate_term = fx.lexicon().term(3).to_owned();
        let obs = obscene_markers()[0].clone();
        let f = fx.extract(&format!("{hate_term} {obs} idiot author you stuff"));
        assert!(f.hate_ratio > 0.0);
        assert!(f.obscene_ratio > 0.0);
        assert!(f.insult_ratio > 0.0);
        assert!(f.author_ratio > 0.0);
        assert!(f.second_person_ratio > 0.0);
    }

    #[test]
    fn caps_and_exclaim() {
        let fx = FeatureExtractor::standard();
        let f = fx.extract("THIS IS WRONG!!!");
        assert!(f.caps_ratio > 0.9);
        assert!(f.exclaim_density > 0.1);
        let g = fx.extract("this is fine.");
        assert_eq!(g.caps_ratio, 0.0);
        assert_eq!(g.exclaim_density, 0.0);
    }

    #[test]
    fn obscene_markers_deterministic_and_disjoint_from_hate() {
        let a = obscene_markers();
        let b = obscene_markers();
        assert_eq!(a, b);
        assert_eq!(a.len(), OBSCENE_COUNT);
        let lex = Lexicon::standard();
        for m in &a {
            assert!(!lex.matches_token(m), "obscene marker {m} collides with hate lexicon");
        }
    }

    #[test]
    fn ratios_bounded() {
        let fx = FeatureExtractor::standard();
        let term = fx.lexicon().term(0).to_owned();
        let txt = format!("{term} {term} {term}");
        let f = fx.extract(&txt);
        assert!(f.hate_ratio <= 1.0 && f.hate_ratio > 0.9);
    }
}
