//! The CSV exporter writes a complete, well-formed series set for every
//! figure of a real study.

use dissenter_repro::analysis::export::export_csv;
use dissenter_repro::dissenter_core::{run_study, StudyConfig};
use dissenter_repro::synth::config::Scale;

#[test]
fn export_writes_every_figure_series() {
    let mut cfg = StudyConfig::small();
    cfg.world.scale = Scale::Custom(0.0015);
    cfg.skip_svm = true;
    let study = run_study(&cfg);

    let dir = std::env::temp_dir().join(format!("dissenter-export-{}", std::process::id()));
    let files = export_csv(&study.report, &dir).expect("export succeeds");

    let expected = [
        "fig2_gab_growth.csv",
        "fig3_concentration.csv",
        "table1_flags.csv",
        "table2_domains.csv",
        "fig4_shadow_cdfs.csv",
        "fig5_votes.csv",
        "fig6_comment_ratios.csv",
        "fig7_communities.csv",
        "fig8a_severe_by_bias.csv",
        "fig8b_attack_by_bias.csv",
        "fig9a_degrees.csv",
        "fig9bc_toxicity_by_degree.csv",
    ];
    for name in expected {
        assert!(files.contains(&name.to_string()), "{name} not exported");
        let content = std::fs::read_to_string(dir.join(name)).expect("file readable");
        let mut lines = content.lines();
        let header = lines.next().expect("header present");
        assert!(header.contains(','), "{name}: header must be CSV");
        let cols = header.split(',').count();
        let mut rows = 0usize;
        for line in lines {
            assert_eq!(line.split(',').count(), cols, "{name}: ragged row {line:?}");
            rows += 1;
        }
        assert!(rows > 0, "{name}: no data rows");
    }

    // Spot-check a numeric column parses.
    let fig3 = std::fs::read_to_string(dir.join("fig3_concentration.csv")).unwrap();
    let last = fig3.lines().last().unwrap();
    let cf: f64 = last.split(',').nth(1).unwrap().parse().unwrap();
    assert!((0.9..=1.0).contains(&cf), "curve ends near 1.0: {cf}");

    std::fs::remove_dir_all(&dir).ok();
}
