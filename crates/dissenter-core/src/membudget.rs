//! Peak-RSS accounting and the study memory budget.
//!
//! The paper-scale path promises `run_study` completes under a fixed
//! peak-RSS ceiling (BENCH_SCALE's 4 GiB gate). [`MemoryBudget`] makes
//! that promise enforceable in-process: the pipeline calls
//! [`MemoryBudget::check`] at stage boundaries (and inside the synth
//! stream), which reads the kernel's high-water mark and aborts the run
//! with a diagnostic the moment the ceiling is crossed — a budget
//! violation fails loudly at the stage that caused it instead of
//! surfacing as an OOM kill or a silently fat bench artifact.
//!
//! Measurement is `VmHWM` from `/proc/self/status`: the process-wide
//! peak resident set, maintained by the kernel with no sampling race.
//! On platforms without procfs the probe returns `None` and budgets
//! degrade to no-ops (recorded as 0, never a false failure).

/// Peak resident-set size of this process in bytes (`VmHWM`), or `None`
/// where `/proc/self/status` is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// An optional ceiling on the study's peak resident set.
///
/// `unlimited()` never fails a check; `bytes`/`gib` ceilings panic at
/// the first [`check`](Self::check) whose measured peak exceeds them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryBudget {
    ceiling: Option<u64>,
}

impl MemoryBudget {
    /// No ceiling: checks only report the running peak.
    pub const fn unlimited() -> Self {
        Self { ceiling: None }
    }

    /// A hard ceiling in bytes.
    pub const fn bytes(n: u64) -> Self {
        Self { ceiling: Some(n) }
    }

    /// A hard ceiling in GiB.
    pub fn gib(g: f64) -> Self {
        assert!(g.is_finite() && g > 0.0, "memory budget must be positive, got {g}");
        Self { ceiling: Some((g * (1u64 << 30) as f64) as u64) }
    }

    /// The configured ceiling, if any.
    pub fn ceiling_bytes(&self) -> Option<u64> {
        self.ceiling
    }

    /// Read the current peak RSS and enforce the ceiling.
    ///
    /// Returns the measured peak in bytes (0 where unmeasurable).
    /// Panics — naming `stage` — if a ceiling is set and exceeded.
    pub fn check(&self, stage: &str) -> u64 {
        let peak = peak_rss_bytes().unwrap_or(0);
        if let Some(ceiling) = self.ceiling {
            assert!(
                peak <= ceiling,
                "memory budget exceeded at stage `{stage}`: peak RSS {peak} bytes \
                 ({:.2} GiB) > ceiling {ceiling} bytes ({:.2} GiB)",
                peak as f64 / (1u64 << 30) as f64,
                ceiling as f64 / (1u64 << 30) as f64,
            );
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_measurable_here() {
        // The study pipeline runs on Linux runners; the probe must work
        // there or the bench's ceiling is vacuous.
        let peak = peak_rss_bytes().expect("VmHWM readable on Linux");
        assert!(peak > 1024 * 1024, "running process uses more than 1 MiB: {peak}");
    }

    #[test]
    fn unlimited_budget_reports_without_failing() {
        let peak = MemoryBudget::unlimited().check("test");
        assert!(peak > 0);
    }

    #[test]
    fn generous_ceiling_passes() {
        let b = MemoryBudget::gib(1024.0);
        assert!(b.check("test") > 0);
        assert_eq!(b.ceiling_bytes(), Some(1024 * (1u64 << 30)));
    }

    #[test]
    #[should_panic(expected = "memory budget exceeded at stage `tiny`")]
    fn tiny_ceiling_fails() {
        MemoryBudget::bytes(4096).check("tiny");
    }
}
