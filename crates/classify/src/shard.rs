//! Deterministic sharding primitives for the parallel study pipeline.
//!
//! Everything CPU-bound in the pipeline (comment scoring, synth text
//! generation, SVM cross-validation folds, ADASYN synthesis) is split
//! into **index-ordered shards** whose outputs are merged back in
//! canonical (ascending shard id) order. Three rules make the result
//! byte-identical at any worker count:
//!
//! 1. **Stable shard geometry** — shard boundaries are a pure function
//!    of the input length and a fixed shard size ([`shard_bounds`]),
//!    never of the worker count or of scheduling order.
//! 2. **Seed splitting by stable id** — every shard (or item) that needs
//!    randomness derives its own RNG stream via [`stream_seed`] from the
//!    parent seed and its *stable* shard/item index, never from the
//!    thread that happens to run it.
//! 3. **Canonical merge** — shard outputs are concatenated in ascending
//!    shard-id order ([`merge_shards`]), regardless of completion order.
//!
//! The scatter-gather executor that runs shards on the shared
//! [`httpnet::ThreadPool`] lives with the pool; this module also provides
//! [`map_sharded`], a scoped-thread runner for crates below the network
//! layer. Both produce identical output by construction.

use std::ops::Range;

/// Default shard size for per-comment work (scoring, text generation).
/// Small enough to load-balance an 8-worker pool on test-sized worlds,
/// large enough that per-shard overhead is negligible at paper scale.
pub const DEFAULT_SHARD_SIZE: usize = 512;

/// Split `n` items into contiguous index-ordered shards of at most
/// `shard_size` items. Every index in `0..n` lands in exactly one shard,
/// shards are non-empty, and their concatenation covers `0..n` in order.
/// `n == 0` yields no shards.
pub fn shard_bounds(n: usize, shard_size: usize) -> Vec<Range<usize>> {
    assert!(shard_size >= 1, "shard size must be at least 1");
    let mut out = Vec::with_capacity(n.div_ceil(shard_size));
    let mut start = 0;
    while start < n {
        let end = (start + shard_size).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

/// The canonical seed-splitting rule: derive the RNG seed for a shard (or
/// item) from the parent seed and its stable id. SplitMix64 finalizer
/// over `parent ^ (id · φ64)`; bijective in `id` for a fixed parent, so
/// distinct ids always receive distinct seeds, and the streams they seed
/// are independent in practice (xoshiro256** seeded via SplitMix64).
///
/// This is the same mix `synth::dist::child_seed` applies to its
/// top-level generator streams; sharded stages apply it one level deeper
/// (`stream_seed(child_seed(world_seed, STAGE), item_index)`).
pub fn stream_seed(parent: u64, id: u64) -> u64 {
    let mut z = parent ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Merge shard outputs in canonical (ascending shard id) order.
/// `shards[i]` must be the output of shard `i`; the result is their
/// concatenation — the order the serial pipeline would have produced.
pub fn merge_shards<T>(shards: Vec<Vec<T>>) -> Vec<T> {
    let total = shards.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for shard in shards {
        out.extend(shard);
    }
    out
}

/// Run `f(shard_id, shard_items)` over index-ordered shards of `items`
/// on `workers` scoped threads and merge the outputs canonically.
///
/// Output is identical for every `workers >= 1` (including 1, which runs
/// the shards inline): work is *assigned* by atomically claiming the next
/// shard id, but shard content, per-shard seeds, and merge order depend
/// only on the shard id.
pub fn map_sharded<T, R, F>(
    items: &[T],
    shard_size: usize,
    workers: usize,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let bounds = shard_bounds(items.len(), shard_size);
    if bounds.is_empty() {
        return Vec::new();
    }
    let workers = workers.max(1).min(bounds.len());
    if workers == 1 {
        let mut shards = Vec::with_capacity(bounds.len());
        for (id, r) in bounds.iter().enumerate() {
            shards.push(f(id, &items[r.clone()]));
        }
        return merge_shards(shards);
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Vec<R>>>> =
        Mutex::new((0..bounds.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let id = next.fetch_add(1, Ordering::Relaxed);
                let Some(range) = bounds.get(id) else { break };
                let out = f(id, &items[range.clone()]);
                slots.lock().unwrap_or_else(|e| e.into_inner())[id] = Some(out);
            });
        }
    });
    let shards = slots
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|s| s.expect("every shard ran"))
        .collect();
    merge_shards(shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_partition_in_order() {
        let b = shard_bounds(10, 3);
        assert_eq!(b, vec![0..3, 3..6, 6..9, 9..10]);
        assert_eq!(shard_bounds(0, 3), Vec::<Range<usize>>::new());
        assert_eq!(shard_bounds(1, 3), vec![0..1]);
        assert_eq!(shard_bounds(3, 3), vec![0..3]);
    }

    #[test]
    fn stream_seeds_distinct_for_distinct_ids() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..10_000u64 {
            assert!(seen.insert(stream_seed(42, id)), "collision at {id}");
        }
    }

    #[test]
    fn map_sharded_matches_serial_for_any_worker_count() {
        let items: Vec<u64> = (0..1_000).collect();
        let f = |id: usize, shard: &[u64]| {
            shard.iter().map(|&x| x * 3 + stream_seed(7, id as u64) % 2).collect::<Vec<_>>()
        };
        let serial = map_sharded(&items, 64, 1, f);
        for workers in [2, 3, 8] {
            assert_eq!(map_sharded(&items, 64, workers, f), serial, "workers={workers}");
        }
        assert_eq!(serial.len(), items.len());
    }

    #[test]
    fn map_sharded_empty_input() {
        let out: Vec<u32> = map_sharded(&[] as &[u8], 16, 4, |_, _| vec![]);
        assert!(out.is_empty());
    }

    #[test]
    fn merge_preserves_order_and_count() {
        let merged = merge_shards(vec![vec![1, 2], vec![], vec![3], vec![4, 5]]);
        assert_eq!(merged, vec![1, 2, 3, 4, 5]);
    }
}
