//! Phase 7 — Reddit username matching and Pushshift history pulls
//! (§4.4.1).

use crate::resilience::{Phase, PhaseRun};
use crate::store::{CrawlStore, RedditMatch};
use crate::Crawler;

const PAGE_SIZE: usize = 100;

/// Check every Dissenter username on Reddit; for matches, pull the full
/// available comment history.
pub fn crawl_reddit(crawler: &Crawler, store: &mut CrawlStore) {
    let mut names: Vec<String> = store.users.keys().cloned().collect();
    // Sorted work list so the request order (and thus retry/dead-letter
    // accounting) is reproducible run to run.
    names.sort();
    let run = PhaseRun::new(crawler, Phase::Reddit);
    let matches = crate::parallel::parallel_fetch(
        crawler.endpoints.reddit,
        &names,
        crawler.config.workers,
        &store.stats,
        |c| run.setup_client(c),
        |client, name| {
            let about = run.fetch(client, store, &format!("/user/{name}/about"))?;
            if !about.status.is_success() {
                return None;
            }
            let total = jsonlite::parse(&about.text())
                .ok()?
                .get("total_comments")
                .and_then(|t| t.as_i64())
                .unwrap_or(0) as u64;
            let mut comments = Vec::new();
            let mut page = 0usize;
            loop {
                let resp =
                    run.fetch(client, store, &format!("/pushshift/comments?author={name}&page={page}"))?;
                let v = jsonlite::parse(&resp.text()).ok()?;
                let data = v.get("data").and_then(|d| d.as_array()).unwrap_or(&[]).to_vec();
                let n = data.len();
                for item in data {
                    if let Some(body) = item.get("body").and_then(|b| b.as_str()) {
                        comments.push(body.to_owned());
                    }
                }
                if n < PAGE_SIZE {
                    break;
                }
                page += 1;
            }
            Some(RedditMatch { username: name.clone(), total_comments: total, comments })
        },
    );
    store.reddit = matches.into_iter().map(|m| (m.username.clone(), m)).collect();
}
