#![warn(missing_docs)]
//! The §3.5 comment-classification stack.
//!
//! The paper bounds its toxicity estimates with three independent methods;
//! all three are implemented here:
//!
//! 1. **Dictionary** ([`dictionary`]) — tokenize, stem, and count matches
//!    against a 1,027-term hate lexicon; score = hate tokens / total tokens.
//!    The real study used a Hatebase-derived list; redistributing slurs is
//!    neither possible nor desirable, so [`lexicon`] deterministically
//!    synthesizes a same-sized pseudo-term lexicon (shared with the text
//!    generator) including deliberately ambiguous everyday words to model
//!    the false-positive discussion in §3.5.
//! 2. **Perspective** ([`perspective`]) — local, documented feature-based
//!    models producing the four scores the paper uses
//!    (`SEVERE_TOXICITY`, `LIKELY_TO_REJECT`, `OBSCENE`, `ATTACK_ON_AUTHOR`)
//!    as a stand-in for the closed Google Perspective API.
//! 3. **NLP** ([`svm`]) — a from-scratch linear SVM (Pegasos SGD,
//!    one-vs-rest) over hashed 1–2-gram features with [`adasyn`]
//!    oversampling, [`cv`] k-fold cross-validation and grid search, and
//!    [`metrics`] for F1 — reproducing the paper's hate/offensive/neither
//!    classifier (5-fold F1 ≈ 0.87 on its training corpus).
//!
//! All three scorers (and the synth text generator above) parallelize
//! through the deterministic sharding primitives in [`shard`]; see that
//! module for the worker-count-invariance contract.

pub mod adasyn;
pub mod cv;
pub mod dictionary;
pub mod features;
pub mod lexicon;
pub mod metrics;
pub mod perspective;
pub mod shard;
pub mod svm;

pub use dictionary::HateDictionary;
pub use metrics::Confusion;
pub use lexicon::Lexicon;
pub use perspective::{PerspectiveModel, PerspectiveScores, ScorerVersion};
pub use svm::{CommentClass, LinearSvm, SvmConfig};
