//! Offline stand-in for the subset of `crossbeam` 0.8 this workspace
//! uses: `channel::bounded` MPMC channels with blocking send
//! (backpressure) and clonable receivers.

/// Multi-producer multi-consumer bounded channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is drained
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create a bounded channel holding at most `cap` queued messages.
    /// `send` blocks while the queue is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap.max(1)),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, blocking while the queue is at capacity.
        /// Errors when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < st.cap {
                    st.queue.push_back(value);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                st = self.inner.not_full.wait(st).expect("channel lock");
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue one message, blocking while the queue is empty.
        /// Errors once the queue is drained and every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.not_empty.wait(st).expect("channel lock");
            }
        }

        /// Dequeue without blocking; `None` when empty.
        pub fn try_recv(&self) -> Option<T> {
            let mut st = self.inner.state.lock().expect("channel lock");
            let v = st.queue.pop_front();
            if v.is_some() {
                self.inner.not_full.notify_one();
            }
            v
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel lock").senders += 1;
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel lock").receivers += 1;
            Receiver { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().expect("channel lock");
            st.receivers -= 1;
            if st.receivers == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError};

    #[test]
    fn round_trip_in_order_single_consumer() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!((0..4).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn backpressure_blocks_then_unblocks() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
    }

    #[test]
    fn mpmc_drains_everything() {
        let (tx, rx) = bounded(8);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut n = 0u32;
                    while rx.recv().is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u32 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
