//! Recursive-descent JSON parser with bounded nesting depth.

use crate::value::Value;
use std::fmt;

/// Maximum nesting depth accepted before the parser bails out. Keeps
/// adversarial inputs (the crawler parses bodies from a network peer) from
/// overflowing the stack.
pub const MAX_DEPTH: usize = 128;

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
///
/// ```
/// let v = jsonlite::parse(r#"{"id": 42, "name": "@a"}"#).unwrap();
/// assert_eq!(v.get("id").and_then(|x| x.as_i64()), Some(42));
/// assert_eq!(v.get("name").and_then(|x| x.as_str()), Some("@a"));
/// assert!(jsonlite::parse("{oops").is_err());
/// ```
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { offset: self.pos, message: msg.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(pairs)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: require a following \uXXXX low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            out.push(char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"))?);
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unexpected low surrogate"));
                        } else {
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?);
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(c) => {
                    // Re-assemble UTF-8 multi-byte sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(c).ok_or_else(|| self.err("invalid utf-8 lead byte"))?;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated utf-8 sequence"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8 sequence"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char).to_digit(16).ok_or_else(|| self.err("bad hex in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("expected digits in number"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("number out of range"))
        } else {
            match text.parse::<i64>() {
                Ok(n) => Ok(Value::Int(n)),
                // Integer too large for i64: fall back to float like most parsers.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("number out of range")),
            }
        }
    }
}

fn utf8_len(lead: u8) -> Option<usize> {
    match lead {
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("a").and_then(|a| a.idx(0)).and_then(Value::as_i64), Some(1));
        assert!(v.get("a").and_then(|a| a.idx(1)).and_then(|o| o.get("b")).unwrap().is_null());
    }

    #[test]
    fn whitespace_tolerant() {
        let v = parse(" {\n\t\"k\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(v.get("k").and_then(|a| a.idx(1)).and_then(Value::as_i64), Some(2));
    }

    #[test]
    fn escapes_decode() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{e9}"));
    }

    #[test]
    fn surrogate_pair_decodes() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn unpaired_surrogate_rejected() {
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn raw_utf8_passes_through() {
        let v = parse("\"caf\u{e9} \u{1F600}\"").unwrap();
        assert_eq!(v.as_str(), Some("caf\u{e9} \u{1F600}"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "01a", "\"", "[1 2]"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_control_chars_in_strings() {
        assert!(parse("\"a\u{1}b\"").is_err());
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(16).to_string() + &"]".repeat(16);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn huge_int_degrades_to_float() {
        let v = parse("99999999999999999999999999").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn error_carries_offset() {
        let e = parse("[1,]").unwrap_err();
        assert!(e.offset > 0);
        assert!(!e.message.is_empty());
        let _ = e.to_string();
    }
}
