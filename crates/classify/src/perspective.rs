//! Local stand-in for the Google Perspective API (§3.5.2).
//!
//! The paper scores every comment with four Perspective models:
//! `SEVERE_TOXICITY`, `LIKELY_TO_REJECT` (trained on NY Times moderator
//! decisions), `OBSCENE`, and `ATTACK_ON_AUTHOR`. Perspective is a closed
//! remote service, so we substitute documented logistic models over the
//! lexical features of [`crate::features`]. Each model is a monotone
//! function of interpretable marker densities; the model *weights are part
//! of the public API* so the synthetic text generator can invert them —
//! i.e. synthesize a comment whose score lands near a target, the way the
//! paper's communities exhibit distinct score distributions.
//!
//! These are simulators of a scoring service, not state-of-the-art hate
//! detection — exactly the posture the paper takes ("we are less
//! interested in scoring any particular comment, and instead are
//! interested in aggregate trends").

use crate::features::{FeatureExtractor, TextFeatures};

/// Logistic weights for `SEVERE_TOXICITY`: dominated by hate-lexicon
/// density; "less sensitive to positive uses of profanity" (§4.4.3), hence
/// the small obscenity weight.
pub const SEVERE_W: ModelWeights = ModelWeights {
    hate: 14.0,
    obscene: 1.5,
    insult: 2.0,
    author: 0.0,
    exclaim: 1.0,
    caps: 0.5,
    bias: -3.0,
};

/// Logistic weights for `OBSCENE`.
pub const OBSCENE_W: ModelWeights = ModelWeights {
    hate: 2.0,
    obscene: 16.0,
    insult: 1.0,
    author: 0.0,
    exclaim: 0.5,
    caps: 0.25,
    bias: -3.2,
};

/// Logistic weights for `ATTACK_ON_AUTHOR`.
pub const ATTACK_W: ModelWeights = ModelWeights {
    hate: 1.0,
    obscene: 0.5,
    insult: 5.0,
    author: 11.0,
    exclaim: 0.5,
    caps: 0.25,
    bias: -3.4,
};

/// Logistic weights for `LIKELY_TO_REJECT` — the broadest model: any
/// marker channel can push a comment over a moderator's bar.
pub const REJECT_W: ModelWeights = ModelWeights {
    hate: 11.0,
    obscene: 9.0,
    insult: 7.0,
    author: 2.0,
    exclaim: 2.0,
    caps: 1.0,
    bias: -1.6,
};

/// Weights of one logistic scoring model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelWeights {
    /// Weight on hate-lexicon ratio.
    pub hate: f64,
    /// Weight on obscenity ratio.
    pub obscene: f64,
    /// Weight on insult ratio.
    pub insult: f64,
    /// Weight on author-word ratio.
    pub author: f64,
    /// Weight on exclamation density.
    pub exclaim: f64,
    /// Weight on caps ratio.
    pub caps: f64,
    /// Intercept.
    pub bias: f64,
}

impl ModelWeights {
    /// Raw linear score for a feature vector.
    pub fn linear(&self, f: &TextFeatures) -> f64 {
        self.hate * f.hate_ratio
            + self.obscene * f.obscene_ratio
            + self.insult * f.insult_ratio
            + self.author * f.author_ratio
            + self.exclaim * f.exclaim_density
            + self.caps * f.caps_ratio
            + self.bias
    }

    /// Logistic score in `(0, 1)`.
    pub fn score(&self, f: &TextFeatures) -> f64 {
        sigmoid(self.linear(f))
    }

    /// Invert the model along one channel: the marker density needed on
    /// channel `channel_weight` (other channels zero) to reach `target`.
    /// Clamped to `[0, 1]`. Used by the generator for calibration.
    pub fn density_for_target(&self, channel_weight: f64, target: f64) -> f64 {
        assert!(channel_weight > 0.0, "channel weight must be positive");
        let t = target.clamp(1e-6, 1.0 - 1e-6);
        ((logit(t) - self.bias) / channel_weight).clamp(0.0, 1.0)
    }
}

/// The four scores the paper reports, each in `(0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerspectiveScores {
    /// "Very hateful, aggressive, or disrespectful."
    pub severe_toxicity: f64,
    /// Would a NY Times moderator reject it?
    pub likely_to_reject: f64,
    /// Obscenity.
    pub obscene: f64,
    /// Ad-hominem attack on the content's author.
    pub attack_on_author: f64,
}

/// One published revision of the black-box scoring service.
///
/// The Perspective papers ("Bye Bye Perspective API", arXiv:2604.25580;
/// "On the Challenges of Using Black-Box APIs for Toxicity Evaluation",
/// arXiv:2304.12397) document that the hosted models are silently
/// retrained mid-study, shifting score distributions under longitudinal
/// analyses. A `ScorerVersion` reproduces that hazard deterministically:
/// `version` identifies the revision, and each weight of each model is
/// perturbed multiplicatively by at most `drift` (relative), with the
/// perturbation drawn from a seeded stream keyed on
/// `(seed, version, weight index)`. Version 0 — or any version with
/// `drift == 0` — is *bit-identical* to [`PerspectiveModel::standard`],
/// which anchors the longitudinal differential oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScorerVersion {
    /// Monotone revision number; 0 is the launch model.
    pub version: u32,
    /// Maximum relative weight perturbation in `[0, 1)`; 0 disables drift.
    pub drift: f64,
    /// Seed of the perturbation stream.
    pub seed: u64,
}

impl ScorerVersion {
    /// The launch revision (scores exactly like the standard model).
    pub fn launch(seed: u64) -> Self {
        Self { version: 0, drift: 0.0, seed }
    }

    /// Revision `version` with relative drift `drift`.
    pub fn at(version: u32, drift: f64, seed: u64) -> Self {
        Self { version, drift, seed }
    }

    /// The seeded perturbation factor for weight `idx` of this revision,
    /// in `[1 - drift, 1 + drift]`.
    fn factor(&self, idx: u64) -> f64 {
        if self.version == 0 || self.drift == 0.0 {
            return 1.0;
        }
        let mut z = self
            .seed
            .wrapping_add((self.version as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(idx.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // Map to [-1, 1] then scale by the drift magnitude.
        let unit = (z >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0;
        1.0 + self.drift * unit
    }

    fn perturb(&self, w: &ModelWeights, base_idx: u64) -> ModelWeights {
        ModelWeights {
            hate: w.hate * self.factor(base_idx),
            obscene: w.obscene * self.factor(base_idx + 1),
            insult: w.insult * self.factor(base_idx + 2),
            author: w.author * self.factor(base_idx + 3),
            exclaim: w.exclaim * self.factor(base_idx + 4),
            caps: w.caps * self.factor(base_idx + 5),
            bias: w.bias * self.factor(base_idx + 6),
        }
    }
}

/// The scoring service: feature extraction plus the four models.
///
/// The model carries its own weight set so different [`ScorerVersion`]s
/// can coexist in one process (the windowed analysis rescoring a
/// calibration sample across revisions needs exactly that).
#[derive(Debug, Clone)]
pub struct PerspectiveModel {
    extractor: FeatureExtractor,
    severe: ModelWeights,
    reject: ModelWeights,
    obscene: ModelWeights,
    attack: ModelWeights,
}

impl PerspectiveModel {
    /// Model over the standard lexicon with the published launch weights.
    pub fn standard() -> Self {
        Self::new(FeatureExtractor::standard())
    }

    /// Model over a custom extractor (launch weights).
    pub fn new(extractor: FeatureExtractor) -> Self {
        Self { extractor, severe: SEVERE_W, reject: REJECT_W, obscene: OBSCENE_W, attack: ATTACK_W }
    }

    /// The standard model as revised by `version`. Version 0 (or zero
    /// drift) is bit-identical to [`PerspectiveModel::standard`].
    pub fn versioned(version: &ScorerVersion) -> Self {
        Self {
            extractor: FeatureExtractor::standard(),
            severe: version.perturb(&SEVERE_W, 0),
            reject: version.perturb(&REJECT_W, 7),
            obscene: version.perturb(&OBSCENE_W, 14),
            attack: version.perturb(&ATTACK_W, 21),
        }
    }

    /// The feature extractor (shared with the SVM featurizer).
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// Score one comment.
    pub fn score(&self, text: &str) -> PerspectiveScores {
        let f = self.extractor.extract(text);
        self.score_features(&f)
    }

    /// Score pre-extracted features.
    pub fn score_features(&self, f: &TextFeatures) -> PerspectiveScores {
        PerspectiveScores {
            severe_toxicity: self.severe.score(f),
            likely_to_reject: self.reject.score(f),
            obscene: self.obscene.score(f),
            attack_on_author: self.attack.score(f),
        }
    }
}

/// Standard logistic function.
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Inverse logistic. Input must be in (0, 1).
pub fn logit(p: f64) -> f64 {
    (p / (1.0 - p)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_text_scores_low() {
        let m = PerspectiveModel::standard();
        let s = m.score("I went for a walk and saw a bird.");
        assert!(s.severe_toxicity < 0.1, "{s:?}");
        assert!(s.obscene < 0.1);
        assert!(s.attack_on_author < 0.1);
        assert!(s.likely_to_reject < 0.3);
    }

    #[test]
    fn hate_terms_drive_severe_toxicity() {
        let m = PerspectiveModel::standard();
        let t = m.extractor().lexicon().term(12).to_owned();
        let s = m.score(&format!("{t} {t} and more {t} all day"));
        assert!(s.severe_toxicity > 0.8, "{s:?}");
        assert!(s.severe_toxicity > s.obscene);
    }

    #[test]
    fn obscene_markers_drive_obscene() {
        let m = PerspectiveModel::standard();
        let o = crate::features::obscene_markers()[3].clone();
        let s = m.score(&format!("{o} {o} this {o} thing"));
        assert!(s.obscene > 0.8, "{s:?}");
        assert!(s.obscene > s.severe_toxicity);
    }

    #[test]
    fn author_attack_detected() {
        let m = PerspectiveModel::standard();
        let s = m.score("author liar journalist fraud writer hack editor pathetic");
        assert!(s.attack_on_author > 0.9, "{s:?}");
        let mild = m.score("the author is a liar honestly");
        assert!(mild.attack_on_author > 0.3 && mild.attack_on_author < s.attack_on_author, "{mild:?}");
    }

    #[test]
    fn reject_is_broadest() {
        let m = PerspectiveModel::standard();
        let t = m.extractor().lexicon().term(9).to_owned();
        for text in [
            format!("{t} nonsense {t}"),
            "you stupid pathetic fool idiot".to_string(),
        ] {
            let s = m.score(&text);
            assert!(
                s.likely_to_reject >= s.severe_toxicity.min(0.95),
                "{text}: {s:?}"
            );
        }
    }

    #[test]
    fn scores_monotone_in_density() {
        let m = PerspectiveModel::standard();
        let t = m.extractor().lexicon().term(2).to_owned();
        let filler = "word";
        let mut last = 0.0;
        for k in 0..=5 {
            let mut words = vec![filler; 10 - k];
            words.extend(std::iter::repeat_n(t.as_str(), k));
            let s = m.score(&words.join(" "));
            assert!(s.severe_toxicity >= last, "k={k}");
            last = s.severe_toxicity;
        }
    }

    #[test]
    fn inversion_round_trips() {
        // density_for_target followed by scoring ≈ target.
        for &target in &[0.2, 0.5, 0.8, 0.95] {
            let d = SEVERE_W.density_for_target(SEVERE_W.hate, target);
            let f = TextFeatures { hate_ratio: d, tokens: 100, ..Default::default() };
            let got = SEVERE_W.score(&f);
            assert!((got - target).abs() < 0.02, "target {target} got {got}");
        }
    }

    #[test]
    fn inversion_clamps() {
        // Unreachable targets clamp to density 1.
        let d = OBSCENE_W.density_for_target(0.5, 0.999);
        assert_eq!(d, 1.0);
        let d0 = OBSCENE_W.density_for_target(16.0, 1e-9);
        assert_eq!(d0, 0.0);
    }

    #[test]
    fn version_zero_and_zero_drift_score_bit_identically() {
        let texts = [
            "I went for a walk and saw a bird.",
            "you stupid pathetic fool idiot",
            "the author is a liar honestly",
        ];
        let standard = PerspectiveModel::standard();
        let launch = PerspectiveModel::versioned(&ScorerVersion::launch(42));
        let drift0 = PerspectiveModel::versioned(&ScorerVersion::at(7, 0.0, 42));
        for t in texts {
            let want = standard.score(t);
            assert_eq!(want, launch.score(t), "launch version must be bit-identical");
            assert_eq!(want, drift0.score(t), "zero drift must be bit-identical");
        }
    }

    #[test]
    fn drifted_versions_move_scores_deterministically() {
        let text = "you stupid pathetic fool idiot";
        let v1 = ScorerVersion::at(1, 0.2, 42);
        let a = PerspectiveModel::versioned(&v1).score(text);
        let b = PerspectiveModel::versioned(&v1).score(text);
        assert_eq!(a, b, "same version must reproduce");
        let base = PerspectiveModel::standard().score(text);
        assert_ne!(a, base, "20% drift must move a mid-range score");
        let v2 = ScorerVersion::at(2, 0.2, 42);
        assert_ne!(a, PerspectiveModel::versioned(&v2).score(text), "revisions differ");
    }

    #[test]
    fn sigmoid_logit_inverse() {
        for &p in &[0.1, 0.5, 0.9] {
            assert!((sigmoid(logit(p)) - p).abs() < 1e-12);
        }
    }
}
