#![warn(missing_docs)]
//! The §4 analyses: everything between the crawl output and the paper's
//! tables and figures.
//!
//! Each module computes one family of results from a
//! [`crawler::CrawlStore`] (never from the in-process ground truth):
//!
//! * [`url`] — URL parsing/normalization and the §4.2.1 anomaly census;
//! * [`domains`] — Table 2 (TLD and domain shares, per-domain comment
//!   volume medians);
//! * [`allsides`] — the media-bias mapping and §4.4.4 conditional
//!   analyses;
//! * [`users`] — §4.1 (growth, activity concentration, Table 1);
//! * [`content`] — §4.2.2 YouTube breakdowns and §4.2.3 languages;
//! * [`toxicity`] — §§4.3–4.4 score distributions (Figs. 4, 7, 8);
//! * [`votes`] — Fig. 5;
//! * [`social`] — §4.5 network analyses (Fig. 9, hateful core);
//! * [`covert`] — §6's covert-channel candidate detector (extension);
//! * [`windowed`] — longitudinal growth curves, per-window toxicity,
//!   crossover timing, and the scorer-drift report;
//! * [`spill`] — out-of-core external-merge aggregation behind the
//!   Table-2/language tables (byte-identical to the in-memory path);
//! * [`export`] — CSV plot series for every figure;
//! * [`report`] — the assembled [`report::StudyReport`].

pub mod allsides;
pub mod content;
pub mod covert;
pub mod domains;
pub mod export;
pub mod report;
pub mod social;
pub mod spill;
pub mod toxicity;
pub mod url;
pub mod users;
pub mod votes;
pub mod windowed;

pub use allsides::{bias_of_domain, Bias};
pub use report::{ReportOptions, StudyReport};
