//! The reddit.com / Pushshift front-end (§4.4.1).

use crate::cache::FrontCache;
use crate::Front;
use httpnet::{Handler, Params, Request, Response, Router, ServerConfig, Status};
use platform::World;
use std::sync::Arc;

/// Pushshift page size.
pub const PAGE_SIZE: usize = 100;

/// Pushshift is unauthenticated: one shared visibility class.
const API_CLASS: &str = "api";

/// Handler for Reddit account checks and Pushshift history pulls. No
/// rate limiter and no per-session content, so both routes run the full
/// conditional pipeline: 200s are tagged, cached, and revalidate to
/// bodyless `304`s. The account-miss 404 (the §4.4.1 existence signal)
/// stays fully dynamic.
pub struct RedditFront {
    router: Router,
    config_override: Option<ServerConfig>,
}

impl RedditFront {
    /// Build over a shared world with a default cache.
    pub fn new(world: Arc<World>) -> Self {
        let stamp = world.content_hash();
        Self::with_cache(world, FrontCache::new(stamp))
    }

    /// Build with an explicit conditional-request cache.
    pub fn with_cache(world: Arc<World>, cache: FrontCache) -> Self {
        let mut router = Router::new();
        {
            let world = world.clone();
            let cache = cache.clone();
            router.route("GET", "/user/:username/about", move |req, p| {
                cache.respond(req, API_CLASS, || about(&world, p))
            });
        }
        {
            let world = world.clone();
            router.route("GET", "/pushshift/comments", move |req, _| {
                cache.respond(req, API_CLASS, || comments(&world, req))
            });
        }
        Self { router, config_override: None }
    }

    /// Pin an explicit server configuration for this front.
    pub fn with_server_config(mut self, config: ServerConfig) -> Self {
        self.config_override = Some(config);
        self
    }
}

impl Handler for RedditFront {
    fn handle(&self, req: &Request) -> Response {
        self.router.dispatch(req)
    }
}

impl Front for RedditFront {
    fn name(&self) -> &'static str {
        "reddit"
    }

    fn server_config(&self, base: &ServerConfig) -> ServerConfig {
        self.config_override.clone().unwrap_or_else(|| base.clone())
    }
}

fn about(world: &World, p: &Params) -> Response {
    let name = p.get("username").unwrap_or("");
    if world.reddit.exists(name) {
        let v = jsonlite::Value::object()
            .with("name", name)
            .with("total_comments", world.reddit.declared_count(name).unwrap_or(0));
        Response::json(jsonlite::to_string(&v))
    } else {
        let mut r = Response::status(Status::NOT_FOUND);
        r.body = br#"{"error":404,"message":"Not Found"}"#.to_vec();
        r
    }
}

fn comments(world: &World, req: &Request) -> Response {
    let Some(author) = req.query("author") else {
        return Response::status(Status(400));
    };
    let page: usize = req.query("page").and_then(|s| s.parse().ok()).unwrap_or(0);
    let Some(all) = world.reddit.comments(&author) else {
        return Response::json("{\"data\":[],\"total\":0}".to_owned());
    };
    let start = (page * PAGE_SIZE).min(all.len());
    let end = (start + PAGE_SIZE).min(all.len());
    let items: Vec<jsonlite::Value> = all[start..end]
        .iter()
        .map(|t| jsonlite::Value::object().with("body", t.as_str()))
        .collect();
    let v = jsonlite::Value::object()
        .with("data", jsonlite::Value::Array(items))
        .with("total", world.reddit.declared_count(&author).unwrap_or(0))
        .with("materialized", all.len());
    Response::json(jsonlite::to_string(&v))
}
