//! Simulated-clock regression tests (the longitudinal-sweep contract):
//! when the fronts' rate limiters and the crawler share one
//! [`platform::SimClock`], throttle waits advance simulated time
//! instead of sleeping, so
//!
//! 1. a crawl against *binding* rate limits finishes in wall-clock
//!    seconds while still exercising the full 429 → sleep-until-reset →
//!    retry loop, and
//! 2. a killed-and-resumed crawl reconstructs the byte-identical
//!    mirror: the resumed run inherits the clock position (not the wall
//!    schedule) of its dead predecessor, so penalty windows and reset
//!    arithmetic replay instead of racing the wall.
//!
//! Before the clock existed, both properties were wall-clock hostages:
//! `RateLimiter` lockouts and the crawler's throttle sleeps keyed off
//! `SystemTime::now()`, so a tight window either serialized the test
//! behind real sleeping or let a resume land unpredictably inside a
//! window its predecessor had spent.

use crawler::journal::is_kill_error;
use crawler::{CrawlStore, Crawler, DurableConfig, Endpoints, Failpoint};
use httpnet::ServerConfig;
use platform::{RateLimiter, SimClock, World};
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use synth::config::Scale;
use synth::WorldConfig;
use webfront::cache::FrontCache;
use webfront::dissenter::DissenterFront;
use webfront::gab::GabFront;
use webfront::{SimFronts, SimServices};

fn world() -> Arc<World> {
    static W: OnceLock<Arc<World>> = OnceLock::new();
    W.get_or_init(|| {
        let cfg = WorldConfig { scale: Scale::Custom(0.002), ..WorldConfig::small() };
        let (world, _) = synth::generate(&cfg);
        Arc::new(world)
    })
    .clone()
}

/// Fronts whose Gab limiter genuinely binds (50 requests per 60-second
/// window — enumeration alone needs hundreds), all keyed to `clock`.
fn binding_services(clock: &SimClock) -> SimServices {
    let w = world();
    let stamp = w.content_hash();
    let mut fronts = SimFronts::new(w.clone());
    fronts.gab = Arc::new(GabFront::with_clock(
        w.clone(),
        FrontCache::new(stamp),
        50,
        60,
        clock.clone(),
    ));
    fronts.dissenter = Arc::new(DissenterFront::with_clock(
        w,
        FrontCache::new(stamp),
        RateLimiter::dissenter_per_url(),
        clock.clone(),
    ));
    SimServices::start_with(fronts, ServerConfig { workers: 8, queue: 256, ..Default::default() })
        .expect("services")
}

fn clocked_crawler(services: &SimServices, clock: &SimClock) -> Crawler {
    let mut crawler = Crawler::new(Endpoints {
        dissenter: services.dissenter.addr(),
        gab: services.gab.addr(),
        reddit: services.reddit.addr(),
        youtube: services.youtube.addr(),
    });
    crawler.config.workers = 1; // deterministic request order
    crawler.config.backoff = Duration::from_millis(1);
    crawler.config.enum_gap_tolerance = 400;
    crawler.set_clock(clock.clone());
    crawler
}

fn persist_bytes(store: &CrawlStore, tag: &str) -> Vec<(&'static str, Vec<u8>)> {
    let dir = std::env::temp_dir().join(format!("simclock-{}-{tag}", std::process::id()));
    crawler::persist::save(store, &dir).expect("save");
    let out = crawler::persist::FILES
        .iter()
        .map(|f| (*f, std::fs::read(dir.join(f)).expect("read")))
        .collect();
    std::fs::remove_dir_all(&dir).ok();
    out
}

#[test]
fn clocked_throttle_advances_sim_time_not_wall() {
    let started = std::time::Instant::now();
    let clock = SimClock::new(ids::STUDY_END);
    let services = binding_services(&clock);
    let crawler = clocked_crawler(&services, &clock);
    let store = crawler.full_crawl();
    std::mem::forget(services);

    let sleeps = store.stats.rate_limit_sleeps.load(std::sync::atomic::Ordering::Relaxed);
    assert!(sleeps > 0, "the 50-req window must bind: {sleeps} throttle sleeps");
    assert!(
        clock.now() > ids::STUDY_END,
        "each throttle must advance the shared clock past the advertised reset"
    );
    assert!(store.dead_letters().is_empty(), "throttling must never dead-letter");

    // The binding-limit crawl reconstructs the same mirror an unlimited
    // crawl does — rate limiting costs (simulated) time, never data.
    let free = SimServices::start(
        world(),
        ServerConfig { workers: 8, queue: 256, ..Default::default() },
    )
    .expect("services");
    let mut reference = Crawler::new(Endpoints {
        dissenter: free.dissenter.addr(),
        gab: free.gab.addr(),
        reddit: free.reddit.addr(),
        youtube: free.youtube.addr(),
    });
    reference.config.workers = 1;
    reference.config.enum_gap_tolerance = 400;
    let want = reference.full_crawl();
    std::mem::forget(free);
    for ((name, want), (_, have)) in
        persist_bytes(&want, "free").iter().zip(&persist_bytes(&store, "limited"))
    {
        assert_eq!(want, have, "{name} differs between limited and unlimited crawls");
    }

    // Dozens of 60-second windows were waited out; on the wall this
    // must have cost seconds, not minutes.
    assert!(
        started.elapsed() < Duration::from_secs(120),
        "simulated waits leaked onto the wall clock: {:?}",
        started.elapsed()
    );
}

#[test]
fn resumed_crawl_replays_identically_under_sim_clock() {
    let dir = std::env::temp_dir().join(format!("simclock-resume-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Uninterrupted clocked run: the reference mirror.
    let clock = SimClock::new(ids::STUDY_END);
    let services = binding_services(&clock);
    let crawler = clocked_crawler(&services, &clock);
    let want = crawler.full_crawl();
    std::mem::forget(services);

    // Same crawl, killed mid-journal under its own clock...
    let clock = SimClock::new(ids::STUDY_END);
    let services = binding_services(&clock);
    let mut crawler = clocked_crawler(&services, &clock);
    crawler.enable_revalidation(10_000);
    let cfg = DurableConfig {
        failpoint: Failpoint { kill_at_op: Some(12), torn_tail: false },
        ..DurableConfig::default()
    };
    let err = crawler.full_crawl_durable(&dir, &cfg).expect_err("failpoint must kill");
    assert!(is_kill_error(&err), "unexpected error: {err}");
    std::mem::forget(services);

    // ...and resumed against fresh fronts on the *same* clock position,
    // exactly as a longitudinal sweep resumes: simulated time carries
    // over, so spent rate windows stay spent.
    let services = binding_services(&clock);
    let mut resumer = clocked_crawler(&services, &clock);
    resumer.enable_revalidation(10_000);
    let (resumed, _info) = resumer.resume(&dir, &DurableConfig::default()).expect("resume");
    std::mem::forget(services);
    std::fs::remove_dir_all(&dir).ok();

    for ((name, want), (_, have)) in
        persist_bytes(&want, "ref").iter().zip(&persist_bytes(&resumed, "resumed"))
    {
        assert_eq!(want, have, "{name} differs between uninterrupted and resumed crawls");
    }
}
