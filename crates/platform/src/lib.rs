#![warn(missing_docs)]
//! The simulated platform universe: Dissenter, Gab, Reddit, and YouTube.
//!
//! The paper measures a live system; this crate is that system's faithful
//! in-memory model, encoding every mechanism §2 and §3 describe:
//!
//! * Dissenter users with 12-byte author-ids, home pages listing every
//!   commented URL, hidden `commentAuthor` metadata (language, permissions,
//!   view filters), admin/banned flags (Table 1);
//! * comment pages per URL with commenturl-ids, titles/descriptions
//!   (absent for YouTube embeds), votes, and arbitrarily nested replies;
//! * the NSFW / "offensive" shadow overlay: content invisible unless an
//!   authenticated viewer opted in (§2.2, §4.3.1);
//! * Gab accounts (sequential IDs, superset of Dissenter users, deletable
//!   — deleted accounts leave orphaned Dissenter comments), the follower
//!   graph, and API rate limiting with reset headers (§3.1, §3.4);
//! * Reddit accounts for the username-intersection baseline (§4.4.1);
//! * YouTube content with takedown states and comments-disabled flags
//!   (§3.3, §4.2.2).
//!
//! [`World`] bundles the four services plus the baseline news-site comment
//! corpora of Table 3. The `httpnet`-based front-end serves this model over
//! HTTP; the `crawler` crate re-discovers it exactly the way the paper did.

pub mod clock;
pub mod dissenter;
pub mod gab;
pub mod model;
pub mod ratelimit;
pub mod reddit;
pub mod visibility;
pub mod world;
pub mod youtube;

pub use clock::SimClock;
pub use dissenter::DissenterDb;
pub use gab::GabDb;
pub use model::{
    BaselineCorpus, Comment, CommentUrl, User, UserFlags, ViewFilters, Vote,
};
pub use ratelimit::{RateLimiter, RateStats};
pub use reddit::RedditDb;
pub use visibility::Viewer;
pub use world::World;
pub use youtube::{YouTubeDb, YtContent, YtKind, YtState, YtUnavailableReason};
