//! Benchmark support: shared fixtures for the Criterion benches, the
//! `repro` harness binary that regenerates every table and figure, the
//! [`loadgen`] closed-loop load generator behind `BENCH_PR5.json`, and
//! the [`abusegen`] hostile-load generator behind `BENCH_PR8.json`.

pub mod abusegen;
pub mod loadgen;

use dissenter_core::{run_study, Study};
use std::sync::OnceLock;
use synth::config::Scale;

/// A small cached study shared by benches (world generation and the crawl
/// dominate setup time; benches measure the analysis stages on top).
pub fn bench_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        let cfg = Study::builder()
            .scale(Scale::Custom(0.004))
            .svm_corpus(1_000)
            .build()
            .expect("bench fixture config is valid");
        run_study(&cfg)
    })
}

/// Parse a `--scale` argument value into a [`Scale`].
pub fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "small" => Ok(Scale::Small),
        "medium" => Ok(Scale::Medium),
        "paper" => Ok(Scale::Paper),
        other => other
            .parse::<f64>()
            .map(Scale::Custom)
            .map_err(|_| format!("invalid scale {other:?} (use small|medium|paper|<float>)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale("paper").unwrap().factor(), 1.0);
        assert!(matches!(parse_scale("0.01"), Ok(Scale::Custom(_))));
        assert!(parse_scale("bogus").is_err());
    }
}
