//! A small scoped parallel-map used by all crawl phases: N workers, each
//! with its own keep-alive HTTP client, draining a shared work index.

use crate::store::CrawlStats;
use httpnet::Client;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `work(client, item)` over `items` with `workers` threads, each
/// owning a keep-alive [`Client`] to `addr`. Results are collected
/// unordered.
///
/// A panic inside `work` is confined to its item: it is caught, recorded
/// as a failure (and panic) on `stats`, and the worker keeps draining on
/// a fresh client — one poisoned page cannot take the phase down or
/// strand the other workers' results.
pub fn parallel_fetch<T: Sync, R: Send>(
    addr: SocketAddr,
    items: &[T],
    workers: usize,
    stats: &CrawlStats,
    setup: impl Fn(&mut Client) + Sync,
    work: impl Fn(&mut Client, &T) -> Option<R> + Sync,
) -> Vec<R> {
    let workers = workers.max(1).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<R>> = Mutex::new(Vec::with_capacity(items.len()));
    let fresh_client = || {
        let mut client = Client::builder(addr).keep_alive(true).build();
        setup(&mut client);
        client
    };
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut client = fresh_client();
                let mut local: Vec<R> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| work(&mut client, &items[i]))) {
                        Ok(Some(r)) => local.push(r),
                        Ok(None) => {}
                        Err(_) => {
                            stats.add_panic();
                            // The panic may have left the connection
                            // mid-read; do not reuse it.
                            client = fresh_client();
                        }
                    }
                }
                results.lock().unwrap_or_else(|e| e.into_inner()).extend(local);
            });
        }
    });
    results.into_inner().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use httpnet::{Handler, Request, Response, Server, ServerConfig};
    use std::sync::Arc;

    #[test]
    fn fetches_all_items_in_parallel() {
        let handler: Arc<dyn Handler> =
            Arc::new(|req: &Request| Response::html(format!("got {}", req.path())));
        let server = Server::start(handler, ServerConfig::default()).unwrap();
        let stats = CrawlStats::default();
        let items: Vec<usize> = (0..200).collect();
        let out = parallel_fetch(
            server.addr(),
            &items,
            8,
            &stats,
            |_| {},
            |client, &i| {
                let r = client.get_keep_alive(&format!("/i/{i}")).ok()?;
                Some((i, r.text()))
            },
        );
        assert_eq!(out.len(), 200);
        for (i, text) in &out {
            assert_eq!(text, &format!("got /i/{i}"));
        }
    }

    #[test]
    fn worker_failures_are_skipped_not_fatal() {
        let handler: Arc<dyn Handler> = Arc::new(|_: &Request| Response::not_found());
        let server = Server::start(handler, ServerConfig::default()).unwrap();
        let stats = CrawlStats::default();
        let items = vec![1, 2, 3];
        let out: Vec<u32> =
            parallel_fetch(server.addr(), &items, 2, &stats, |_| {}, |client, &i| {
                let r = client.get_keep_alive("/x").ok()?;
                r.status.is_success().then_some(i)
            });
        assert!(out.is_empty());
    }

    #[test]
    fn setup_applies_cookies() {
        let handler: Arc<dyn Handler> = Arc::new(|req: &Request| {
            Response::html(req.cookie("session").unwrap_or("none").to_owned())
        });
        let server = Server::start(handler, ServerConfig::default()).unwrap();
        let stats = CrawlStats::default();
        let items = vec![()];
        let out = parallel_fetch(
            server.addr(),
            &items,
            1,
            &stats,
            |c| {
                c.set_cookie("session", "crawler:nsfw");
            },
            |client, _| client.get_keep_alive("/").ok().map(|r| r.text()),
        );
        assert_eq!(out, vec!["crawler:nsfw".to_owned()]);
    }

    #[test]
    fn a_panicking_item_is_recorded_and_the_rest_survive() {
        let handler: Arc<dyn Handler> =
            Arc::new(|req: &Request| Response::html(format!("got {}", req.path())));
        let server = Server::start(handler, ServerConfig::default()).unwrap();
        let stats = CrawlStats::default();
        let items: Vec<usize> = (0..40).collect();
        let out = parallel_fetch(
            server.addr(),
            &items,
            4,
            &stats,
            |_| {},
            |client, &i| {
                let r = client.get_keep_alive(&format!("/i/{i}")).ok()?;
                assert!(i % 10 != 7, "poisoned page {i}");
                Some((i, r.text()))
            },
        );
        // 4 of 40 items panic (7, 17, 27, 37); the rest all land.
        assert_eq!(out.len(), 36);
        assert!(out.iter().all(|(i, _)| i % 10 != 7));
        assert_eq!(stats.panics.load(Ordering::Relaxed), 4);
        assert_eq!(stats.failures.load(Ordering::Relaxed), 4, "panics count as failures");
    }
}
