//! Character-trigram naive-Bayes language identification (§4.2.3).
//!
//! The paper classified all 1.68M comments with `langid.py`, finding 94%
//! English, 2% German, and <0.5% each for French, Spanish, and Italian.
//! This module is the stand-in: a multinomial naive-Bayes classifier over
//! character trigrams with Laplace smoothing, trained on the per-language
//! seed vocabularies below.
//!
//! The *same* seed vocabularies are exported (via [`seed_words`]) to the
//! synthetic text generator. That makes the experiment honest: the
//! generator samples words in a language, and the identifier must genuinely
//! recover the language from character statistics — there is no label
//! smuggling, and the classifier can (and occasionally does) misclassify
//! very short comments, just like `langid.py`.

use crate::ngram::char_ngrams;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Languages the identifier distinguishes — the five the paper reports,
/// plus `Unknown` for degenerate input (empty / all-punctuation text).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lang {
    /// English
    En,
    /// German
    De,
    /// French
    Fr,
    /// Spanish
    Es,
    /// Italian
    It,
    /// Could not be determined.
    Unknown,
}

impl Lang {
    /// All identifiable languages (excludes `Unknown`).
    pub const ALL: [Lang; 5] = [Lang::En, Lang::De, Lang::Fr, Lang::Es, Lang::It];

    /// ISO-639-1 code.
    pub fn code(&self) -> &'static str {
        match self {
            Lang::En => "en",
            Lang::De => "de",
            Lang::Fr => "fr",
            Lang::Es => "es",
            Lang::It => "it",
            Lang::Unknown => "??",
        }
    }
}

/// English evaluative/addressee vocabulary: heavily used in comment
/// sections (insults, author references). Included in the *language
/// profile* so marker-rich comments are not misattributed to other
/// languages, but excluded from the benign filler vocabulary the text
/// generator draws from (these words carry toxicity-feature signal).
pub const EN_EVALUATIVE: &[&str] = &[
    "idiot", "fool", "clown", "liar", "moron", "stupid", "dumb", "pathetic", "loser", "trash",
    "garbage", "coward", "traitor", "shill", "hack", "disgusting", "vile", "corrupt", "fraud",
    "sheep", "author", "writer", "journalist", "reporter", "editor", "wrote", "writes",
    "columnist", "publisher", "yours", "yourself",
];

/// Benign filler vocabulary per language — what the synthetic comment
/// generator samples between markers. For English this is
/// [`seed_words`] *without* the evaluative terms.
pub fn filler_words(lang: Lang) -> &'static [&'static str] {
    seed_words(lang)
}

/// Training corpus for the language profile: the filler vocabulary plus,
/// for English, the evaluative vocabulary.
fn profile_words(lang: Lang) -> Vec<&'static str> {
    let mut v: Vec<&'static str> = seed_words(lang).to_vec();
    if lang == Lang::En {
        v.extend_from_slice(EN_EVALUATIVE);
    }
    v
}

/// Common-word seed vocabulary for each language. Both the language model
/// and the synthetic comment generator draw from these lists.
pub fn seed_words(lang: Lang) -> &'static [&'static str] {
    match lang {
        Lang::En => &[
            "the", "be", "to", "of", "and", "a", "in", "that", "have", "it", "for", "not", "on",
            "with", "he", "as", "you", "do", "at", "this", "but", "his", "by", "from", "they",
            "we", "say", "her", "she", "or", "an", "will", "my", "one", "all", "would", "there",
            "their", "what", "so", "up", "out", "if", "about", "who", "get", "which", "go", "me",
            "when", "make", "can", "like", "time", "no", "just", "him", "know", "take", "people",
            "into", "year", "your", "good", "some", "could", "them", "see", "other", "than",
            "then", "now", "look", "only", "come", "its", "over", "think", "also", "back",
            "after", "use", "two", "how", "our", "work", "first", "well", "way", "even", "new",
            "want", "because", "any", "these", "give", "day", "most", "us", "news", "media",
            "free", "speech", "comment", "truth", "country", "world", "right", "wrong", "video",
            "watch", "read", "article", "story", "government", "believe", "never", "always",
            "censorship", "platform", "agree", "disagree", "real", "fake",
        ],
        Lang::De => &[
            "der", "die", "das", "und", "sein", "in", "ein", "zu", "haben", "ich", "werden",
            "sie", "von", "nicht", "mit", "es", "sich", "auch", "auf", "f\u{fc}r", "an", "er",
            "so", "dass", "k\u{f6}nnen", "dies", "als", "ihr", "ja", "wie", "bei", "oder", "wir",
            "aber", "dann", "man", "da", "sein", "noch", "nach", "was", "also", "aus", "all",
            "wenn", "nur", "mein", "gegen", "wieder", "schon", "vor", "durch", "geld", "jahr",
            "gut", "wissen", "neu", "sehen", "lassen", "unter", "wahrheit", "freiheit", "medien",
            "meinung", "deutschland", "europa", "menschen", "welt", "zeit", "immer", "nie",
            "viel", "mehr", "doch", "hier", "heute", "sagen", "machen", "geben", "kommen",
            "denken", "glauben", "richtig", "falsch", "nachrichten", "regierung", "zensur",
            "sprechen", "leben", "stark", "gro\u{df}", "klein", "\u{fc}ber", "zwischen",
        ],
        Lang::Fr => &[
            "le", "la", "les", "de", "un", "une", "\u{ea}tre", "et", "\u{e0}", "il", "elle",
            "avoir", "ne", "je", "son", "que", "se", "qui", "ce", "dans", "en", "du", "pas",
            "pour", "par", "sur", "faire", "plus", "dire", "me", "on", "mon", "lui", "nous",
            "comme", "mais", "pouvoir", "avec", "tout", "y", "aller", "voir", "bien", "o\u{f9}",
            "sans", "tu", "ou", "leur", "homme", "si", "deux", "mari", "moi", "vouloir",
            "quelque", "temps", "monde", "libert\u{e9}", "v\u{e9}rit\u{e9}", "m\u{e9}dias",
            "gouvernement", "toujours", "jamais", "beaucoup", "aujourd'hui", "parler", "penser",
            "croire", "vrai", "faux", "nouvelles", "censure", "vie", "grand", "petit", "fran\u{e7}ais",
        ],
        Lang::Es => &[
            "el", "la", "de", "que", "y", "a", "en", "un", "ser", "se", "no", "haber", "por",
            "con", "su", "para", "como", "estar", "tener", "le", "lo", "todo", "pero", "m\u{e1}s",
            "hacer", "o", "poder", "decir", "este", "ir", "otro", "ese", "si", "me", "ya", "ver",
            "porque", "dar", "cuando", "muy", "sin", "vez", "mucho", "saber", "qu\u{e9}", "sobre",
            "mi", "alguno", "mismo", "yo", "tambi\u{e9}n", "hasta", "a\u{f1}o", "dos", "querer",
            "entre", "as\u{ed}", "primero", "desde", "grande", "eso", "ni", "nos", "llegar",
            "pasar", "tiempo", "ella", "s\u{ed}", "d\u{ed}a", "uno", "bien", "poco", "deber",
            "entonces", "poner", "cosa", "tanto", "hombre", "parecer", "nuestro", "tan", "donde",
            "ahora", "parte", "despu\u{e9}s", "vida", "quedar", "siempre", "creer", "hablar",
            "llevar", "dejar", "nada", "cada", "seguir", "menos", "nuevo", "encontrar",
            "verdad", "libertad", "medios", "gobierno", "noticias", "censura", "mundo",
        ],
        Lang::It => &[
            "il", "di", "che", "e", "la", "per", "un", "in", "essere", "mi", "con", "non", "si",
            "ti", "lo", "le", "ci", "avere", "ma", "io", "una", "su", "questo", "qui", "hai",
            "del", "tu", "bene", "tutto", "della", "come", "te", "sono", "cosa", "se", "era",
            "quando", "anche", "ora", "pi\u{f9}", "molto", "grazie", "senza", "cos\u{ec}",
            "gli", "uomo", "gi\u{e0}", "tempo", "vita", "mai", "sempre", "verit\u{e0}",
            "libert\u{e0}", "governo", "notizie", "censura", "mondo", "grande", "piccolo",
            "parlare", "pensare", "credere", "vero", "falso", "giorno", "paese", "popolo",
            "perch\u{e9}", "dopo", "prima", "ancora", "allora", "fare", "dire", "vedere",
            "sapere", "oggi", "contro", "stato", "nostro", "loro",
        ],
        Lang::Unknown => &[],
    }
}

/// A trained trigram naive-Bayes model.
#[derive(Debug, Clone)]
pub struct LangModel {
    // log P(trigram | lang) tables, Laplace-smoothed.
    tables: Vec<(Lang, HashMap<String, f64>, f64)>, // (lang, logp per gram, default logp)
    /// Union of grams known to any language. Grams outside it (slang,
    /// handles, the synthetic marker vocabulary) carry no language signal
    /// and are skipped — otherwise out-of-vocabulary mass would bias
    /// classification toward whichever language has the smallest profile.
    known: std::collections::HashSet<String>,
}

impl LangModel {
    /// Train from the embedded seed vocabularies.
    ///
    /// Smoothing is *interpolated with a shared uniform background*
    /// (`p = (1-α)·freq + α/|union|`) rather than per-language Laplace:
    /// with Laplace, a language with a smaller profile has a smaller
    /// denominator, so grams unknown to *every* language — and grams known
    /// only to another language — would systematically vote for the
    /// smallest profile. A shared background makes "unknown here" cost the
    /// same under every language.
    pub fn train() -> Self {
        let mut raw: Vec<(Lang, HashMap<String, u32>, u32)> = Vec::new();
        let mut union: std::collections::HashSet<String> = std::collections::HashSet::new();
        for &lang in &Lang::ALL {
            let mut counts: HashMap<String, u32> = HashMap::new();
            let mut total = 0u32;
            for w in profile_words(lang) {
                for g in char_ngrams(w, 3) {
                    union.insert(g.clone());
                    *counts.entry(g).or_insert(0) += 1;
                    total += 1;
                }
            }
            raw.push((lang, counts, total));
        }
        const ALPHA: f64 = 1e-3;
        let background = ALPHA / union.len().max(1) as f64;
        let default = background.ln();
        let tables = raw
            .into_iter()
            .map(|(lang, counts, total)| {
                let logp: HashMap<String, f64> = counts
                    .into_iter()
                    .map(|(g, c)| {
                        let freq = c as f64 / total.max(1) as f64;
                        (g, ((1.0 - ALPHA) * freq + background).ln())
                    })
                    .collect();
                (lang, logp, default)
            })
            .collect();
        Self { tables, known: union }
    }

    /// Classify `text`. Returns `Unknown` for text with no letters.
    pub fn classify(&self, text: &str) -> Lang {
        let lower = text.to_lowercase();
        if !lower.chars().any(|c| c.is_alphabetic()) {
            return Lang::Unknown;
        }
        // Score per word with the same boundary padding used in training,
        // so grams spanning spaces never occur.
        let words: Vec<&str> = lower
            .split(|c: char| !c.is_alphabetic() && c != '\'')
            .filter(|w| !w.is_empty())
            .collect();
        let grams: Vec<String> = words
            .iter()
            .flat_map(|w| char_ngrams(w, 3))
            .filter(|g| self.known.contains(g))
            .collect();
        if grams.is_empty() {
            return Lang::Unknown;
        }
        let mut best = (Lang::Unknown, f64::NEG_INFINITY);
        for (lang, table, default) in &self.tables {
            let score: f64 = grams
                .iter()
                .map(|g| table.get(g).copied().unwrap_or(*default))
                .sum();
            if score > best.1 {
                best = (*lang, score);
            }
        }
        best.0
    }
}

static MODEL: OnceLock<LangModel> = OnceLock::new();

/// Classify with a lazily-trained shared model.
pub fn detect(text: &str) -> Lang {
    MODEL.get_or_init(LangModel::train).classify(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_english() {
        assert_eq!(detect("this is just the truth about free speech and the media"), Lang::En);
    }

    #[test]
    fn detects_german() {
        assert_eq!(
            detect("die wahrheit \u{fc}ber die medien und die regierung in deutschland"),
            Lang::De
        );
    }

    #[test]
    fn detects_french() {
        assert_eq!(detect("la v\u{e9}rit\u{e9} sur les m\u{e9}dias et le gouvernement"), Lang::Fr);
    }

    #[test]
    fn detects_spanish() {
        assert_eq!(detect("la verdad sobre los medios y el gobierno de nuestro mundo"), Lang::Es);
    }

    #[test]
    fn detects_italian() {
        assert_eq!(detect("la verit\u{e0} sul governo e sulle notizie del nostro paese"), Lang::It);
    }

    #[test]
    fn degenerate_input_is_unknown() {
        assert_eq!(detect(""), Lang::Unknown);
        assert_eq!(detect("!!! 123 ..."), Lang::Unknown);
    }

    #[test]
    fn seed_vocabularies_nonempty_and_distinct() {
        for &l in &Lang::ALL {
            assert!(seed_words(l).len() >= 70, "{l:?} vocabulary too small");
        }
        assert!(seed_words(Lang::Unknown).is_empty());
    }

    #[test]
    fn bulk_accuracy_on_seed_sentences() {
        // Build sentences from each language's own seed words; the model
        // must get the overwhelming majority right.
        let model = LangModel::train();
        let mut correct = 0;
        let mut total = 0;
        for &lang in &Lang::ALL {
            let words = seed_words(lang);
            for start in (0..words.len().saturating_sub(8)).step_by(8) {
                let sentence = words[start..start + 8].join(" ");
                total += 1;
                if model.classify(&sentence) == lang {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "seed-sentence accuracy {acc}");
    }
}
