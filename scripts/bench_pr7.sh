#!/usr/bin/env bash
# Event-driven transport bench: warmed loadgen regimes on the Dissenter
# front, a pipelined echo phase measuring the reactor transport itself,
# and a 10k-connection keep-alive soak with an RSS ceiling — emitted as
# BENCH_PR7.json in the repo root. The transport binary self-validates:
# it exits nonzero unless no request failed, cached beats uncached on
# throughput AND p99, the pool recorded reuse, the pipelined phase
# clears 5x the PR5 blocking-transport baseline (12,506 req/s), and the
# soak's peak RSS stays under the ceiling.
#
# The soak holds 10k sockets in the server process and another 10k in a
# re-exec'd client subprocess: both need `ulimit -n` comfortably above
# the connection count (CI raises it to 20000).
#
# Usage: scripts/bench_pr7.sh [extra transport args, e.g. --conns 1000]
set -euo pipefail
cd "$(dirname "$0")/.."

soft_limit="$(ulimit -n)"
if [ "$soft_limit" != "unlimited" ] && [ "$soft_limit" -lt 16384 ]; then
    ulimit -n 16384 2>/dev/null || {
        echo "bench_pr7: ulimit -n is $soft_limit; need >=16384 for the 10k-conn soak" >&2
        exit 1
    }
fi

cargo run --release -p bench --bin transport -- --out BENCH_PR7.json "$@"

# The artifact must parse and carry the headline sections.
python3 - <<'EOF'
import json
with open("BENCH_PR7.json") as f:
    report = json.load(f)
for key in ("baseline_uncached_req_per_sec", "loadgen", "pool", "transport", "soak"):
    assert key in report, f"BENCH_PR7.json missing {key!r}"
lg = report["loadgen"]
for regime in ("uncached", "cached"):
    for key in ("requests", "failures", "req_per_sec", "p50_us", "p99_us"):
        assert key in lg[regime], f"BENCH_PR7.json missing loadgen.{regime}.{key}"
    assert lg[regime]["failures"] == 0, f"{regime} regime had failures"
assert lg["cached"]["req_per_sec"] > lg["uncached"]["req_per_sec"], "cached did not beat uncached"
assert lg["cached"]["p99_us"] <= lg["uncached"]["p99_us"] * 1.10, \
    f"cached p99 {lg['cached']['p99_us']} us > uncached {lg['uncached']['p99_us']} us"
pool = report["pool"]
assert pool["reuse"] > 0, "pool recorded no connection reuse"
# Every request is one pool acquire (open or reuse), plus one extra open
# per transparent retry when the server retires a keep-alive connection
# at its per-connection request cap — a ~0.1% overhead, not more.
expected = (lg["uncached"]["requests"] + lg["cached"]["requests"]
            + 2 * lg["threads"] * lg["warmup_per_thread"])
acquires = pool["open"] + pool["reuse"]
assert expected <= acquires <= expected * 1.01, \
    f"pool opens+reuses {acquires} do not cover the {expected}-request load"
tr = report["transport"]
assert tr["summary"]["failures"] == 0, "pipelined phase had failures"
assert tr["speedup_vs_baseline"] >= 5.0, \
    f"transport speedup {tr['speedup_vs_baseline']:.2f}x < 5x baseline"
soak = report["soak"]
assert soak["ok"] is True, f"soak failed: {soak.get('error')}"
assert soak["requests"] == soak["conns"] * soak["rounds"], "soak request accounting is off"
assert soak["rss_peak_mb"] <= soak["rss_ceiling_mb"], \
    f"soak peak RSS {soak['rss_peak_mb']:.1f} MB over the {soak['rss_ceiling_mb']} MB ceiling"
print("BENCH_PR7.json OK:",
      f"transport {tr['summary']['req_per_sec']:.0f} req/s"
      f" ({tr['speedup_vs_baseline']:.1f}x baseline),",
      f"loadgen p99 {lg['uncached']['p99_us']} -> {lg['cached']['p99_us']} us,",
      f"soak {soak['conns']} conns peak RSS {soak['rss_peak_mb']:.1f} MB")
EOF
