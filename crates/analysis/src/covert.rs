//! Covert-channel candidate detection — §6's future-work direction made
//! concrete.
//!
//! "Any URL is a potential anchor for a Dissenter comment thread … The
//! URL need not exist, can use any arbitrary scheme, and could be shared
//! among users wishing to engage in a hidden conversation." The paper
//! could not separate dead links from deliberately fictitious anchors;
//! this module implements the signals it suggests, plus two it enables:
//!
//! * **non-web anchors** — browser-internal and `file:` URLs can never be
//!   reached by other visitors, so conversation there has no "content"
//!   being discussed;
//! * **closed participant sets** — a thread where a small fixed group
//!   exchanges many messages (high comments-per-author, few authors,
//!   heavy reply chaining) looks like messaging, not commentary;
//! * **shadow-only threads** — every comment NSFW/offensive-labeled:
//!   invisible to all default viewers.

use crate::url::ParsedUrl;
use crawler::store::{CrawlStore, ShadowLabel};
use ids::ObjectId;
use std::collections::{HashMap, HashSet};

/// Why a thread was flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CovertSignal {
    /// Anchor is a browser-internal or local-filesystem URL.
    NonWebAnchor,
    /// ≥ `min_messages` comments from ≤ `max_authors` authors with heavy
    /// back-and-forth replying.
    ClosedConversation,
    /// Every comment on the thread is shadow-labeled.
    ShadowOnly,
}

/// A flagged thread.
#[derive(Debug, Clone)]
pub struct CovertCandidate {
    /// Thread id.
    pub url_id: ObjectId,
    /// The anchor URL.
    pub url: String,
    /// Triggered signals.
    pub signals: Vec<CovertSignal>,
    /// Comment count.
    pub comments: usize,
    /// Distinct authors.
    pub authors: usize,
    /// Fraction of comments that are replies.
    pub reply_fraction: f64,
}

/// Detection thresholds.
#[derive(Debug, Clone, Copy)]
pub struct CovertConfig {
    /// Minimum messages for the closed-conversation signal.
    pub min_messages: usize,
    /// Maximum participants for the closed-conversation signal.
    pub max_authors: usize,
    /// Minimum reply fraction for the closed-conversation signal.
    pub min_reply_fraction: f64,
}

impl Default for CovertConfig {
    fn default() -> Self {
        Self { min_messages: 6, max_authors: 3, min_reply_fraction: 0.5 }
    }
}

/// Scan a crawl for covert-channel candidates, most suspicious (most
/// signals, then most comments) first.
pub fn detect_covert_channels(store: &CrawlStore, cfg: CovertConfig) -> Vec<CovertCandidate> {
    #[derive(Default)]
    struct ThreadStats {
        comments: usize,
        replies: usize,
        authors: HashSet<ObjectId>,
        all_shadow: bool,
        any: bool,
    }
    let mut stats: HashMap<ObjectId, ThreadStats> = HashMap::new();
    for c in store.comments.values() {
        let s = stats.entry(c.url_id).or_default();
        if !s.any {
            s.all_shadow = true;
            s.any = true;
        }
        s.comments += 1;
        if c.parent.is_some() {
            s.replies += 1;
        }
        s.authors.insert(c.author_id);
        if c.label == ShadowLabel::Standard {
            s.all_shadow = false;
        }
    }

    let mut out = Vec::new();
    for (url_id, url) in &store.urls {
        let Some(s) = stats.get(url_id) else { continue };
        let mut signals = Vec::new();
        let non_web = match ParsedUrl::parse(&url.url) {
            Some(p) => !matches!(p.scheme.as_str(), "http" | "https"),
            None => true,
        };
        if non_web {
            signals.push(CovertSignal::NonWebAnchor);
        }
        let reply_fraction = s.replies as f64 / s.comments.max(1) as f64;
        if s.comments >= cfg.min_messages
            && s.authors.len() <= cfg.max_authors
            && s.authors.len() >= 2
            && reply_fraction >= cfg.min_reply_fraction
        {
            signals.push(CovertSignal::ClosedConversation);
        }
        if s.all_shadow && s.comments >= 2 {
            signals.push(CovertSignal::ShadowOnly);
        }
        if !signals.is_empty() {
            out.push(CovertCandidate {
                url_id: *url_id,
                url: url.url.clone(),
                signals,
                comments: s.comments,
                authors: s.authors.len(),
                reply_fraction,
            });
        }
    }
    // The url_id tiebreak makes the order total even if two candidates
    // ever shared a URL string — candidates arrive in hash-map order, so
    // any tie left unresolved here would vary run to run.
    out.sort_by(|a, b| {
        b.signals
            .len()
            .cmp(&a.signals.len())
            .then(b.comments.cmp(&a.comments))
            .then(a.url.cmp(&b.url))
            .then(a.url_id.cmp(&b.url_id))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crawler::store::{CrawledComment, CrawledUrl};
    use ids::{EntityKind, ObjectIdGen};

    struct Builder {
        store: CrawlStore,
        ug: ObjectIdGen,
        cg: ObjectIdGen,
        ag: ObjectIdGen,
    }

    impl Builder {
        fn new() -> Self {
            Self {
                store: CrawlStore::default(),
                ug: ObjectIdGen::new(EntityKind::CommentUrl, 1),
                cg: ObjectIdGen::new(EntityKind::Comment, 2),
                ag: ObjectIdGen::new(EntityKind::Author, 3),
            }
        }

        fn thread(&mut self, url: &str) -> ObjectId {
            let id = self.ug.next(10);
            self.store.urls.insert(
                id,
                CrawledUrl {
                    id,
                    url: url.into(),
                    title: String::new(),
                    description: String::new(),
                    upvotes: 0,
                    downvotes: 0,
                    declared_comment_count: 0,
                },
            );
            id
        }

        fn author(&mut self) -> ObjectId {
            self.ag.next(5)
        }

        fn comment(
            &mut self,
            url: ObjectId,
            author: ObjectId,
            parent: Option<ObjectId>,
            label: ShadowLabel,
        ) -> ObjectId {
            let id = self.cg.next(20);
            self.store.comments.insert(
                id,
                CrawledComment {
                    id,
                    url_id: url,
                    author_id: author,
                    parent,
                    text: "msg".into(),
                    created_at: 20,
                    label,
                },
            );
            id
        }
    }

    #[test]
    fn flags_non_web_anchor() {
        let mut b = Builder::new();
        let t = b.thread("chrome://secret/");
        let a = b.author();
        b.comment(t, a, None, ShadowLabel::Standard);
        let found = detect_covert_channels(&b.store, CovertConfig::default());
        assert_eq!(found.len(), 1);
        assert!(found[0].signals.contains(&CovertSignal::NonWebAnchor));
    }

    #[test]
    fn flags_closed_conversation() {
        let mut b = Builder::new();
        let t = b.thread("https://dead.example/page");
        let (a1, a2) = (b.author(), b.author());
        let mut prev = b.comment(t, a1, None, ShadowLabel::Standard);
        for i in 0..7 {
            let who = if i % 2 == 0 { a2 } else { a1 };
            prev = b.comment(t, who, Some(prev), ShadowLabel::Standard);
        }
        let found = detect_covert_channels(&b.store, CovertConfig::default());
        assert_eq!(found.len(), 1);
        assert!(found[0].signals.contains(&CovertSignal::ClosedConversation));
        assert!(found[0].reply_fraction > 0.8);
    }

    #[test]
    fn flags_shadow_only_thread() {
        let mut b = Builder::new();
        let t = b.thread("https://x.example/");
        let a = b.author();
        b.comment(t, a, None, ShadowLabel::Nsfw);
        b.comment(t, a, None, ShadowLabel::Both);
        let found = detect_covert_channels(&b.store, CovertConfig::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].signals, vec![CovertSignal::ShadowOnly]);
    }

    #[test]
    fn normal_threads_not_flagged() {
        let mut b = Builder::new();
        let t = b.thread("https://news.example/story");
        for _ in 0..10 {
            let a = b.author();
            b.comment(t, a, None, ShadowLabel::Standard);
        }
        assert!(detect_covert_channels(&b.store, CovertConfig::default()).is_empty());
    }

    #[test]
    fn multi_signal_threads_rank_first() {
        let mut b = Builder::new();
        // Covert messaging on a chrome:// anchor, shadow-labeled.
        let t1 = b.thread("chrome://meet/");
        let (a1, a2) = (b.author(), b.author());
        let mut prev = b.comment(t1, a1, None, ShadowLabel::Nsfw);
        for i in 0..6 {
            let who = if i % 2 == 0 { a2 } else { a1 };
            prev = b.comment(t1, who, Some(prev), ShadowLabel::Nsfw);
        }
        // Plain dead-scheme thread.
        let t2 = b.thread("file:///C:/doc.txt");
        let a = b.author();
        b.comment(t2, a, None, ShadowLabel::Standard);
        let found = detect_covert_channels(&b.store, CovertConfig::default());
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].url, "chrome://meet/");
        assert_eq!(found[0].signals.len(), 3);
    }

    #[test]
    fn single_author_monologue_is_not_closed_conversation() {
        let mut b = Builder::new();
        let t = b.thread("https://blog.example/");
        let a = b.author();
        let mut prev = b.comment(t, a, None, ShadowLabel::Standard);
        for _ in 0..8 {
            prev = b.comment(t, a, Some(prev), ShadowLabel::Standard);
        }
        let found = detect_covert_channels(&b.store, CovertConfig::default());
        assert!(found.is_empty(), "one voice is a thread, not a channel");
    }
}
