//! Text normalization applied before featurization (§3.5.3: "cleaned and
//! stemmed word tokens").

use crate::tokenize::tokenize;

/// Normalize a comment for feature extraction: tokenize (lowercasing,
/// dropping URLs/mentions/punctuation), collapse elongated letters
/// ("sooooo" → "soo"), and drop purely numeric tokens.
pub fn clean_text(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !t.chars().all(|c| c.is_ascii_digit()))
        .map(|t| collapse_elongation(&t))
        .collect()
}

/// Collapse runs of 3+ identical letters down to 2 — the standard
/// social-media normalization for "haaaaate"-style emphasis (and the 45k
/// repetitions of "ha" in the paper's longest comment).
pub fn collapse_elongation(token: &str) -> String {
    let mut out = String::with_capacity(token.len());
    let mut prev: Option<char> = None;
    let mut run = 0;
    for c in token.chars() {
        if Some(c) == prev {
            run += 1;
        } else {
            run = 1;
            prev = Some(c);
        }
        if run <= 2 {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapses_elongation() {
        assert_eq!(collapse_elongation("sooooo"), "soo");
        assert_eq!(collapse_elongation("hate"), "hate");
        assert_eq!(collapse_elongation("aabbcc"), "aabbcc");
        assert_eq!(collapse_elongation(""), "");
    }

    #[test]
    fn clean_drops_numbers_and_urls() {
        let t = clean_text("I rate this 10 https://example.com haaaaate it");
        assert_eq!(t, vec!["i", "rate", "this", "haate", "it"]);
    }

    #[test]
    fn clean_empty() {
        assert!(clean_text("").is_empty());
        assert!(clean_text("12345 999").is_empty());
    }
}
