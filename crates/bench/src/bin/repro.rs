//! The reproduction harness: regenerate any table or figure of the paper.
//!
//! ```text
//! repro [--scale small|medium|paper|<f64>] [--seed N] [--skip-svm]
//!       [--export <dir>] [--save-crawl <dir>] [all|<experiment-id>…]
//! repro --list
//! ```
//!
//! Runs the full pipeline (generate → serve over loopback HTTP → crawl →
//! classify → analyze) once, then prints the requested artifacts.

use bench::parse_scale;
use dissenter_core::experiments::{by_id, EXPERIMENTS};
use dissenter_core::{render, run_study, Study};

fn usage() -> ! {
    eprintln!("usage: repro [--scale small|medium|paper|<f64>] [--seed N] [--skip-svm] [--export <dir>] [--save-crawl <dir>] [all|<id>...]");
    eprintln!("       repro --list");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut builder =
        dissenter_core::Study::builder().scale(synth::config::Scale::Custom(1.0 / 32.0));
    let mut wanted: Vec<String> = Vec::new();
    let mut export_dir: Option<std::path::PathBuf> = None;
    let mut save_crawl: Option<std::path::PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{:<10} {}", e.id, e.artifact);
                }
                return;
            }
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                builder = builder.scale(parse_scale(&v).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                }));
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                builder = builder.seed(v.parse().unwrap_or_else(|_| usage()));
            }
            "--skip-svm" => builder = builder.svm(false),
            "--export" => {
                let v = args.next().unwrap_or_else(|| usage());
                export_dir = Some(std::path::PathBuf::from(v));
            }
            "--save-crawl" => {
                let v = args.next().unwrap_or_else(|| usage());
                save_crawl = Some(std::path::PathBuf::from(v));
            }
            other if other.starts_with('-') => usage(),
            other => wanted.push(other.to_owned()),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".into());
    }
    let cfg = builder.build().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    for w in &wanted {
        if w != "all" && by_id(w).is_none() {
            eprintln!("unknown experiment id {w:?}; try --list");
            std::process::exit(2);
        }
    }

    eprintln!(
        "generating world (scale factor {:.4}, seed {}) and crawling…",
        cfg.world.scale.factor(),
        cfg.world.seed
    );
    let start = std::time::Instant::now();
    let study = run_study(&cfg);
    eprintln!(
        "pipeline complete in {:.1}s ({} comments crawled)",
        start.elapsed().as_secs_f64(),
        study.report.overview.comments
    );

    for w in wanted {
        if w == "all" {
            println!("{}", render::full(&study));
        } else {
            println!("{}", render_one(&study, &w));
        }
    }

    if let Some(dir) = export_dir {
        match analysis::export::export_csv(&study.report, &dir) {
            Ok(files) => eprintln!("exported {} CSV series to {}", files.len(), dir.display()),
            Err(e) => {
                eprintln!("export failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(dir) = save_crawl {
        match crawler::persist::save(&study.store, &dir) {
            Ok(()) => eprintln!("crawl mirror saved to {}", dir.display()),
            Err(e) => {
                eprintln!("crawl save failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn render_one(study: &Study, id: &str) -> String {
    match id {
        "overview" => render::overview(study),
        "fig2" => render::fig2(study),
        "fig3" => render::fig3(study),
        "table1" => render::table1(study),
        "table2" => render::table2(study),
        "urls" => render::urls(study),
        "youtube" => render::youtube(study),
        "languages" => render::languages(study),
        "fig4" => render::fig4(study),
        "fig5" => render::fig5(study),
        "fig6" => render::fig6_table3(study),
        "fig7" => render::fig7(study),
        "fig8" => render::fig8(study),
        "fig9" => render::fig9_core(study),
        "svm" => render::svm(study),
        "covert" => render::covert(study),
        "runstats" => render::runstats(study),
        other => format!("(no renderer for {other})"),
    }
}
