//! Chaos suite: the full §3 crawl against every fault class the injector
//! can produce, alone and combined.
//!
//! The contract under test: a crawl through a faulty network must
//! reconstruct the *identical* mirror a fault-free crawl produces —
//! equality is checked byte-for-byte on the persisted JSONL archive,
//! which (deliberately) excludes run statistics, so "identical modulo
//! retry/dead-letter accounting" is exactly what the comparison says.
//! When the retry budget is too small to ride the faults out, the crawl
//! must still terminate, and every logical fetch must be accounted for:
//! per phase, `attempted == succeeded + dead_lettered`.
//!
//! Determinism notes: the crawl runs with one worker so the request
//! order — and therefore the server's seeded fault sequence — is fixed.
//! For equivalence runs the client timeout (50 ms) sits well under the
//! stall duration (80 ms) so a slow-loris stall always times out, and
//! well above loopback latency so a healthy response rarely does (and a
//! spurious timeout is just one more recoverable fault). The bit-exact
//! replay test is stricter: it excludes stalls and raises the timeout
//! so no wall-clock race can perturb the seeded fault stream.

use crawler::{CrawlStore, Crawler, Endpoints};
use httpnet::{FaultConfig, ServerConfig};
use platform::World;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use synth::config::Scale;
use synth::WorldConfig;
use webfront::SimServices;

fn world() -> Arc<World> {
    static W: OnceLock<Arc<World>> = OnceLock::new();
    W.get_or_init(|| {
        let cfg = WorldConfig { scale: Scale::Custom(0.002), ..WorldConfig::small() };
        let (world, _) = synth::generate(&cfg);
        Arc::new(world)
    })
    .clone()
}

struct Knobs {
    retries: usize,
    retry_budget: usize,
    breaker_threshold: usize,
    timeout: Duration,
}

/// Generous knobs for equivalence runs: enough retries that the chance
/// of any logical fetch exhausting them is negligible.
fn generous() -> Knobs {
    Knobs {
        retries: 8,
        retry_budget: 100_000,
        breaker_threshold: 1_000_000,
        timeout: Duration::from_millis(50),
    }
}

fn crawl_with(faults: FaultConfig, knobs: Knobs) -> CrawlStore {
    let server_cfg = ServerConfig { workers: 8, queue: 256, faults, ..Default::default() };
    let services = SimServices::start(world(), server_cfg).expect("services");
    let mut crawler = Crawler::new(Endpoints {
        dissenter: services.dissenter.addr(),
        gab: services.gab.addr(),
        reddit: services.reddit.addr(),
        youtube: services.youtube.addr(),
    });
    crawler.config.workers = 1; // deterministic request order
    crawler.config.retries = knobs.retries;
    crawler.config.backoff = Duration::from_millis(1);
    crawler.config.timeout = knobs.timeout;
    crawler.config.enum_gap_tolerance = 400;
    crawler.config.retry_budget = knobs.retry_budget;
    crawler.config.breaker_threshold = knobs.breaker_threshold;
    let store = crawler.full_crawl();
    std::mem::forget(services);
    store
}

/// Persist `store` and return the archive as (file name, bytes) pairs.
fn persist_bytes(store: &CrawlStore) -> Vec<(&'static str, Vec<u8>)> {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "chaos-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    crawler::persist::save(store, &dir).expect("save");
    let out = crawler::persist::FILES
        .iter()
        .map(|f| (*f, std::fs::read(dir.join(f)).expect("read")))
        .collect();
    std::fs::remove_dir_all(&dir).ok();
    out
}

fn baseline() -> &'static Vec<(&'static str, Vec<u8>)> {
    static B: OnceLock<Vec<(&'static str, Vec<u8>)>> = OnceLock::new();
    B.get_or_init(|| {
        let store = crawl_with(FaultConfig::none(), generous());
        assert!(store.dead_letters().is_empty(), "fault-free crawl must not dead-letter");
        persist_bytes(&store)
    })
}

/// Crawl under `faults` and require the persisted mirror to match the
/// fault-free baseline byte-for-byte.
fn assert_equivalent(faults: FaultConfig) {
    let store = crawl_with(faults, generous());
    let dead = store.dead_letters();
    assert!(
        dead.is_empty(),
        "equivalence run must recover every fetch; dead letters: {:?}",
        &dead[..dead.len().min(5)]
    );
    let got = persist_bytes(&store);
    for ((name, want), (_, have)) in baseline().iter().zip(&got) {
        assert_eq!(want, have, "{name} differs from fault-free baseline");
    }
}

#[test]
fn recovers_from_dropped_connections() {
    assert_equivalent(FaultConfig { drop_prob: 0.08, seed: 11, ..FaultConfig::none() });
}

#[test]
fn recovers_from_injected_500s() {
    assert_equivalent(FaultConfig { error_prob: 0.08, seed: 12, ..FaultConfig::none() });
}

#[test]
fn recovers_from_truncated_bodies() {
    assert_equivalent(FaultConfig { truncate_prob: 0.08, seed: 13, ..FaultConfig::none() });
}

#[test]
fn recovers_from_midline_resets() {
    assert_equivalent(FaultConfig { reset_prob: 0.08, seed: 14, ..FaultConfig::none() });
}

#[test]
fn recovers_from_slow_loris_stalls() {
    assert_equivalent(FaultConfig {
        stall_prob: 0.02,
        stall: Duration::from_millis(80), // > the 50 ms client timeout
        seed: 15,
        ..FaultConfig::none()
    });
}

#[test]
fn recovers_from_malformed_status_lines() {
    assert_equivalent(FaultConfig { malformed_prob: 0.08, seed: 16, ..FaultConfig::none() });
}

#[test]
fn recovers_from_429_throttling() {
    assert_equivalent(FaultConfig {
        rate_limit_prob: 0.06,
        retry_after: Duration::from_millis(5),
        seed: 17,
        ..FaultConfig::none()
    });
}

#[test]
fn recovers_from_503_unavailability() {
    assert_equivalent(FaultConfig {
        unavailable_prob: 0.08,
        retry_after: Duration::from_millis(5),
        seed: 18,
        ..FaultConfig::none()
    });
}

/// A fast storm: every fault class at once, with the slow knobs turned
/// down so the suite stays quick (stall still exceeds the client timeout).
fn fast_storm(seed: u64) -> FaultConfig {
    FaultConfig {
        stall: Duration::from_millis(80),
        retry_after: Duration::from_millis(5),
        ..FaultConfig::storm(seed)
    }
}

#[test]
fn recovers_from_the_combined_storm() {
    assert_equivalent(fast_storm(1970));
}

#[test]
fn storm_with_tiny_budget_terminates_and_accounts_for_every_fetch() {
    let store = crawl_with(
        fast_storm(7),
        Knobs {
            retries: 2,
            retry_budget: 5,
            breaker_threshold: 5,
            timeout: Duration::from_millis(50),
        },
    );
    // Every logical fetch ends in exactly one bucket.
    for (phase, snap) in store.stats.phase_snapshots() {
        assert_eq!(
            snap.attempted,
            snap.succeeded + snap.dead_lettered,
            "{}: attempted must equal succeeded + dead_lettered ({snap:?})",
            phase.name()
        );
    }
    let dead = store.dead_letters();
    assert!(!dead.is_empty(), "a storm this heavy on a 5-retry budget must dead-letter");
    for d in &dead {
        assert!(!d.target.is_empty(), "dead letter must name its target");
        assert!(!d.cause.is_empty(), "dead letter must name its cause");
    }
    // The budget is tiny, so most losses cite it...
    assert!(dead.iter().any(|d| d.cause == "retry budget exhausted"));
    // ...and failure streaks long enough to open the breaker are certain
    // at this fault rate, so fast-failed fetches appear too.
    assert!(dead.iter().any(|d| d.cause == "circuit open"));
    // The coarse counters stay coherent with the per-phase view.
    let total_dead: u64 =
        store.stats.phase_snapshots().iter().map(|(_, s)| s.dead_lettered).sum();
    assert_eq!(total_dead as usize, dead.len());
}

#[test]
fn parallel_storm_keeps_accounting_and_metrics_coherent() {
    // Four workers per phase racing through a storm: the accounting
    // invariant must hold under real `parallel_fetch` concurrency, and
    // the observability registry must agree exactly with the store's own
    // counters — both sides count the same logical events, just from
    // different modules.
    let server_cfg =
        ServerConfig { workers: 8, queue: 256, faults: fast_storm(23), ..Default::default() };
    let services = SimServices::start(world(), server_cfg).expect("services");
    let mut crawler = Crawler::new(Endpoints {
        dissenter: services.dissenter.addr(),
        gab: services.gab.addr(),
        reddit: services.reddit.addr(),
        youtube: services.youtube.addr(),
    });
    crawler.config.workers = 4;
    crawler.config.retries = 2;
    crawler.config.backoff = Duration::from_millis(1);
    crawler.config.timeout = Duration::from_millis(50);
    crawler.config.enum_gap_tolerance = 400;
    crawler.config.retry_budget = 40;
    crawler.config.breaker_threshold = 5;
    let store = crawler.full_crawl();
    let snap = crawler.metrics.snapshot();
    std::mem::forget(services);

    let mut any_dead = 0u64;
    for (phase, stats) in store.stats.phase_snapshots() {
        assert_eq!(
            stats.attempted,
            stats.succeeded + stats.dead_lettered,
            "{}: every fetch ends in exactly one bucket under concurrency ({stats:?})",
            phase.name()
        );
        let counter = |suffix: &str| {
            snap.counter(&format!("crawl.{}.{suffix}", phase.name())).unwrap_or(0)
        };
        assert_eq!(counter("attempted"), stats.attempted, "{} attempted", phase.name());
        assert_eq!(counter("succeeded"), stats.succeeded, "{} succeeded", phase.name());
        assert_eq!(counter("retried"), stats.retried, "{} retried", phase.name());
        assert_eq!(
            counter("dead_lettered"),
            stats.dead_lettered,
            "{} dead_lettered",
            phase.name()
        );
        any_dead += stats.dead_lettered;
    }
    assert!(any_dead > 0, "a storm on a 40-retry budget must dead-letter somewhere");
    assert_eq!(
        any_dead as usize,
        store.dead_letters().len(),
        "dead-letter records match the counters"
    );
    // Every phase issues its HTTP through `PhaseRun::fetch`, which counts
    // one store-side request per wire attempt — so the per-service client
    // instrumentation must agree with the store exactly.
    let wire_requests: u64 = snap
        .counters_with_prefix("http.")
        .filter(|(name, _)| name.ends_with(".requests"))
        .map(|(_, v)| v)
        .sum();
    assert!(wire_requests > 0, "instrumented clients must count requests");
    assert_eq!(
        wire_requests,
        store.stats.requests.load(Ordering::Relaxed),
        "wire request counters must match the store's request count"
    );
}

#[test]
fn same_seed_and_config_replay_the_identical_crawl() {
    // Tight enough that dead letters certainly occur. Two pieces of the
    // matrix are deliberately out of scope here because they hinge on
    // wall-clock time rather than the seeded fault stream:
    //  - the breaker is disabled (an open breaker fast-fails until a
    //    real-time cooldown elapses);
    //  - stalls are excluded and the timeout is set far above loopback
    //    latency, so the client read timeout can never fire. A timeout
    //    is a race between the clock and the scheduler, and a spurious
    //    one triggers a transparent reconnect-and-resend that consumes
    //    an extra fault decision, shifting the whole seeded stream.
    // Everything else — drops, resets, truncations, malformed replies,
    // 500s, 429s, 503s, retry-budget exhaustion — must replay bit-exact.
    let storm = || FaultConfig { stall_prob: 0.0, ..fast_storm(42) };
    let knobs = || Knobs {
        retries: 2,
        retry_budget: 60,
        breaker_threshold: usize::MAX,
        timeout: Duration::from_secs(2),
    };
    let a = crawl_with(storm(), knobs());
    let b = crawl_with(storm(), knobs());

    for ((name, x), (_, y)) in persist_bytes(&a).iter().zip(&persist_bytes(&b)) {
        assert_eq!(x, y, "{name} differs between identical runs");
    }
    let key = |s: &CrawlStore| -> Vec<(crawler::Phase, String)> {
        s.dead_letters().into_iter().map(|d| (d.phase, d.target)).collect()
    };
    assert_eq!(key(&a), key(&b), "dead-letter sets must replay exactly");
    assert_eq!(
        a.stats.phase_snapshots(),
        b.stats.phase_snapshots(),
        "per-phase accounting must replay exactly"
    );
}
