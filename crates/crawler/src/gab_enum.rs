//! Phase 1 — exhaustive Gab ID enumeration (§3.1).
//!
//! Gab IDs are a counter from 1; the API errors on unallocated IDs. The
//! crawler sweeps blocks of IDs in parallel and stops once an entire
//! gap-tolerance window past the highest hit comes back empty. Rate-limit
//! denials (429 + `X-RateLimit-Reset`) are honored by sleeping until the
//! advertised reset, exactly as §3.4 describes.
//!
//! With a [`SweepHint`](crate::SweepHint) attached, the scan is
//! **incremental**: the known ID set is re-fetched (conditional GETs,
//! mostly `304`-cheap; deletions since the last sweep come back 404 and
//! drop out) and the block sweep starts just past the previous maximum,
//! since the monotonic allocator can only have minted new accounts
//! above it. The unallocated-ID probes below the previous maximum — the
//! one part of a re-sweep that revalidation can never make cheap,
//! because a 404 carries no validator — are skipped entirely.

use crate::resilience::{Phase, PhaseRun};
use crate::store::{CrawlStore, GabAccount};
use crate::Crawler;

const BLOCK: u64 = 4_096;

/// Run the enumeration phase into `store.gab_accounts`.
pub fn enumerate(crawler: &Crawler, store: &mut CrawlStore) {
    let run = PhaseRun::new(crawler, Phase::GabEnum);
    let fetch_ids = |ids: &[u64], store: &CrawlStore| -> Vec<GabAccount> {
        crate::parallel::parallel_fetch(
            crawler.endpoints.gab,
            ids,
            crawler.config.workers,
            &store.stats,
            |c| run.setup_client(c),
            |client, &id| {
                let resp = run.fetch(client, store, &format!("/api/v1/accounts/{id}"))?;
                if !resp.status.is_success() {
                    return None;
                }
                let v = jsonlite::parse(&resp.text()).ok()?;
                Some(GabAccount {
                    gab_id: id,
                    username: v.get("username")?.as_str()?.to_owned(),
                    created_at: v.get("created_at")?.as_str()?.to_owned(),
                    created_epoch: parse_iso_epoch(v.get("created_at")?.as_str()?).unwrap_or(0),
                    followers_count: v.get("followers_count").and_then(|x| x.as_i64()).unwrap_or(0)
                        as u64,
                    following_count: v.get("following_count").and_then(|x| x.as_i64()).unwrap_or(0)
                        as u64,
                })
            },
        )
    };

    let mut accounts: Vec<GabAccount> = Vec::new();
    let mut start: u64 = 1;
    let mut last_hit: u64 = 0;
    let mut block = BLOCK;
    if let Some(hint) = crawler.sweep_hint() {
        // Incremental: re-check the known set, then scan only the ID
        // space the allocator could have extended into. `last_hit`
        // seeds from the *surviving* known IDs (the previous maximum
        // may have been deleted since), exactly where a from-scratch
        // scan's high-water mark would stand on crossing it.
        accounts = fetch_ids(&hint.known_gab_ids, store);
        last_hit = accounts.iter().map(|a| a.gab_id).max().unwrap_or(0);
        start = hint.max_gab_id + 1;
        // Blocks sized to the expected tail (block geometry affects
        // only request batching, never the found set — see the
        // termination argument below).
        block = crawler.config.enum_gap_tolerance.clamp(512, BLOCK);
    }
    // Termination: the scan stops once a whole gap-tolerance window past
    // the highest hit is exhausted. Since consecutive allocated IDs
    // never differ by more than the tolerance, `last_hit` reaches the
    // true maximum before any stop, so every visible ID is found
    // regardless of where the blocks start or how wide they are.
    loop {
        let ids: Vec<u64> = (start..start + block).collect();
        let found = fetch_ids(&ids, store);
        if let Some(max_hit) = found.iter().map(|a| a.gab_id).max() {
            last_hit = last_hit.max(max_hit);
        }
        accounts.extend(found);
        start += block;
        if start > last_hit + crawler.config.enum_gap_tolerance {
            break;
        }
    }
    accounts.sort_by_key(|a| a.gab_id);
    store.gab_accounts = accounts;
}

/// Parse `YYYY-MM-DDTHH:MM:SSZ` into epoch seconds.
pub fn parse_iso_epoch(s: &str) -> Option<u64> {
    let bytes = s.as_bytes();
    if bytes.len() < 19 {
        return None;
    }
    let num = |range: std::ops::Range<usize>| -> Option<u64> {
        s.get(range)?.parse().ok()
    };
    let (y, mo, d) = (num(0..4)? as i64, num(5..7)? as u32, num(8..10)? as u32);
    let (h, mi, sec) = (num(11..13)?, num(14..16)?, num(17..19)?);
    if mo == 0 || mo > 12 || d == 0 || d > 31 {
        return None;
    }
    Some(ids::clock::from_ymd(y, mo, d) + h * 3600 + mi * 60 + sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso_parse_round_trip() {
        let ts = 1_551_139_200 + 3661;
        let s = ids::clock::format_datetime(ts);
        assert_eq!(parse_iso_epoch(&s), Some(ts));
    }

    #[test]
    fn iso_parse_rejects_garbage() {
        assert_eq!(parse_iso_epoch("not a date"), None);
        assert_eq!(parse_iso_epoch("2019-13-01T00:00:00Z"), None);
        assert_eq!(parse_iso_epoch(""), None);
    }
}
