//! The composed world: one user table, four services, baseline corpora.

use crate::dissenter::DissenterDb;
use crate::gab::GabDb;
use crate::model::{BaselineCorpus, User};
use crate::reddit::RedditDb;
use crate::youtube::YouTubeDb;
use ids::ObjectId;
use std::collections::HashMap;

/// The complete simulated universe the crawler measures.
///
/// Invariants:
/// * every user with `author_id = Some(..)` is a Dissenter user and appears
///   in `by_author_id`;
/// * every user is registered in [`GabDb`] under their `gab_id` **unless**
///   `gab_deleted` is set (deleted accounts vanish from the Gab API but
///   their Dissenter comments persist — §4.1.1 found ~1,300 such users);
/// * usernames are unique.
#[derive(Debug, Default, Clone)]
pub struct World {
    /// All users (Gab superset; some have Dissenter accounts).
    pub users: Vec<User>,
    /// Dissenter comment store.
    pub dissenter: DissenterDb,
    /// Gab ID space and social graph.
    pub gab: GabDb,
    /// Reddit accounts for the intersection baseline.
    pub reddit: RedditDb,
    /// YouTube content states.
    pub youtube: YouTubeDb,
    /// Table 3 baseline corpora (NY Times, Daily Mail).
    pub baselines: Vec<BaselineCorpus>,
    by_username: HashMap<String, u32>,
    by_author_id: HashMap<ObjectId, u32>,
}

impl World {
    /// An empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a user, maintaining indexes. Returns the user's index.
    /// Panics on duplicate usernames or author-ids.
    pub fn add_user(&mut self, user: User) -> u32 {
        let idx = self.users.len() as u32;
        assert!(
            self.by_username.insert(user.username.clone(), idx).is_none(),
            "duplicate username {}",
            user.username
        );
        if let Some(aid) = user.author_id {
            assert!(
                self.by_author_id.insert(aid, idx).is_none(),
                "duplicate author-id"
            );
        }
        if !user.gab_deleted {
            self.gab.register(user.gab_id, idx);
        }
        self.users.push(user);
        idx
    }

    /// Look up a user index by username.
    pub fn user_by_username(&self, username: &str) -> Option<u32> {
        self.by_username.get(username).copied()
    }

    /// Look up a user index by Dissenter author-id.
    pub fn user_by_author_id(&self, author_id: ObjectId) -> Option<u32> {
        self.by_author_id.get(&author_id).copied()
    }

    /// The user record at an index.
    pub fn user(&self, idx: u32) -> &User {
        &self.users[idx as usize]
    }

    /// Number of users (Gab universe, including deleted).
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Number of Dissenter users.
    pub fn dissenter_user_count(&self) -> usize {
        self.by_author_id.len()
    }

    /// Indexes of all Dissenter users.
    pub fn dissenter_users(&self) -> impl Iterator<Item = u32> + '_ {
        self.by_author_id.values().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{UserFlags, ViewFilters};
    use ids::{EntityKind, ObjectIdGen};

    fn user(name: &str, gab_id: u64, dissenter: bool, deleted: bool, g: &mut ObjectIdGen) -> User {
        User {
            author_id: if dissenter { Some(g.next(100)) } else { None },
            gab_id,
            username: name.into(),
            display_name: name.to_uppercase(),
            bio: String::new(),
            created_at: 100,
            flags: UserFlags::default(),
            filters: ViewFilters::default(),
            language: "en".into(),
            gab_deleted: deleted,
        }
    }

    #[test]
    fn indexes_stay_consistent() {
        let mut w = World::new();
        let mut g = ObjectIdGen::new(EntityKind::Author, 1);
        let a = w.add_user(user("a", 1, true, false, &mut g));
        let b = w.add_user(user("quiet", 2, false, false, &mut g));
        assert_eq!(w.user_by_username("a"), Some(a));
        assert_eq!(w.user_by_username("quiet"), Some(b));
        assert_eq!(w.user_count(), 2);
        assert_eq!(w.dissenter_user_count(), 1);
        let aid = w.user(a).author_id.unwrap();
        assert_eq!(w.user_by_author_id(aid), Some(a));
    }

    #[test]
    fn deleted_gab_accounts_not_in_gab_api() {
        let mut w = World::new();
        let mut g = ObjectIdGen::new(EntityKind::Author, 2);
        w.add_user(user("ghost", 7, true, true, &mut g));
        // Dissenter side still knows them…
        assert_eq!(w.dissenter_user_count(), 1);
        // …but the Gab API does not.
        assert_eq!(w.gab.user_by_gab_id(7), None);
    }

    #[test]
    #[should_panic(expected = "duplicate username")]
    fn duplicate_username_panics() {
        let mut w = World::new();
        let mut g = ObjectIdGen::new(EntityKind::Author, 3);
        w.add_user(user("dup", 1, false, false, &mut g));
        w.add_user(user("dup", 2, false, false, &mut g));
    }
}
