//! HTTP/1.1 message types and wire codecs.
//!
//! Implements the subset the system needs — GET/POST, headers,
//! Content-Length bodies — with hard caps on line length, header count,
//! and body size so a misbehaving peer cannot exhaust server memory.

use std::fmt;
use std::io::{BufRead, Write};

/// Maximum accepted request-line / header-line length in bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Maximum number of headers per message.
pub const MAX_HEADERS: usize = 100;
/// Maximum accepted body size (16 MiB — the longest real Dissenter comment
/// was >90 kB, so give generous headroom).
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// Case-insensitive header multimap preserving insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers(Vec<(String, String)>);

impl Headers {
    /// Empty header set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a header.
    pub fn add(&mut self, name: &str, value: &str) {
        self.0.push((name.to_owned(), value.to_owned()));
    }

    /// First value for `name`, case-insensitive.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// An HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method (`GET`, `POST`, …).
    pub method: String,
    /// Raw request target (path + optional query string).
    pub target: String,
    /// Headers.
    pub headers: Headers,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// A bodyless GET.
    pub fn get(target: &str) -> Self {
        Self { method: "GET".into(), target: target.into(), headers: Headers::new(), body: Vec::new() }
    }

    /// Path component (before `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or("")
    }

    /// Query-string parameter by key (first match; simple `k=v&k2=v2`
    /// parsing, no percent-decoding beyond `%2F`/`%3A` which the crawler
    /// uses for URL-in-URL parameters).
    pub fn query(&self, key: &str) -> Option<String> {
        let (_, q) = self.target.split_once('?')?;
        for pair in q.split('&') {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            if k == key {
                return Some(percent_decode(v));
            }
        }
        None
    }

    /// Cookie value by name.
    pub fn cookie(&self, name: &str) -> Option<&str> {
        let cookies = self.headers.get("cookie")?;
        for part in cookies.split(';') {
            let part = part.trim();
            let mut it = part.splitn(2, '=');
            if it.next() == Some(name) {
                return it.next();
            }
        }
        None
    }
}

/// Minimal percent-decoding (full reserved set).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            // `get` handles truncated escapes at end-of-input.
            if let Some(hex) = bytes.get(i + 1..i + 3) {
                if let Ok(v) = u8::from_str_radix(std::str::from_utf8(hex).unwrap_or("zz"), 16) {
                    out.push(v);
                    i += 3;
                    continue;
                }
            }
        }
        if bytes[i] == b'+' {
            out.push(b' ');
        } else {
            out.push(bytes[i]);
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encode for safe embedding in a query value.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Response status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status(pub u16);

impl Status {
    /// 200
    pub const OK: Status = Status(200);
    /// 304
    pub const NOT_MODIFIED: Status = Status(304);
    /// 404
    pub const NOT_FOUND: Status = Status(404);
    /// 429
    pub const TOO_MANY: Status = Status(429);
    /// 500
    pub const INTERNAL: Status = Status(500);

    /// Canonical reason phrase.
    pub fn reason(&self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            301 => "Moved Permanently",
            302 => "Found",
            304 => "Not Modified",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// 2xx?
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.0)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Headers (Content-Length is added automatically on write).
    pub headers: Headers,
    /// Body.
    pub body: Vec<u8>,
}

impl Response {
    /// Empty response with a status.
    pub fn status(status: Status) -> Self {
        Self { status, headers: Headers::new(), body: Vec::new() }
    }

    /// 200 with an HTML body.
    pub fn html(body: String) -> Self {
        let mut r = Self::status(Status::OK);
        r.headers.add("Content-Type", "text/html; charset=utf-8");
        r.body = body.into_bytes();
        r
    }

    /// 200 with a JSON body.
    pub fn json(body: String) -> Self {
        let mut r = Self::status(Status::OK);
        r.headers.add("Content-Type", "application/json");
        r.body = body.into_bytes();
        r
    }

    /// 404 with a short body (~150 bytes, like Dissenter's miss pages).
    pub fn not_found() -> Self {
        let mut r = Self::status(Status::NOT_FOUND);
        r.headers.add("Content-Type", "text/html; charset=utf-8");
        r.body = b"<html><head><title>Not Found</title></head><body><h1>404</h1><p>The page you were looking for does not exist.</p></body></html>".to_vec();
        r
    }

    /// `304 Not Modified` carrying the validator headers of the current
    /// representation. RFC 9110 §15.4.5: a 304 has no body; the headers
    /// passed in (ETag, Cache-Control, Content-Type, …) are preserved so
    /// the client can refresh its stored metadata.
    pub fn not_modified(headers: Headers) -> Self {
        let mut r = Self::status(Status::NOT_MODIFIED);
        r.headers = headers;
        r
    }

    /// Convert this response into its `304 Not Modified` form: same
    /// headers (validators preserved), empty body.
    pub fn into_not_modified(mut self) -> Self {
        self.status = Status::NOT_MODIFIED;
        self.body.clear();
        self
    }

    /// The response's strong `ETag`, if any.
    pub fn etag(&self) -> Option<&str> {
        self.headers.get("etag")
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Total serialized size in bytes (status line + headers + body) — the
    /// quantity the §3.1 account-probe inspects.
    pub fn wire_size(&self) -> usize {
        let mut buf = Vec::new();
        self.write_to(&mut buf).expect("vec write");
        buf.len()
    }

    /// Serialize to a writer (adds Content-Length and Connection headers
    /// if absent).
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write!(w, "HTTP/1.1 {}\r\n", self.status)?;
        let mut has_len = false;
        for (n, v) in self.headers.iter() {
            if n.eq_ignore_ascii_case("content-length") {
                has_len = true;
            }
            write!(w, "{n}: {v}\r\n")?;
        }
        if !has_len {
            write!(w, "Content-Length: {}\r\n", self.body.len())?;
        }
        write!(w, "\r\n")?;
        w.write_all(&self.body)
    }
}

/// Errors reading a message from the wire.
#[derive(Debug)]
pub enum WireError {
    /// Underlying IO failure (includes timeouts).
    Io(std::io::Error),
    /// Peer closed before a full message arrived.
    Eof,
    /// Malformed or over-limit message.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::Eof => f.write_str("connection closed"),
            WireError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

fn read_line<R: BufRead>(r: &mut R) -> Result<String, WireError> {
    // Scan the reader's internal buffer for the newline instead of
    // pulling one byte at a time — this is the client's hot path.
    let mut line: Vec<u8> = Vec::new();
    loop {
        let (done, used) = {
            let available = match r.fill_buf() {
                Ok(buf) => buf,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(WireError::Io(e)),
            };
            if available.is_empty() {
                if line.is_empty() {
                    return Err(WireError::Eof);
                }
                return Err(WireError::Malformed("truncated line"));
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    line.extend_from_slice(&available[..i]);
                    (true, i + 1)
                }
                None => {
                    line.extend_from_slice(available);
                    (false, available.len())
                }
            }
        };
        r.consume(used);
        if line.len() > MAX_LINE {
            return Err(WireError::Malformed("line too long"));
        }
        if done {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(String::from_utf8_lossy(&line).into_owned());
        }
    }
}

fn read_headers<R: BufRead>(r: &mut R) -> Result<Headers, WireError> {
    let mut headers = Headers::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= MAX_HEADERS {
            return Err(WireError::Malformed("too many headers"));
        }
        let mut it = line.splitn(2, ':');
        let name = it.next().unwrap_or("").trim();
        let value = it.next().ok_or(WireError::Malformed("header missing colon"))?.trim();
        if name.is_empty() {
            return Err(WireError::Malformed("empty header name"));
        }
        headers.add(name, value);
    }
}

/// Strict `Content-Length` extraction (RFC 9112 §6.2-adjacent).
///
/// `usize::from_str` accepts `+10` and surrounding unicode whitespace —
/// lenient parses like that are the classic request-smuggling foothold,
/// because two hops that disagree on the value split the byte stream
/// differently. This helper accepts ASCII digits only, and when the
/// header is repeated, all copies must agree exactly; any other shape is
/// [`WireError::Malformed`].
pub fn content_length(headers: &Headers) -> Result<Option<usize>, WireError> {
    let mut found: Option<usize> = None;
    for (name, value) in headers.iter() {
        if !name.eq_ignore_ascii_case("content-length") {
            continue;
        }
        if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
            return Err(WireError::Malformed("bad content-length"));
        }
        let len: usize =
            value.parse().map_err(|_| WireError::Malformed("bad content-length"))?;
        match found {
            Some(prev) if prev != len => {
                return Err(WireError::Malformed("conflicting content-length"))
            }
            _ => found = Some(len),
        }
    }
    Ok(found)
}

fn read_body<R: BufRead>(r: &mut R, headers: &Headers) -> Result<Vec<u8>, WireError> {
    let len: usize = match content_length(headers)? {
        None => return Ok(Vec::new()),
        Some(len) => len,
    };
    if len > MAX_BODY {
        return Err(WireError::Malformed("body too large"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Malformed("truncated body")
        } else {
            WireError::Io(e)
        }
    })?;
    Ok(body)
}

/// Read one request from a buffered stream.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, WireError> {
    let line = read_line(r)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(WireError::Malformed("empty request line"))?;
    let target = parts.next().ok_or(WireError::Malformed("missing target"))?;
    let version = parts.next().ok_or(WireError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(WireError::Malformed("unsupported version"));
    }
    let headers = read_headers(r)?;
    let body = read_body(r, &headers)?;
    Ok(Request { method: method.to_owned(), target: target.to_owned(), headers, body })
}

/// Read one response from a buffered stream.
pub fn read_response<R: BufRead>(r: &mut R) -> Result<Response, WireError> {
    let line = read_line(r)?;
    let mut parts = line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(WireError::Malformed("unsupported version"));
    }
    let code: u16 = parts
        .next()
        .ok_or(WireError::Malformed("missing status"))?
        .parse()
        .map_err(|_| WireError::Malformed("bad status code"))?;
    let headers = read_headers(r)?;
    let body = read_body(r, &headers)?;
    Ok(Response { status: Status(code), headers, body })
}

/// Serialize a request to a writer.
pub fn write_request<W: Write>(req: &Request, w: &mut W) -> std::io::Result<()> {
    write!(w, "{} {} HTTP/1.1\r\n", req.method, req.target)?;
    let mut has_len = false;
    for (n, v) in req.headers.iter() {
        if n.eq_ignore_ascii_case("content-length") {
            has_len = true;
        }
        write!(w, "{n}: {v}\r\n")?;
    }
    if !req.body.is_empty() && !has_len {
        write!(w, "Content-Length: {}\r\n", req.body.len())?;
    }
    write!(w, "\r\n")?;
    w.write_all(&req.body)
}

/// Serialize a response's status line and headers (adding
/// `Content-Length` if absent) into `buf`, leaving the body out — the
/// server sends `[head, body]` as one vectored write instead of copying
/// the body into a contiguous buffer.
pub fn serialize_response_head(resp: &Response, buf: &mut Vec<u8>) {
    use std::io::Write as _;
    // Writing into a Vec cannot fail.
    let _ = write!(buf, "HTTP/1.1 {}\r\n", resp.status);
    let mut has_len = false;
    for (n, v) in resp.headers.iter() {
        if n.eq_ignore_ascii_case("content-length") {
            has_len = true;
        }
        let _ = write!(buf, "{n}: {v}\r\n");
    }
    if !has_len {
        let _ = write!(buf, "Content-Length: {}\r\n", resp.body.len());
    }
    buf.extend_from_slice(b"\r\n");
}

/// Incremental request parse straight off a connection's read buffer.
///
/// Returns `Ok(Some((request, consumed)))` when `buf` starts with one
/// complete request (`consumed` bytes of it), `Ok(None)` when more bytes
/// are needed, and `Err` when the prefix can never become a valid
/// request (over-limit or malformed). No intermediate line buffers: the
/// head is parsed in place and only the owned `Request` fields allocate.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, WireError> {
    // --- request line ---
    let Some((line, mut pos)) = next_line(buf, 0)? else { return Ok(None) };
    let line = std::str::from_utf8(line).map_err(|_| WireError::Malformed("bad request line"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().filter(|m| !m.is_empty());
    let method = method.ok_or(WireError::Malformed("empty request line"))?;
    let target = parts.next().ok_or(WireError::Malformed("missing target"))?;
    let version = parts.next().ok_or(WireError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(WireError::Malformed("unsupported version"));
    }

    // --- headers ---
    let mut headers = Headers::new();
    loop {
        let Some((line, next)) = next_line(buf, pos)? else { return Ok(None) };
        pos = next;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(WireError::Malformed("too many headers"));
        }
        let line = String::from_utf8_lossy(line);
        let mut it = line.splitn(2, ':');
        let name = it.next().unwrap_or("").trim();
        let value = it.next().ok_or(WireError::Malformed("header missing colon"))?.trim();
        if name.is_empty() {
            return Err(WireError::Malformed("empty header name"));
        }
        headers.add(name, value);
    }

    // --- body ---
    let len = content_length(&headers)?.unwrap_or(0);
    if len > MAX_BODY {
        return Err(WireError::Malformed("body too large"));
    }
    if buf.len() < pos + len {
        return Ok(None);
    }
    let body = buf[pos..pos + len].to_vec();
    Ok(Some((
        Request { method: method.to_owned(), target: target.to_owned(), headers, body },
        pos + len,
    )))
}

/// Find the next `\n`-terminated line starting at `start`: returns the
/// line contents (trailing `\r` stripped) and the offset just past the
/// newline, or `None` when the line is still incomplete.
fn next_line(buf: &[u8], start: usize) -> Result<Option<(&[u8], usize)>, WireError> {
    let rest = &buf[start.min(buf.len())..];
    match rest.iter().position(|&b| b == b'\n') {
        Some(i) => {
            if i > MAX_LINE {
                return Err(WireError::Malformed("line too long"));
            }
            let mut line = &rest[..i];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            Ok(Some((line, start + i + 1)))
        }
        None => {
            if rest.len() > MAX_LINE {
                return Err(WireError::Malformed("line too long"));
            }
            Ok(None)
        }
    }
}

/// Format a strong entity-tag from a 64-bit content hash (`"<16 hex>"`,
/// quotes included — the wire form).
pub fn format_etag(hash: u64) -> String {
    format!("\"{hash:016x}\"")
}

/// Does an `If-None-Match` header value match `etag` (the current
/// representation's strong entity-tag, wire form with quotes)?
///
/// Implements RFC 9110 §13.1.2: `*` matches any current representation;
/// otherwise the field is a comma-separated list of entity-tags compared
/// with the *weak* comparison (a `W/` prefix on either side is ignored —
/// If-None-Match is defined to use weak comparison).
pub fn if_none_match(header: &str, etag: &str) -> bool {
    let header = header.trim();
    if header == "*" {
        return true;
    }
    let strip = |t: &str| t.trim().trim_start_matches("W/").to_owned();
    let target = strip(etag);
    header.split(',').any(|candidate| strip(candidate) == target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn round_trip_request(req: &Request) -> Request {
        let mut buf = Vec::new();
        write_request(req, &mut buf).unwrap();
        read_request(&mut BufReader::new(&buf[..])).unwrap()
    }

    #[test]
    fn request_round_trip() {
        let mut req = Request::get("/user/a?x=1&y=2");
        req.headers.add("Host", "dissenter.test");
        req.headers.add("Cookie", "session=abc; nsfw=1");
        let got = round_trip_request(&req);
        assert_eq!(got.method, "GET");
        assert_eq!(got.path(), "/user/a");
        assert_eq!(got.query("x").as_deref(), Some("1"));
        assert_eq!(got.query("z"), None);
        assert_eq!(got.cookie("session"), Some("abc"));
        assert_eq!(got.cookie("nsfw"), Some("1"));
        assert_eq!(got.cookie("missing"), None);
    }

    #[test]
    fn request_with_body_round_trip() {
        let mut req = Request::get("/submit");
        req.method = "POST".into();
        req.body = b"url=https%3A%2F%2Fexample.com".to_vec();
        let got = round_trip_request(&req);
        assert_eq!(got.body, req.body);
    }

    #[test]
    fn response_round_trip_and_wire_size() {
        let mut resp = Response::json("{\"ok\":true}".into());
        resp.headers.add("X-RateLimit-Remaining", "59");
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), resp.wire_size());
        let got = read_response(&mut BufReader::new(&buf[..])).unwrap();
        assert_eq!(got.status, Status::OK);
        assert_eq!(got.headers.get("x-ratelimit-remaining"), Some("59"));
        assert_eq!(got.text(), "{\"ok\":true}");
    }

    #[test]
    fn not_found_is_tiny() {
        // §3.1: non-existent user pages are ~150 bytes vs ≥10 kB real ones.
        let sz = Response::not_found().wire_size();
        assert!(sz < 300, "{sz}");
    }

    #[test]
    fn malformed_requests_rejected() {
        for bad in [
            "GARBAGE\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / HTTP/2.0\r\n\r\n",
            "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
        ] {
            let r = read_request(&mut BufReader::new(bad.as_bytes()));
            assert!(r.is_err(), "{bad:?}");
        }
    }

    #[test]
    fn eof_before_any_bytes_is_eof_variant() {
        let e = read_request(&mut BufReader::new(&b""[..])).unwrap_err();
        assert!(matches!(e, WireError::Eof));
    }

    #[test]
    fn oversized_body_rejected() {
        let msg = format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        let r = read_request(&mut BufReader::new(msg.as_bytes()));
        assert!(matches!(r, Err(WireError::Malformed(_))));
    }

    #[test]
    fn truncated_body_detected() {
        let msg = "GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        let r = read_request(&mut BufReader::new(msg.as_bytes()));
        assert!(matches!(r, Err(WireError::Malformed("truncated body"))));
    }

    #[test]
    fn percent_codec_round_trip() {
        let s = "https://example.com/path?a=1&b=two words";
        assert_eq!(percent_decode(&percent_encode(s)), s);
    }

    #[test]
    fn headers_case_insensitive() {
        let mut h = Headers::new();
        h.add("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
    }

    #[test]
    fn if_none_match_semantics() {
        let etag = format_etag(0xdead_beef_cafe_f00d);
        assert_eq!(etag, "\"deadbeefcafef00d\"");
        assert!(if_none_match(&etag, &etag));
        assert!(if_none_match("*", &etag));
        assert!(if_none_match(&format!("\"0000\", {etag}"), &etag), "comma list");
        assert!(if_none_match(&format!("W/{etag}"), &etag), "weak comparison");
        assert!(!if_none_match("\"0123\"", &etag));
        assert!(!if_none_match("", &etag));
    }

    #[test]
    fn not_modified_has_no_body_and_preserves_headers() {
        let mut full = Response::html("<html>big page</html>".into());
        full.headers.add("ETag", "\"abc\"");
        full.headers.add("Cache-Control", "private, max-age=0, must-revalidate");
        let nm = full.clone().into_not_modified();
        assert_eq!(nm.status, Status::NOT_MODIFIED);
        assert!(nm.body.is_empty());
        assert_eq!(nm.etag(), Some("\"abc\""));
        assert_eq!(nm.headers.get("cache-control"), full.headers.get("cache-control"));
        // And it survives the wire.
        let mut buf = Vec::new();
        nm.write_to(&mut buf).unwrap();
        let got = read_response(&mut BufReader::new(&buf[..])).unwrap();
        assert_eq!(got.status, Status::NOT_MODIFIED);
        assert!(got.body.is_empty());
        assert_eq!(got.etag(), Some("\"abc\""));
    }

    #[test]
    fn content_length_rejects_smuggling_shapes() {
        // `usize::parse` happily accepts a leading `+`; the wire must not.
        for bad in ["+10", "-1", "1 0", "0x10", "10.", "", " 10", "1e3"] {
            let mut h = Headers::new();
            h.add("Content-Length", bad);
            assert!(
                matches!(content_length(&h), Err(WireError::Malformed(_))),
                "{bad:?} must be rejected"
            );
        }
        let msg = "POST / HTTP/1.1\r\nContent-Length: +3\r\n\r\nabc";
        let r = read_request(&mut BufReader::new(msg.as_bytes()));
        assert!(matches!(r, Err(WireError::Malformed("bad content-length"))), "{r:?}");
    }

    #[test]
    fn duplicate_content_length_must_agree() {
        // Disagreeing duplicates are the request-smuggling classic: two
        // hops each believe a different body boundary.
        let msg = "POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 10\r\n\r\nabc";
        let r = read_request(&mut BufReader::new(msg.as_bytes()));
        assert!(matches!(r, Err(WireError::Malformed("conflicting content-length"))), "{r:?}");
        // Agreeing duplicates are redundant but harmless.
        let msg = "POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc";
        let req = read_request(&mut BufReader::new(msg.as_bytes())).unwrap();
        assert_eq!(req.body, b"abc");
    }

    #[test]
    fn parse_request_incremental_completion() {
        let msg = b"POST /submit HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        // Every proper prefix is Partial; the full message parses.
        for cut in 0..msg.len() {
            match parse_request(&msg[..cut]) {
                Ok(None) => {}
                other => panic!("prefix of {cut} bytes must be partial, got {other:?}"),
            }
        }
        let (req, consumed) = parse_request(msg).unwrap().expect("complete");
        assert_eq!(consumed, msg.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/submit");
        assert_eq!(req.headers.get("host"), Some("x"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn parse_request_pipelined_pair() {
        let msg = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (first, used) = parse_request(msg).unwrap().expect("first");
        assert_eq!(first.target, "/a");
        let (second, used2) = parse_request(&msg[used..]).unwrap().expect("second");
        assert_eq!(second.target, "/b");
        assert_eq!(used + used2, msg.len());
    }

    #[test]
    fn parse_request_enforces_caps_and_shape() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 10));
        assert!(matches!(
            parse_request(long.as_bytes()),
            Err(WireError::Malformed("line too long"))
        ));
        // An over-long line is rejected even before its newline arrives.
        let unterminated = "G".repeat(MAX_LINE + 10);
        assert!(matches!(
            parse_request(unterminated.as_bytes()),
            Err(WireError::Malformed("line too long"))
        ));
        assert!(parse_request(b"GET / HTTP/2.0\r\n\r\n").is_err());
        assert!(parse_request(b"GET / HTTP/1.1\r\nNoColon\r\n\r\n").is_err());
        let huge = format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(
            parse_request(huge.as_bytes()),
            Err(WireError::Malformed("body too large"))
        ));
    }

    #[test]
    fn serialize_response_head_matches_write_to() {
        let mut resp = Response::html("<p>hello</p>".into());
        resp.headers.add("ETag", "\"aa\"");
        let mut head = Vec::new();
        serialize_response_head(&resp, &mut head);
        let mut full = Vec::new();
        resp.write_to(&mut full).unwrap();
        let mut reassembled = head.clone();
        reassembled.extend_from_slice(&resp.body);
        assert_eq!(reassembled, full, "head + body must equal the streamed form");
    }

    #[test]
    fn status_properties() {
        assert!(Status::OK.is_success());
        assert!(!Status::NOT_FOUND.is_success());
        assert_eq!(Status(429).reason(), "Too Many Requests");
        assert_eq!(Status(999).reason(), "Unknown");
    }
}

#[cfg(test)]
mod limit_tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn header_count_cap_enforced() {
        let mut msg = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            msg.push_str(&format!("X-H{i}: v\r\n"));
        }
        msg.push_str("\r\n");
        let r = read_request(&mut BufReader::new(msg.as_bytes()));
        assert!(matches!(r, Err(WireError::Malformed("too many headers"))));
    }

    #[test]
    fn line_length_cap_enforced() {
        let msg = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 10));
        let r = read_request(&mut BufReader::new(msg.as_bytes()));
        assert!(matches!(r, Err(WireError::Malformed("line too long"))));
    }

    #[test]
    fn percent_decode_truncated_escape_passthrough() {
        assert_eq!(percent_decode("%"), "%");
        assert_eq!(percent_decode("%2"), "%2");
        assert_eq!(percent_decode("a%zzb"), "a%zzb");
        assert_eq!(percent_decode("%41"), "A");
        assert_eq!(percent_decode("x+y"), "x y");
    }

    #[test]
    fn query_without_value_and_empty_value() {
        let req = Request::get("/p?flag&k=&x=1");
        assert_eq!(req.query("flag").as_deref(), Some(""));
        assert_eq!(req.query("k").as_deref(), Some(""));
        assert_eq!(req.query("x").as_deref(), Some("1"));
    }
}
