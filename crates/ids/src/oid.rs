//! Dissenter 12-byte object identifiers (§2.2).
//!
//! Every Dissenter entity — user (*author-id*), URL thread
//! (*commenturl-id*), and comment/reply (*comment-id*) — carries a unique
//! 12-byte identifier rendered as 24 hexadecimal digits. The paper found the
//! first four bytes encode the entity's creation time as a big-endian Unix
//! timestamp, with additional (undeciphered) structure in the remaining
//! eight. We model those eight bytes the way MongoDB ObjectIds (the likely
//! upstream implementation) do: a 5-byte per-process random value followed
//! by a 3-byte incrementing counter, which reproduces the "not entirely
//! random, but structured" observation.

use crate::clock::Timestamp;
use crate::hex;
use std::fmt;
use std::str::FromStr;

/// Which entity family an identifier belongs to.
///
/// The wire format does not distinguish kinds; the kind is carried alongside
/// in our model to catch cross-family mix-ups at generation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityKind {
    /// A Dissenter user account (author-id).
    Author,
    /// A commented-upon URL (commenturl-id).
    CommentUrl,
    /// A comment or reply (comment-id).
    Comment,
}

/// A 12-byte Dissenter identifier.
///
/// ```
/// use ids::{EntityKind, ObjectIdGen};
/// // §2.2's example: an account created 2019-02-28T16:23:53Z gets an
/// // author-id beginning 5c780b19.
/// let mut gen = ObjectIdGen::new(EntityKind::Author, 42);
/// let id = gen.next(0x5c78_0b19);
/// assert!(id.to_hex().starts_with("5c780b19"));
/// assert_eq!(id.timestamp(), 0x5c78_0b19);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub [u8; 12]);

impl ObjectId {
    /// Construct from raw bytes.
    pub fn from_bytes(bytes: [u8; 12]) -> Self {
        Self(bytes)
    }

    /// The embedded creation timestamp (first four bytes, big-endian).
    pub fn timestamp(&self) -> Timestamp {
        u32::from_be_bytes([self.0[0], self.0[1], self.0[2], self.0[3]]) as Timestamp
    }

    /// The 5-byte process-random field.
    pub fn process_field(&self) -> [u8; 5] {
        [self.0[4], self.0[5], self.0[6], self.0[7], self.0[8]]
    }

    /// The 3-byte counter field.
    pub fn counter(&self) -> u32 {
        u32::from_be_bytes([0, self.0[9], self.0[10], self.0[11]])
    }

    /// Render as the 24-hex-digit string Dissenter embeds in its HTML.
    pub fn to_hex(&self) -> String {
        hex::encode(&self.0)
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectId({})", self.to_hex())
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Error parsing a 24-hex-digit identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseObjectIdError {
    /// Input was not exactly 24 characters.
    BadLength(usize),
    /// Input contained a non-hexadecimal character.
    BadDigit,
}

impl fmt::Display for ParseObjectIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadLength(n) => write!(f, "expected 24 hex digits, got {n} characters"),
            Self::BadDigit => f.write_str("non-hexadecimal digit in object id"),
        }
    }
}

impl std::error::Error for ParseObjectIdError {}

impl FromStr for ObjectId {
    type Err = ParseObjectIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 24 {
            return Err(ParseObjectIdError::BadLength(s.len()));
        }
        let bytes = hex::decode(s).ok_or(ParseObjectIdError::BadDigit)?;
        let mut arr = [0u8; 12];
        arr.copy_from_slice(&bytes);
        Ok(ObjectId(arr))
    }
}

/// Deterministic generator of [`ObjectId`]s for one entity family.
///
/// Mirrors the structure the paper inferred: timestamp prefix, stable
/// per-process random middle, monotone counter suffix. Seeded, so a given
/// world generation produces identical identifiers run-to-run.
#[derive(Debug, Clone)]
pub struct ObjectIdGen {
    kind: EntityKind,
    process: [u8; 5],
    counter: u32,
}

impl ObjectIdGen {
    /// Create a generator for `kind`, deriving the process field from `seed`.
    pub fn new(kind: EntityKind, seed: u64) -> Self {
        // SplitMix64 finalizer: cheap, well-distributed, dependency-free.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let b = z.to_be_bytes();
        Self { kind, process: [b[0], b[1], b[2], b[3], b[4]], counter: 0 }
    }

    /// The entity family this generator serves.
    pub fn kind(&self) -> EntityKind {
        self.kind
    }

    /// Mint the next identifier with the given creation time.
    ///
    /// The counter wraps at 2^24 like the 3-byte field it occupies.
    pub fn next(&mut self, created_at: Timestamp) -> ObjectId {
        let ts = (created_at & 0xffff_ffff) as u32;
        let c = self.counter;
        self.counter = (self.counter + 1) & 0x00ff_ffff;
        let t = ts.to_be_bytes();
        let cb = c.to_be_bytes();
        ObjectId([
            t[0], t[1], t[2], t[3], //
            self.process[0], self.process[1], self.process[2], self.process[3], self.process[4],
            cb[1], cb[2], cb[3],
        ])
    }

    /// How many identifiers have been minted so far (mod 2^24).
    pub fn minted(&self) -> u32 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_prefix() {
        // §2.2: account created 2019-02-28T16:23:53Z → id begins 5c780b19.
        let mut g = ObjectIdGen::new(EntityKind::Author, 42);
        let id = g.next(0x5c78_0b19);
        assert!(id.to_hex().starts_with("5c780b19"), "got {}", id.to_hex());
        assert_eq!(id.timestamp(), 0x5c78_0b19);
    }

    #[test]
    fn hex_round_trip() {
        let mut g = ObjectIdGen::new(EntityKind::Comment, 7);
        let id = g.next(1_600_000_000);
        let parsed: ObjectId = id.to_hex().parse().unwrap();
        assert_eq!(parsed, id);
    }

    #[test]
    fn parse_rejects_wrong_length() {
        assert_eq!(
            "abc".parse::<ObjectId>(),
            Err(ParseObjectIdError::BadLength(3))
        );
    }

    #[test]
    fn parse_rejects_bad_digit() {
        let s = "zz780b190000000000000000";
        assert_eq!(s.parse::<ObjectId>(), Err(ParseObjectIdError::BadDigit));
    }

    #[test]
    fn counter_increments_and_process_field_stable() {
        let mut g = ObjectIdGen::new(EntityKind::CommentUrl, 1);
        let a = g.next(100);
        let b = g.next(100);
        assert_eq!(a.process_field(), b.process_field());
        assert_eq!(a.counter() + 1, b.counter());
        assert_ne!(a, b);
    }

    #[test]
    fn counter_wraps_at_24_bits() {
        let mut g = ObjectIdGen::new(EntityKind::Comment, 3);
        g.counter = 0x00ff_ffff;
        let a = g.next(5);
        assert_eq!(a.counter(), 0x00ff_ffff);
        let b = g.next(5);
        assert_eq!(b.counter(), 0);
    }

    #[test]
    fn distinct_seeds_distinct_process_fields() {
        let a = ObjectIdGen::new(EntityKind::Author, 1);
        let b = ObjectIdGen::new(EntityKind::Author, 2);
        assert_ne!(a.process, b.process);
    }

    #[test]
    fn ordering_follows_timestamp() {
        let mut g = ObjectIdGen::new(EntityKind::Author, 9);
        let early = g.next(1_000);
        let late = g.next(2_000);
        assert!(early < late);
    }
}
