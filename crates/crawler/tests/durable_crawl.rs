//! Durable-crawl integration: journal a crawl through the segmented
//! WAL, kill it at a seeded failpoint, and prove resume reconstructs a
//! store byte-identical to an uninterrupted run — with the completed
//! phases replayed from disk instead of re-fetched.

use crawler::journal::is_kill_error;
use crawler::{Crawler, DurableConfig, Endpoints, Failpoint, Phase};
use platform::World;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use synth::config::Scale;
use synth::WorldConfig;
use webfront::SimServices;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let d = std::env::temp_dir().join(format!("durable-crawl-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        Self(d)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn tiny_world() -> Arc<World> {
    let cfg = WorldConfig { scale: Scale::Custom(0.001), ..WorldConfig::small() };
    let (world, _) = synth::generate(&cfg);
    Arc::new(world)
}

fn crawler_for(services: &SimServices) -> Crawler {
    let mut crawler = Crawler::new(Endpoints {
        dissenter: services.dissenter.addr(),
        gab: services.gab.addr(),
        reddit: services.reddit.addr(),
        youtube: services.youtube.addr(),
    });
    crawler.config.enum_gap_tolerance = 600;
    crawler.enable_revalidation(1 << 14);
    crawler
}

fn persist_bytes(store: &crawler::CrawlStore, dir: &Path) -> Vec<(String, Vec<u8>)> {
    crawler::persist::save(store, dir).expect("persist");
    crawler::persist::FILES
        .iter()
        .map(|f| (f.to_string(), std::fs::read(dir.join(f)).unwrap()))
        .collect()
}

/// Assert two persisted stores are byte-identical, reporting the first
/// differing line per file instead of dumping whole archives.
fn assert_identical(got: &[(String, Vec<u8>)], want: &[(String, Vec<u8>)], context: &str) {
    let mut diffs = Vec::new();
    for ((name, g), (_, w)) in got.iter().zip(want.iter()) {
        if g == w {
            continue;
        }
        let gs = String::from_utf8_lossy(g);
        let ws = String::from_utf8_lossy(w);
        match gs.lines().zip(ws.lines()).enumerate().find(|(_, (a, b))| a != b) {
            Some((i, (a, b))) => {
                diffs.push(format!("{name}:{}\n  got:  {a}\n  want: {b}", i + 1))
            }
            None => diffs.push(format!(
                "{name}: line counts differ (got {} want {})",
                gs.lines().count(),
                ws.lines().count()
            )),
        }
    }
    assert!(diffs.is_empty(), "{context}:\n{}", diffs.join("\n"));
}

#[test]
fn killed_crawl_resumes_to_a_byte_identical_store() {
    let world = tiny_world();
    let services = SimServices::start(world, crawler::default_server_config()).expect("services");

    // Uninterrupted reference run, journaled, to learn the op count.
    let reference_dir = TempDir::new("ref");
    let crawler = crawler_for(&services);
    let reference =
        crawler.full_crawl_durable(&reference_dir.0, &DurableConfig::default()).expect("reference");
    let total_ops = crawler
        .metrics
        .snapshot()
        .counter("wal.appends")
        .expect("journaled run must count appends");
    assert!(total_ops > 10, "too few journal ops ({total_ops}) to place a kill");

    let ref_dump = TempDir::new("refdump");
    let ref_bytes = persist_bytes(&reference, &ref_dump.0);

    // Kill mid-journal (~60% through, torn tail on), then resume.
    for torn in [false, true] {
        let kill_at = if torn { total_ops * 3 / 5 } else { total_ops / 3 };
        let dir = TempDir::new(if torn { "killed-torn" } else { "killed" });
        let cfg = DurableConfig {
            failpoint: Failpoint { kill_at_op: Some(kill_at), torn_tail: torn },
            ..DurableConfig::default()
        };
        let killed = crawler_for(&services);
        let err = killed.full_crawl_durable(&dir.0, &cfg).expect_err("failpoint must kill");
        assert!(is_kill_error(&err), "unexpected error: {err}");

        let resumer = crawler_for(&services);
        let (resumed, info) =
            resumer.resume(&dir.0, &DurableConfig::default()).expect("resume");
        assert!(info.completed < Phase::ALL.len(), "a kill must interrupt some phase");
        assert_eq!(info.torn_tail_recovered, torn, "torn tail must round-trip");

        let dump = TempDir::new(if torn { "resdump-torn" } else { "resdump" });
        let resumed_bytes = persist_bytes(&resumed, &dump.0);
        assert_identical(
            &resumed_bytes,
            &ref_bytes,
            &format!("resumed store must match the uninterrupted run (torn={torn})"),
        );

        // Completed phases were replayed from disk, not re-fetched.
        let snap = resumer.metrics.snapshot();
        for phase in &Phase::ALL[..info.completed] {
            let attempted =
                snap.counter(&format!("crawl.{}.attempted", phase.name())).unwrap_or(0);
            assert_eq!(attempted, 0, "phase {} re-fetched after recovery", phase.name());
        }
        // The interrupted phase's partial progress answers with 304s.
        let not_modified: u64 = ["dissenter", "gab", "reddit", "youtube"]
            .iter()
            .filter_map(|s| snap.counter(&format!("http.{s}.not_modified")))
            .sum();
        assert!(
            not_modified >= info.uncheckpointed_reval as u64,
            "resume must revalidate at least its journaled partial progress \
             ({not_modified} < {})",
            info.uncheckpointed_reval
        );
    }
}

#[test]
fn recovery_is_idempotent_before_resume() {
    let world = tiny_world();
    let services = SimServices::start(world, crawler::default_server_config()).expect("services");

    let dir = TempDir::new("idem");
    let cfg = DurableConfig {
        failpoint: Failpoint { kill_at_op: Some(40), torn_tail: true },
        ..DurableConfig::default()
    };
    let killed = crawler_for(&services);
    assert!(killed.full_crawl_durable(&dir.0, &cfg).is_err());

    // Opening the killed journal twice must yield the same state (the
    // first open truncates the torn tail; the second sees a clean log).
    let open = |tag: &str| {
        let (_, state) = crawler::journal::Journal::recover(
            &dir.0,
            &DurableConfig::default(),
            obs::Registry::new(),
        )
        .expect("recover");
        let dump = TempDir::new(tag);
        (state.completed, persist_bytes(&state.store, &dump.0))
    };
    let (completed_a, bytes_a) = open("idem-a");
    let (completed_b, bytes_b) = open("idem-b");
    assert_eq!(completed_a, completed_b);
    assert_eq!(bytes_a, bytes_b, "double recovery must not change the store");
}

#[test]
fn resume_skips_nothing_when_the_journal_is_complete() {
    let world = tiny_world();
    let services = SimServices::start(world, crawler::default_server_config()).expect("services");

    let dir = TempDir::new("complete");
    let crawler = crawler_for(&services);
    let store = crawler.full_crawl_durable(&dir.0, &DurableConfig::default()).expect("crawl");

    let resumer = crawler_for(&services);
    let (resumed, info) = resumer.resume(&dir.0, &DurableConfig::default()).expect("resume");
    assert_eq!(info.completed, Phase::ALL.len());

    let d1 = TempDir::new("complete-a");
    let d2 = TempDir::new("complete-b");
    assert_identical(
        &persist_bytes(&resumed, &d2.0),
        &persist_bytes(&store, &d1.0),
        "replaying a complete journal must reproduce the store",
    );
    // Nothing was fetched at all.
    let snap = resumer.metrics.snapshot();
    for phase in Phase::ALL {
        let attempted = snap.counter(&format!("crawl.{}.attempted", phase.name())).unwrap_or(0);
        assert_eq!(attempted, 0, "complete journal must not trigger fetches");
    }
}
