//! The Dissenter comment store: URLs, comments, replies, votes, and the
//! per-user / per-URL indexes the web front-end serves from.

use crate::model::{Comment, CommentUrl, Vote};
use crate::visibility::Viewer;
use ids::ObjectId;
use std::collections::HashMap;

/// In-memory Dissenter database.
#[derive(Debug, Default, Clone)]
pub struct DissenterDb {
    urls: Vec<CommentUrl>,
    comments: Vec<Comment>,
    url_by_id: HashMap<ObjectId, usize>,
    url_by_string: HashMap<String, usize>,
    comment_by_id: HashMap<ObjectId, usize>,
    comments_by_url: HashMap<ObjectId, Vec<usize>>,
    urls_by_author: HashMap<ObjectId, Vec<usize>>,
    // Companion sets for urls_by_author: home pages list *distinct* URLs in
    // first-comment order, and a linear contains() scan per comment would
    // make bulk generation O(comments × urls-per-author).
    url_set_by_author: HashMap<ObjectId, std::collections::HashSet<usize>>,
    comments_by_author: HashMap<ObjectId, Vec<usize>>,
}

impl DissenterDb {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a comment URL. Panics on duplicate commenturl-id; duplicate
    /// URL *strings* are rejected with `None` (Dissenter assigns exactly
    /// one commenturl-id per exact string).
    pub fn add_url(&mut self, url: CommentUrl) -> Option<ObjectId> {
        assert!(
            !self.url_by_id.contains_key(&url.id),
            "duplicate commenturl-id {}",
            url.id
        );
        if self.url_by_string.contains_key(&url.url) {
            return None;
        }
        let id = url.id;
        let idx = self.urls.len();
        self.url_by_id.insert(id, idx);
        self.url_by_string.insert(url.url.clone(), idx);
        self.urls.push(url);
        Some(id)
    }

    /// Add a comment or reply. Panics if the thread or (for replies) the
    /// parent comment does not exist — the front-end never accepts those.
    pub fn add_comment(&mut self, comment: Comment) {
        assert!(
            self.url_by_id.contains_key(&comment.url_id),
            "comment references unknown thread"
        );
        if let Some(parent) = comment.parent {
            assert!(self.comment_by_id.contains_key(&parent), "reply to unknown comment");
        }
        assert!(
            !self.comment_by_id.contains_key(&comment.id),
            "duplicate comment-id"
        );
        let idx = self.comments.len();
        self.comment_by_id.insert(comment.id, idx);
        self.comments_by_url.entry(comment.url_id).or_default().push(idx);
        let url_idx = self.url_by_id[&comment.url_id];
        if self.url_set_by_author.entry(comment.author_id).or_default().insert(url_idx) {
            self.urls_by_author.entry(comment.author_id).or_default().push(url_idx);
        }
        self.comments_by_author.entry(comment.author_id).or_default().push(idx);
        self.comments.push(comment);
    }

    /// Record a vote on a URL.
    pub fn vote(&mut self, url_id: ObjectId, vote: Vote) {
        let idx = self.url_by_id[&url_id];
        match vote {
            Vote::Up => self.urls[idx].upvotes += 1,
            Vote::Down => self.urls[idx].downvotes += 1,
        }
    }

    /// All URLs.
    pub fn urls(&self) -> &[CommentUrl] {
        &self.urls
    }

    /// All comments (including shadow content — this is the database view,
    /// not a rendered page).
    pub fn comments(&self) -> &[Comment] {
        &self.comments
    }

    /// Look up a thread by commenturl-id.
    pub fn url_by_id(&self, id: ObjectId) -> Option<&CommentUrl> {
        self.url_by_id.get(&id).map(|&i| &self.urls[i])
    }

    /// Look up a thread by exact URL string.
    pub fn url_by_string(&self, url: &str) -> Option<&CommentUrl> {
        self.url_by_string.get(url).map(|&i| &self.urls[i])
    }

    /// Look up a comment by comment-id.
    pub fn comment_by_id(&self, id: ObjectId) -> Option<&Comment> {
        self.comment_by_id.get(&id).map(|&i| &self.comments[i])
    }

    /// Comments on a thread visible to `viewer`, in posting order.
    pub fn visible_comments(&self, url_id: ObjectId, viewer: Viewer) -> Vec<&Comment> {
        self.comments_by_url
            .get(&url_id)
            .map(|idxs| {
                idxs.iter()
                    .map(|&i| &self.comments[i])
                    .filter(|c| viewer.can_see(c))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Every comment on a thread, shadow overlay included — the view a
    /// cache stamp needs: any change visible to *some* viewer class must
    /// move the digest, so the stamp folds the unfiltered thread.
    pub fn comments_for_url(&self, url_id: ObjectId) -> Vec<&Comment> {
        self.comments_by_url
            .get(&url_id)
            .map(|idxs| idxs.iter().map(|&i| &self.comments[i]).collect())
            .unwrap_or_default()
    }

    /// Total comment count on a thread (what the comment page header
    /// displays), irrespective of viewer.
    pub fn comment_count(&self, url_id: ObjectId) -> usize {
        self.comments_by_url.get(&url_id).map(Vec::len).unwrap_or(0)
    }

    /// The URLs a user has commented on, in first-comment order — exactly
    /// what their Dissenter home page lists (§2.2).
    pub fn urls_for_author(&self, author: ObjectId) -> Vec<&CommentUrl> {
        self.urls_by_author
            .get(&author)
            .map(|idxs| idxs.iter().map(|&i| &self.urls[i]).collect())
            .unwrap_or_default()
    }

    /// All comments by a user.
    pub fn comments_for_author(&self, author: ObjectId) -> Vec<&Comment> {
        self.comments_by_author
            .get(&author)
            .map(|idxs| idxs.iter().map(|&i| &self.comments[i]).collect())
            .unwrap_or_default()
    }

    /// Number of distinct commenting authors.
    pub fn active_author_count(&self) -> usize {
        self.comments_by_author.len()
    }

    /// Total URL count.
    pub fn url_count(&self) -> usize {
        self.urls.len()
    }

    /// Total comment count.
    pub fn total_comments(&self) -> usize {
        self.comments.len()
    }

    /// Audit the database's internal consistency: index completeness,
    /// reply referential integrity (parents exist and live on the same
    /// thread), and the shadow-visibility partition — for every thread,
    /// the four `(nsfw, offensive)` comment classes must reconcile
    /// exactly with what each viewer tier sees and with the displayed
    /// comment count. Returns the first violation found. The simulation
    /// harness runs this over generated worlds; it is cheap enough to
    /// call in tests after any bulk load.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.url_by_id.len() != self.urls.len() || self.url_by_string.len() != self.urls.len() {
            return Err(format!(
                "url indexes cover {}/{} ids and {} strings for {} urls",
                self.url_by_id.len(),
                self.urls.len(),
                self.url_by_string.len(),
                self.urls.len()
            ));
        }
        if self.comment_by_id.len() != self.comments.len() {
            return Err(format!(
                "comment-id index covers {} of {} comments",
                self.comment_by_id.len(),
                self.comments.len()
            ));
        }
        let by_url_total: usize = self.comments_by_url.values().map(Vec::len).sum();
        if by_url_total != self.comments.len() {
            return Err(format!(
                "per-url index holds {by_url_total} comments, store holds {}",
                self.comments.len()
            ));
        }
        let by_author_total: usize = self.comments_by_author.values().map(Vec::len).sum();
        if by_author_total != self.comments.len() {
            return Err(format!(
                "per-author index holds {by_author_total} comments, store holds {}",
                self.comments.len()
            ));
        }
        for c in &self.comments {
            if !self.url_by_id.contains_key(&c.url_id) {
                return Err(format!("comment {} references unknown thread {}", c.id, c.url_id));
            }
            if let Some(parent) = c.parent {
                match self.comment_by_id.get(&parent) {
                    None => return Err(format!("comment {} replies to unknown {parent}", c.id)),
                    Some(&i) if self.comments[i].url_id != c.url_id => {
                        return Err(format!(
                            "reply {} lives on thread {} but its parent is on {}",
                            c.id, c.url_id, self.comments[i].url_id
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
        for url in &self.urls {
            let all = self.comment_count(url.id);
            let plain = self
                .visible_comments(url.id, Viewer::Anonymous)
                .iter()
                .filter(|c| !c.nsfw && !c.offensive)
                .count();
            let anon = self.visible_comments(url.id, Viewer::Anonymous).len();
            if anon != plain {
                return Err(format!(
                    "thread {}: anonymous viewer sees {anon} comments, {plain} are unlabeled",
                    url.id
                ));
            }
            let nsfw_only = self
                .comments_by_url
                .get(&url.id)
                .map(|idxs| {
                    idxs.iter().filter(|&&i| {
                        let c = &self.comments[i];
                        c.nsfw && !c.offensive
                    })
                })
                .map(Iterator::count)
                .unwrap_or(0);
            let off_only = self
                .comments_by_url
                .get(&url.id)
                .map(|idxs| {
                    idxs.iter().filter(|&&i| {
                        let c = &self.comments[i];
                        !c.nsfw && c.offensive
                    })
                })
                .map(Iterator::count)
                .unwrap_or(0);
            let with_nsfw = self.visible_comments(url.id, Viewer::with_nsfw()).len();
            if with_nsfw != plain + nsfw_only {
                return Err(format!(
                    "thread {}: NSFW viewer sees {with_nsfw}, expected {plain} + {nsfw_only}",
                    url.id
                ));
            }
            let with_off = self.visible_comments(url.id, Viewer::with_offensive()).len();
            if with_off != plain + off_only {
                return Err(format!(
                    "thread {}: offensive viewer sees {with_off}, expected {plain} + {off_only}",
                    url.id
                ));
            }
            let both = all - plain - nsfw_only - off_only;
            let everything = Viewer::Authenticated(crate::model::ViewFilters {
                nsfw: true,
                offensive: true,
                ..Default::default()
            });
            let full = self.visible_comments(url.id, everything).len();
            if full != all {
                return Err(format!(
                    "thread {}: fully opted-in viewer sees {full} of {all} comments \
                     ({both} dual-labeled)",
                    url.id
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids::{EntityKind, ObjectIdGen};

    struct Fixture {
        db: DissenterDb,
        url_gen: ObjectIdGen,
        comment_gen: ObjectIdGen,
        author_gen: ObjectIdGen,
    }

    impl Fixture {
        fn new() -> Self {
            Self {
                db: DissenterDb::new(),
                url_gen: ObjectIdGen::new(EntityKind::CommentUrl, 1),
                comment_gen: ObjectIdGen::new(EntityKind::Comment, 2),
                author_gen: ObjectIdGen::new(EntityKind::Author, 3),
            }
        }

        fn url(&mut self, s: &str) -> ObjectId {
            let id = self.url_gen.next(100);
            self.db
                .add_url(CommentUrl {
                    id,
                    url: s.into(),
                    title: "t".into(),
                    description: String::new(),
                    created_at: 100,
                    upvotes: 0,
                    downvotes: 0,
                })
                .expect("unique url");
            id
        }

        fn author(&mut self) -> ObjectId {
            self.author_gen.next(50)
        }

        fn comment(&mut self, url: ObjectId, author: ObjectId, nsfw: bool, offensive: bool) -> ObjectId {
            let id = self.comment_gen.next(200);
            self.db.add_comment(Comment {
                id,
                url_id: url,
                author_id: author,
                parent: None,
                text: "hello".into(),
                created_at: 200,
                nsfw,
                offensive,
            });
            id
        }
    }

    #[test]
    fn duplicate_url_string_rejected() {
        let mut f = Fixture::new();
        f.url("https://a.example/");
        let id = f.url_gen.next(101);
        let dup = CommentUrl {
            id,
            url: "https://a.example/".into(),
            title: "t".into(),
            description: String::new(),
            created_at: 101,
            upvotes: 0,
            downvotes: 0,
        };
        assert!(f.db.add_url(dup).is_none());
        assert_eq!(f.db.url_count(), 1);
    }

    #[test]
    fn protocol_variants_are_distinct_threads() {
        // §4.2.1: HTTP and HTTPS versions receive different commenturl-ids.
        let mut f = Fixture::new();
        f.url("http://a.example/page");
        f.url("https://a.example/page");
        assert_eq!(f.db.url_count(), 2);
    }

    #[test]
    fn comments_indexed_by_url_and_author() {
        let mut f = Fixture::new();
        let u1 = f.url("https://a.example/1");
        let u2 = f.url("https://a.example/2");
        let alice = f.author();
        f.comment(u1, alice, false, false);
        f.comment(u2, alice, false, false);
        f.comment(u1, alice, false, false);
        assert_eq!(f.db.comment_count(u1), 2);
        assert_eq!(f.db.comments_for_author(alice).len(), 3);
        // Home page lists distinct URLs in first-comment order.
        let urls: Vec<&str> = f.db.urls_for_author(alice).iter().map(|u| u.url.as_str()).collect();
        assert_eq!(urls, vec!["https://a.example/1", "https://a.example/2"]);
        assert_eq!(f.db.active_author_count(), 1);
    }

    #[test]
    fn replies_require_existing_parent() {
        let mut f = Fixture::new();
        let u = f.url("https://a.example/");
        let a = f.author();
        let parent = f.comment(u, a, false, false);
        let id = f.comment_gen.next(201);
        f.db.add_comment(Comment {
            id,
            url_id: u,
            author_id: a,
            parent: Some(parent),
            text: "reply".into(),
            created_at: 201,
            nsfw: false,
            offensive: false,
        });
        assert_eq!(f.db.comment_count(u), 2);
    }

    #[test]
    #[should_panic(expected = "unknown comment")]
    fn reply_to_missing_parent_panics() {
        let mut f = Fixture::new();
        let u = f.url("https://a.example/");
        let a = f.author();
        let bogus = f.comment_gen.next(999);
        let id = f.comment_gen.next(202);
        f.db.add_comment(Comment {
            id,
            url_id: u,
            author_id: a,
            parent: Some(bogus),
            text: "reply".into(),
            created_at: 202,
            nsfw: false,
            offensive: false,
        });
    }

    #[test]
    fn shadow_content_visibility() {
        let mut f = Fixture::new();
        let u = f.url("https://a.example/");
        let a = f.author();
        f.comment(u, a, false, false);
        f.comment(u, a, true, false);
        f.comment(u, a, false, true);
        assert_eq!(f.db.visible_comments(u, Viewer::Anonymous).len(), 1);
        assert_eq!(f.db.visible_comments(u, Viewer::with_nsfw()).len(), 2);
        assert_eq!(f.db.visible_comments(u, Viewer::with_offensive()).len(), 2);
        // The raw count shown on the page includes hidden comments.
        assert_eq!(f.db.comment_count(u), 3);
    }

    #[test]
    fn votes_accumulate() {
        let mut f = Fixture::new();
        let u = f.url("https://a.example/");
        f.db.vote(u, Vote::Up);
        f.db.vote(u, Vote::Down);
        f.db.vote(u, Vote::Down);
        assert_eq!(f.db.url_by_id(u).unwrap().net_votes(), -1);
    }

    #[test]
    fn invariants_hold_on_a_populated_db() {
        let mut f = Fixture::new();
        let u1 = f.url("https://a.example/1");
        let u2 = f.url("https://a.example/2");
        let (alice, bob) = (f.author(), f.author());
        let parent = f.comment(u1, alice, false, false);
        f.comment(u1, bob, true, false);
        f.comment(u1, bob, false, true);
        f.comment(u2, alice, true, true);
        let id = f.comment_gen.next(203);
        f.db.add_comment(Comment {
            id,
            url_id: u1,
            author_id: bob,
            parent: Some(parent),
            text: "reply".into(),
            created_at: 203,
            nsfw: false,
            offensive: false,
        });
        f.db.vote(u1, Vote::Up);
        assert_eq!(f.db.check_invariants(), Ok(()));
        assert_eq!(DissenterDb::new().check_invariants(), Ok(()));
    }

    #[test]
    fn invariants_catch_cross_thread_replies() {
        // add_comment only checks that the parent *exists*; a corrupted
        // bulk load could still wire a reply to a parent on another
        // thread, and the audit must see it.
        let mut f = Fixture::new();
        let u1 = f.url("https://a.example/1");
        let u2 = f.url("https://a.example/2");
        let a = f.author();
        let parent = f.comment(u1, a, false, false);
        let id = f.comment_gen.next(204);
        f.db.add_comment(Comment {
            id,
            url_id: u2,
            author_id: a,
            parent: Some(parent),
            text: "astray".into(),
            created_at: 204,
            nsfw: false,
            offensive: false,
        });
        let err = f.db.check_invariants().unwrap_err();
        assert!(err.contains("its parent is on"), "{err}");
    }

    #[test]
    fn lookups_miss_gracefully() {
        let f = Fixture::new();
        let mut g = ObjectIdGen::new(EntityKind::Comment, 9);
        let id = g.next(1);
        assert!(f.db.url_by_id(id).is_none());
        assert!(f.db.comment_by_id(id).is_none());
        assert!(f.db.url_by_string("nope").is_none());
        assert!(f.db.visible_comments(id, Viewer::Anonymous).is_empty());
        assert!(f.db.urls_for_author(id).is_empty());
    }
}
