#!/usr/bin/env bash
# Run-stats bench: run one fixed-seed small-scale study end to end and
# emit the machine-readable run report (stage wall-clocks, per-phase
# crawl coverage, per-scorer throughput, full metric snapshot) as
# BENCH_PR2.json in the repo root.
#
# Usage: scripts/bench.sh [extra runstats args, e.g. --scale 0.002]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p bench --bin runstats -- --out BENCH_PR2.json "$@"

# The artifact must parse and carry the headline sections.
python3 - <<'EOF'
import json
with open("BENCH_PR2.json") as f:
    report = json.load(f)
for key in ("stages_us", "phases", "scorers", "metrics"):
    assert key in report, f"BENCH_PR2.json missing {key!r}"
assert report["phases"], "no crawl phases recorded"
assert all(
    p["attempted"] == p["succeeded"] + p["dead_lettered"]
    for p in report["phases"].values()
), "phase accounting out of balance"
print("BENCH_PR2.json OK:",
      f"{report['comments']} comments,",
      f"{len(report['phases'])} phases,",
      f"{len(report['scorers'])} scorers,",
      f"wall {report['wall_ms']:.0f} ms")
EOF
