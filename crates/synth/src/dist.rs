//! Sampling primitives: categorical tables, bounded discrete power laws,
//! Beta variates, and geometric tails. Implemented from scratch on top of
//! `rand`'s uniform source so the generator needs no extra distribution
//! crates.

use rand::Rng;

/// A categorical distribution over labeled weights, sampled by inverse CDF
/// (weights need not sum to 1).
#[derive(Debug, Clone)]
pub struct Categorical<T: Clone> {
    items: Vec<T>,
    cumulative: Vec<f64>,
}

impl<T: Clone> Categorical<T> {
    /// Build from `(item, weight)` pairs; weights must be non-negative and
    /// not all zero.
    pub fn new(pairs: &[(T, f64)]) -> Self {
        assert!(!pairs.is_empty(), "empty categorical");
        let mut items = Vec::with_capacity(pairs.len());
        let mut cumulative = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for (item, w) in pairs {
            assert!(*w >= 0.0 && w.is_finite(), "bad weight");
            acc += w;
            items.push(item.clone());
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "all weights zero");
        Self { items, cumulative }
    }

    /// Draw one item.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> &T {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen::<f64>() * total;
        let idx = self.cumulative.partition_point(|&c| c <= x);
        &self.items[idx.min(self.items.len() - 1)]
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the table empty (never true by construction)?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Bounded discrete power-law sample: integer in `[min, max]` with
/// `P(x) ∝ x^{-alpha}` via inverse-CDF of the continuous envelope.
pub fn power_law_int<R: Rng>(rng: &mut R, alpha: f64, min: u64, max: u64) -> u64 {
    assert!(alpha > 1.0, "alpha must exceed 1");
    assert!(min >= 1 && max >= min, "bad bounds");
    let a = 1.0 - alpha;
    let (lo, hi) = ((min as f64).powf(a), ((max + 1) as f64).powf(a));
    let u = rng.gen::<f64>();
    let x = (lo + u * (hi - lo)).powf(1.0 / a);
    (x as u64).clamp(min, max)
}

/// Beta(α, β) variate via two Gamma draws (Marsaglia–Tsang for shape ≥ 1,
/// Johnk boost for shape < 1).
pub fn beta<R: Rng>(rng: &mut R, alpha: f64, b: f64) -> f64 {
    assert!(alpha > 0.0 && b > 0.0, "beta shapes must be positive");
    let x = gamma(rng, alpha);
    let y = gamma(rng, b);
    if x + y == 0.0 {
        return 0.5;
    }
    x / (x + y)
}

/// Gamma(shape, 1) variate.
pub fn gamma<R: Rng>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen::<f64>().max(1e-300);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    // Marsaglia–Tsang squeeze.
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = std_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(1e-300);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Standard normal via Box–Muller.
pub fn std_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Geometric count ≥ 1 with success probability `p` (mean 1/p), capped.
pub fn geometric<R: Rng>(rng: &mut R, p: f64, cap: u64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "p out of range");
    let u: f64 = rng.gen::<f64>().max(1e-300);
    let x = (u.ln() / (1.0 - p).max(1e-12).ln()).floor() as u64 + 1;
    x.min(cap)
}

/// Bernoulli draw.
pub fn coin<R: Rng>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p
}

/// Derive a child seed from a master seed and a stream tag (SplitMix64).
pub fn child_seed(master: u64, tag: u64) -> u64 {
    let mut z = master ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(123)
    }

    #[test]
    fn categorical_respects_weights() {
        let c = Categorical::new(&[("a", 8.0), ("b", 2.0)]);
        let mut r = rng();
        let n = 20_000;
        let a = (0..n).filter(|_| *c.sample(&mut r) == "a").count();
        let frac = a as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "{frac}");
    }

    #[test]
    fn categorical_zero_weight_never_sampled() {
        let c = Categorical::new(&[("never", 0.0), ("always", 1.0)]);
        let mut r = rng();
        for _ in 0..1000 {
            assert_eq!(*c.sample(&mut r), "always");
        }
    }

    #[test]
    fn power_law_bounds_and_tail() {
        let mut r = rng();
        let xs: Vec<u64> = (0..50_000).map(|_| power_law_int(&mut r, 2.0, 1, 10_000)).collect();
        assert!(xs.iter().all(|&x| (1..=10_000).contains(&x)));
        let ones = xs.iter().filter(|&&x| x == 1).count() as f64 / xs.len() as f64;
        // For α=2 on [1,10000], P(1) ≈ 1/ζ-ish ≈ 0.5 under the continuous
        // envelope.
        assert!(ones > 0.3 && ones < 0.7, "{ones}");
        assert!(xs.iter().any(|&x| x > 100), "tail must reach high values");
    }

    #[test]
    fn beta_moments() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| beta(&mut r, 2.0, 5.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 2.0 / 7.0).abs() < 0.01, "{mean}");
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn beta_small_shapes() {
        let mut r = rng();
        let xs: Vec<f64> = (0..5_000).map(|_| beta(&mut r, 0.5, 0.5)).collect();
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Arcsine law: mass near the edges.
        let edges = xs.iter().filter(|&&x| !(0.1..=0.9).contains(&x)).count() as f64
            / xs.len() as f64;
        assert!(edges > 0.3, "{edges}");
    }

    #[test]
    fn geometric_mean_and_cap() {
        let mut r = rng();
        let xs: Vec<u64> = (0..20_000).map(|_| geometric(&mut r, 0.5, 100)).collect();
        let mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "{mean}");
        let capped: Vec<u64> = (0..1000).map(|_| geometric(&mut r, 0.01, 5)).collect();
        assert!(capped.iter().all(|&x| x <= 5));
    }

    #[test]
    fn child_seeds_differ() {
        let a = child_seed(1, 1);
        let b = child_seed(1, 2);
        let c = child_seed(2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, child_seed(1, 1));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn power_law_alpha_validated() {
        power_law_int(&mut rng(), 1.0, 1, 10);
    }
}
