#![warn(missing_docs)]
//! Lightweight, dependency-free observability for the reproduction
//! pipeline: an atomic metrics [`Registry`] (counters, gauges,
//! fixed-bucket latency histograms), scoped [`Span`] timers for stage
//! wall-clock, and a bounded structured event log rendered as JSONL.
//!
//! The paper is a measurement study; PAPERS.md's API-auditing lines
//! ("Bye Bye Perspective API") argue measurement infrastructure must
//! expose its own behaviour to be trustworthy. This crate is how the
//! pipeline practices that on itself: every subsystem (HTTP client,
//! crawler phases, scorers, the study driver) reports into one registry,
//! and a [`Snapshot`] of it rides along with the study output.
//!
//! Determinism contract: **counters** record seed-determined facts
//! (requests issued, retries spent, comments scored) — two runs with the
//! same seed must produce identical counter values. **Gauges and
//! histograms** carry wall-clock-derived values (latency, throughput)
//! and may differ between runs. Consumers comparing runs compare
//! counters; consumers chasing performance read histograms.
//!
//! Design notes:
//! * handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s into the
//!   registry — grab one once and update lock-free on hot paths; the
//!   name-keyed convenience methods ([`Registry::inc`] etc.) lock a map
//!   and are for cold paths;
//! * the registry itself is a cheap [`Clone`] (shared interior), so it
//!   threads through the pipeline without lifetime plumbing;
//! * everything is `std`-only — no external crates, no global state.

mod events;
mod hist;
mod json;
mod registry;
mod span;

pub use events::Event;
pub use hist::{Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use registry::{Counter, Gauge, Registry, Snapshot};
pub use span::Span;
