//! Crawl-mirror persistence.
//!
//! The paper "effectively mirror[s] the Dissenter database"; a mirror you
//! cannot save is not much of a mirror. This module serializes a
//! [`CrawlStore`] to a directory of JSON-Lines files (one entity type per
//! file, one JSON object per line — the archive format Pushshift itself
//! uses) and loads it back, so expensive crawls can be archived and
//! re-analyzed without re-crawling.
//!
//! Each file is written crash-safely (temp file, fsync, rename, fsync
//! parent), so a kill mid-[`save`] leaves either the old archive or the
//! new one — never a torn, unloadable mixture. Load errors carry the
//! file name and 1-based line number of the offending line.
//!
//! The per-entity JSON codecs are shared with [`crate::journal`], which
//! journals the same representations as WAL records and snapshot
//! sections.

use crate::store::{
    CrawlStore, CrawledComment, CrawledUrl, CrawledUser, CrawledYoutube, GabAccount, HiddenMeta,
    RedditMatch, ShadowLabel,
};
use ids::ObjectId;
use jsonlite::Value;
use std::io::{self, Write};
use std::path::Path;

/// File names written by [`save`].
pub const FILES: [&str; 7] = [
    "gab_accounts.jsonl",
    "users.jsonl",
    "urls.jsonl",
    "comments.jsonl",
    "youtube.jsonl",
    "follow_edges.jsonl",
    "reddit.jsonl",
];

fn bad_data(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

// ---------------------------------------------------------------------
// Per-entity JSON codecs (shared by save/load and crate::journal).
// ---------------------------------------------------------------------

fn oid(v: &Value, k: &str) -> io::Result<ObjectId> {
    v.get(k)
        .and_then(|x| x.as_str())
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_data(format!("bad id field {k}")))
}

fn s(v: &Value, k: &str) -> String {
    v.get(k).and_then(|x| x.as_str()).unwrap_or("").to_owned()
}

fn n(v: &Value, k: &str) -> i64 {
    v.get(k).and_then(|x| x.as_i64()).unwrap_or(0)
}

pub(crate) fn gab_to_json(a: &GabAccount) -> Value {
    Value::object()
        .with("gab_id", a.gab_id)
        .with("username", a.username.as_str())
        .with("created_at", a.created_at.as_str())
        .with("created_epoch", a.created_epoch)
        .with("followers_count", a.followers_count)
        .with("following_count", a.following_count)
}

pub(crate) fn gab_from_json(v: &Value) -> io::Result<GabAccount> {
    Ok(GabAccount {
        gab_id: n(v, "gab_id") as u64,
        username: s(v, "username"),
        created_at: s(v, "created_at"),
        created_epoch: n(v, "created_epoch") as u64,
        followers_count: n(v, "followers_count") as u64,
        following_count: n(v, "following_count") as u64,
    })
}

pub(crate) fn user_to_json(u: &CrawledUser) -> Value {
    let mut v = Value::object()
        .with("username", u.username.as_str())
        .with("author_id", u.author_id.to_hex())
        .with("display_name", u.display_name.as_str())
        .with("bio", u.bio.as_str())
        .with(
            "url_ids",
            Value::Array(u.url_ids.iter().map(|i| Value::Str(i.to_hex())).collect()),
        );
    if let Some(m) = &u.meta {
        v = v.with("meta", meta_to_json(m));
    }
    v
}

pub(crate) fn user_from_json(v: &Value) -> io::Result<CrawledUser> {
    Ok(CrawledUser {
        username: s(v, "username"),
        author_id: oid(v, "author_id")?,
        display_name: s(v, "display_name"),
        bio: s(v, "bio"),
        url_ids: v
            .get("url_ids")
            .and_then(|a| a.as_array())
            .map(|items| items.iter().filter_map(|i| i.as_str()?.parse().ok()).collect())
            .unwrap_or_default(),
        meta: v.get("meta").map(meta_from_json),
    })
}

pub(crate) fn url_to_json(u: &CrawledUrl) -> Value {
    Value::object()
        .with("id", u.id.to_hex())
        .with("url", u.url.as_str())
        .with("title", u.title.as_str())
        .with("description", u.description.as_str())
        .with("upvotes", u.upvotes)
        .with("downvotes", u.downvotes)
        .with("declared_comment_count", u.declared_comment_count)
}

pub(crate) fn url_from_json(v: &Value) -> io::Result<CrawledUrl> {
    Ok(CrawledUrl {
        id: oid(v, "id")?,
        url: s(v, "url"),
        title: s(v, "title"),
        description: s(v, "description"),
        upvotes: n(v, "upvotes") as u32,
        downvotes: n(v, "downvotes") as u32,
        declared_comment_count: n(v, "declared_comment_count") as usize,
    })
}

pub(crate) fn comment_to_json(c: &CrawledComment) -> Value {
    Value::object()
        .with("id", c.id.to_hex())
        .with("url_id", c.url_id.to_hex())
        .with("author_id", c.author_id.to_hex())
        .with("parent", c.parent.map(|p| p.to_hex()))
        .with("text", c.text.as_str())
        .with("created_at", c.created_at)
        .with("label", label_str(c.label))
}

pub(crate) fn comment_from_json(v: &Value) -> io::Result<CrawledComment> {
    Ok(CrawledComment {
        id: oid(v, "id")?,
        url_id: oid(v, "url_id")?,
        author_id: oid(v, "author_id")?,
        parent: v.get("parent").and_then(|p| p.as_str()).and_then(|p| p.parse().ok()),
        text: s(v, "text"),
        created_at: n(v, "created_at") as u64,
        label: label_from_str(&s(v, "label")),
    })
}

pub(crate) fn youtube_to_json(y: &CrawledYoutube) -> Value {
    Value::object()
        .with("url", y.url.as_str())
        .with("kind", y.kind.as_str())
        .with("available", y.available)
        .with("reason", y.reason.clone())
        .with("owner", y.owner.clone())
        .with("comments_disabled", y.comments_disabled)
}

pub(crate) fn youtube_from_json(v: &Value) -> io::Result<CrawledYoutube> {
    Ok(CrawledYoutube {
        url: s(v, "url"),
        kind: s(v, "kind"),
        available: v.get("available").and_then(|b| b.as_bool()).unwrap_or(false),
        reason: v.get("reason").and_then(|r| r.as_str()).map(str::to_owned),
        owner: v.get("owner").and_then(|o| o.as_str()).map(str::to_owned),
        comments_disabled: v.get("comments_disabled").and_then(|b| b.as_bool()).unwrap_or(false),
    })
}

pub(crate) fn edge_to_json(edge: &(ObjectId, ObjectId)) -> Value {
    Value::object().with("from", edge.0.to_hex()).with("to", edge.1.to_hex())
}

pub(crate) fn edge_from_json(v: &Value) -> io::Result<(ObjectId, ObjectId)> {
    Ok((oid(v, "from")?, oid(v, "to")?))
}

pub(crate) fn reddit_to_json(m: &RedditMatch) -> Value {
    Value::object()
        .with("username", m.username.as_str())
        .with("total_comments", m.total_comments)
        .with(
            "comments",
            Value::Array(m.comments.iter().map(|c| Value::Str(c.clone())).collect()),
        )
}

pub(crate) fn reddit_from_json(v: &Value) -> io::Result<RedditMatch> {
    Ok(RedditMatch {
        username: s(v, "username"),
        total_comments: n(v, "total_comments") as u64,
        comments: v
            .get("comments")
            .and_then(|a| a.as_array())
            .map(|items| items.iter().filter_map(|i| i.as_str().map(str::to_owned)).collect())
            .unwrap_or_default(),
    })
}

// ---------------------------------------------------------------------
// Whole-file serialization / application.
// ---------------------------------------------------------------------

/// Serialize one archive file's entities (sorted, one JSON object per
/// line) to bytes. `name` must be one of [`FILES`].
pub(crate) fn serialize_file(store: &CrawlStore, name: &str) -> Vec<u8> {
    let lines: Vec<Value> = match name {
        "gab_accounts.jsonl" => {
            let mut gab: Vec<&GabAccount> = store.gab_accounts.iter().collect();
            gab.sort_by_key(|a| a.gab_id);
            gab.iter().map(|a| gab_to_json(a)).collect()
        }
        "users.jsonl" => {
            let mut users: Vec<&CrawledUser> = store.users.values().collect();
            users.sort_by(|a, b| a.username.cmp(&b.username));
            users.iter().map(|u| user_to_json(u)).collect()
        }
        "urls.jsonl" => {
            let mut urls: Vec<&CrawledUrl> = store.urls.values().collect();
            urls.sort_by_key(|u| u.id);
            urls.iter().map(|u| url_to_json(u)).collect()
        }
        "comments.jsonl" => {
            let mut comments: Vec<&CrawledComment> = store.comments.values().collect();
            comments.sort_by_key(|c| c.id);
            comments.iter().map(|c| comment_to_json(c)).collect()
        }
        "youtube.jsonl" => {
            let mut yt: Vec<&CrawledYoutube> = store.youtube.iter().collect();
            yt.sort_by(|a, b| a.url.cmp(&b.url));
            yt.iter().map(|y| youtube_to_json(y)).collect()
        }
        "follow_edges.jsonl" => {
            let mut edges = store.follow_edges.clone();
            edges.sort();
            edges.iter().map(edge_to_json).collect()
        }
        "reddit.jsonl" => {
            let mut reddit: Vec<&RedditMatch> = store.reddit.values().collect();
            reddit.sort_by(|a, b| a.username.cmp(&b.username));
            reddit.iter().map(|m| reddit_to_json(m)).collect()
        }
        other => unreachable!("not an archive file: {other}"),
    };
    let mut buf = Vec::new();
    for v in lines {
        writeln!(buf, "{}", jsonlite::to_string(&v)).expect("Vec write is infallible");
    }
    buf
}

/// Apply one parsed archive line to the store. Does not touch
/// `dissenter_usernames` — [`load`] rebuilds that index afterwards, and
/// the journal restores it from its own records.
pub(crate) fn apply_line(store: &mut CrawlStore, name: &str, v: &Value) -> io::Result<()> {
    match name {
        "gab_accounts.jsonl" => store.gab_accounts.push(gab_from_json(v)?),
        "users.jsonl" => {
            let user = user_from_json(v)?;
            store.users.insert(user.username.clone(), user);
        }
        "urls.jsonl" => {
            let u = url_from_json(v)?;
            store.urls.insert(u.id, u);
        }
        "comments.jsonl" => {
            let c = comment_from_json(v)?;
            store.comments.insert(c.id, c);
        }
        "youtube.jsonl" => store.youtube.push(youtube_from_json(v)?),
        "follow_edges.jsonl" => store.follow_edges.push(edge_from_json(v)?),
        "reddit.jsonl" => {
            let m = reddit_from_json(v)?;
            store.reddit.insert(m.username.clone(), m);
        }
        other => unreachable!("not an archive file: {other}"),
    }
    Ok(())
}

/// Parse and apply a whole JSONL buffer. Errors name the offending
/// `file:line` (1-based) — a truncated or garbage line in a gigabyte
/// archive must be findable, not an opaque parse failure.
pub(crate) fn apply_jsonl(store: &mut CrawlStore, name: &str, bytes: &[u8]) -> io::Result<()> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| bad_data(format!("{name}: not valid UTF-8: {e}")))?;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = jsonlite::parse(line).map_err(|e| bad_data(format!("{name}:{lineno}: {e}")))?;
        apply_line(store, name, &v).map_err(|e| bad_data(format!("{name}:{lineno}: {e}")))?;
    }
    Ok(())
}

/// Save a crawl store into `dir` (created if missing). Each file is
/// written with the temp-file + fsync + rename + fsync-parent
/// discipline: a crash mid-save can never leave a torn archive file.
pub fn save(store: &CrawlStore, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for name in FILES {
        durable::atomic_write_file(&dir.join(name), &serialize_file(store, name))?;
    }
    Ok(())
}

/// Load a crawl store previously written by [`save`]. Crawl statistics and
/// validation counters are not persisted (they describe the crawl run, not
/// the mirror) and come back zeroed.
pub fn load(dir: &Path) -> io::Result<CrawlStore> {
    let mut store = CrawlStore::default();
    for name in FILES {
        let bytes = std::fs::read(dir.join(name))?;
        apply_jsonl(&mut store, name, &bytes)?;
    }
    store.dissenter_usernames = store.users.keys().cloned().collect();
    store.dissenter_usernames.sort();
    Ok(store)
}

pub(crate) fn label_str(l: ShadowLabel) -> &'static str {
    match l {
        ShadowLabel::Standard => "standard",
        ShadowLabel::Nsfw => "nsfw",
        ShadowLabel::Offensive => "offensive",
        ShadowLabel::Both => "both",
    }
}

pub(crate) fn label_from_str(s: &str) -> ShadowLabel {
    match s {
        "nsfw" => ShadowLabel::Nsfw,
        "offensive" => ShadowLabel::Offensive,
        "both" => ShadowLabel::Both,
        _ => ShadowLabel::Standard,
    }
}

fn meta_to_json(m: &HiddenMeta) -> Value {
    Value::object()
        .with("language", m.language.as_str())
        .with("canLogin", m.can_login)
        .with("canPost", m.can_post)
        .with("canReport", m.can_report)
        .with("canChat", m.can_chat)
        .with("canVote", m.can_vote)
        .with("isBanned", m.is_banned)
        .with("isAdmin", m.is_admin)
        .with("isModerator", m.is_moderator)
        .with("isPro", m.is_pro)
        .with("isDonor", m.is_donor)
        .with("isInvestor", m.is_investor)
        .with("isPremium", m.is_premium)
        .with("isTippable", m.is_tippable)
        .with("isPrivate", m.is_private)
        .with("verified", m.verified)
        .with("filterPro", m.filter_pro)
        .with("filterVerified", m.filter_verified)
        .with("filterStandard", m.filter_standard)
        .with("filterNsfw", m.filter_nsfw)
        .with("filterOffensive", m.filter_offensive)
}

fn meta_from_json(v: &Value) -> HiddenMeta {
    let b = |k: &str| v.get(k).and_then(|x| x.as_bool()).unwrap_or(false);
    HiddenMeta {
        language: v.get("language").and_then(|x| x.as_str()).unwrap_or("").to_owned(),
        can_login: b("canLogin"),
        can_post: b("canPost"),
        can_report: b("canReport"),
        can_chat: b("canChat"),
        can_vote: b("canVote"),
        is_banned: b("isBanned"),
        is_admin: b("isAdmin"),
        is_moderator: b("isModerator"),
        is_pro: b("isPro"),
        is_donor: b("isDonor"),
        is_investor: b("isInvestor"),
        is_premium: b("isPremium"),
        is_tippable: b("isTippable"),
        is_private: b("isPrivate"),
        verified: b("verified"),
        filter_pro: b("filterPro"),
        filter_verified: b("filterVerified"),
        filter_standard: b("filterStandard"),
        filter_nsfw: b("filterNsfw"),
        filter_offensive: b("filterOffensive"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids::{EntityKind, ObjectIdGen};

    fn sample_store() -> CrawlStore {
        let mut store = CrawlStore::default();
        let mut ag = ObjectIdGen::new(EntityKind::Author, 1);
        let mut ug = ObjectIdGen::new(EntityKind::CommentUrl, 2);
        let mut cg = ObjectIdGen::new(EntityKind::Comment, 3);
        store.gab_accounts.push(GabAccount {
            gab_id: 1,
            username: "e".into(),
            created_at: "2016-08-15T00:00:00Z".into(),
            created_epoch: 1_471_219_200,
            followers_count: 10,
            following_count: 2,
        });
        let author = ag.next(100);
        let url = ug.next(200);
        store.users.insert(
            "alice".into(),
            CrawledUser {
                username: "alice".into(),
                author_id: author,
                display_name: "Alice & Co".into(),
                bio: "speaks \"freely\"\nnewline".into(),
                url_ids: vec![url],
                meta: Some(HiddenMeta {
                    language: "de".into(),
                    can_login: true,
                    filter_nsfw: true,
                    ..Default::default()
                }),
            },
        );
        store.dissenter_usernames.push("alice".into());
        store.urls.insert(
            url,
            CrawledUrl {
                id: url,
                url: "https://example.com/a?x=1&y=2".into(),
                title: "T".into(),
                description: String::new(),
                upvotes: 3,
                downvotes: 1,
                declared_comment_count: 2,
            },
        );
        let parent = cg.next(300);
        for (id, p, label) in [
            (parent, None, ShadowLabel::Standard),
            (cg.next(301), Some(parent), ShadowLabel::Both),
        ] {
            store.comments.insert(
                id,
                CrawledComment {
                    id,
                    url_id: url,
                    author_id: author,
                    parent: p,
                    text: "hi \u{1F600} unicode".into(),
                    created_at: 300,
                    label,
                },
            );
        }
        store.youtube.push(CrawledYoutube {
            url: "https://youtube.com/watch?v=x".into(),
            kind: "video".into(),
            available: false,
            reason: Some("This video is private".into()),
            owner: None,
            comments_disabled: false,
        });
        store.follow_edges.push((author, author));
        store.reddit.insert(
            "alice".into(),
            RedditMatch { username: "alice".into(), total_comments: 7, comments: vec!["r1".into()] },
        );
        store
    }

    #[test]
    fn round_trips_everything() {
        let store = sample_store();
        let dir = std::env::temp_dir().join(format!("crawl-persist-{}", std::process::id()));
        save(&store, &dir).expect("save");
        for f in FILES {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        let loaded = load(&dir).expect("load");
        assert_eq!(loaded.gab_accounts.len(), 1);
        assert_eq!(loaded.gab_accounts[0].username, "e");
        let alice = &loaded.users["alice"];
        assert_eq!(alice.bio, "speaks \"freely\"\nnewline");
        assert_eq!(alice.url_ids.len(), 1);
        assert_eq!(alice.meta.as_ref().unwrap().language, "de");
        assert!(alice.meta.as_ref().unwrap().filter_nsfw);
        assert_eq!(loaded.urls.len(), 1);
        assert_eq!(loaded.comments.len(), 2);
        let both = loaded.comments.values().find(|c| c.parent.is_some()).unwrap();
        assert_eq!(both.label, ShadowLabel::Both);
        assert_eq!(both.text, "hi \u{1F600} unicode");
        assert_eq!(loaded.youtube.len(), 1);
        assert_eq!(loaded.follow_edges.len(), 1);
        assert_eq!(loaded.reddit["alice"].total_comments, 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_dir_errors() {
        assert!(load(Path::new("/nonexistent/xyz")).is_err());
    }

    #[test]
    fn save_is_deterministic() {
        let store = sample_store();
        let d1 = std::env::temp_dir().join(format!("crawl-det1-{}", std::process::id()));
        let d2 = std::env::temp_dir().join(format!("crawl-det2-{}", std::process::id()));
        save(&store, &d1).unwrap();
        save(&store, &d2).unwrap();
        for f in FILES {
            let a = std::fs::read(d1.join(f)).unwrap();
            let b = std::fs::read(d2.join(f)).unwrap();
            assert_eq!(a, b, "{f} differs");
        }
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d2).ok();
    }

    #[test]
    fn save_leaves_no_temp_files() {
        let store = sample_store();
        let dir = std::env::temp_dir().join(format!("crawl-notmp-{}", std::process::id()));
        save(&store, &dir).unwrap();
        save(&store, &dir).unwrap(); // overwrite path exercises rename-over
        let stray: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(stray.is_empty(), "temp files left behind: {stray:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_final_line_reports_file_and_line() {
        let store = sample_store();
        let dir = std::env::temp_dir().join(format!("crawl-trunc-{}", std::process::id()));
        save(&store, &dir).unwrap();
        // Chop the last line of comments.jsonl mid-object — the torn
        // state a non-atomic writer would have left after a kill.
        let path = dir.join("comments.jsonl");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 20]).unwrap();

        let err = load(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("comments.jsonl:2:"), "missing file:line context: {msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_line_reports_file_and_line() {
        let store = sample_store();
        let dir = std::env::temp_dir().join(format!("crawl-garbage-{}", std::process::id()));
        save(&store, &dir).unwrap();
        let path = dir.join("users.jsonl");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"this is not json\n");
        std::fs::write(&path, &bytes).unwrap();

        let err = load(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("users.jsonl:2:"), "missing file:line context: {msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_id_field_reports_file_and_line() {
        let dir = std::env::temp_dir().join(format!("crawl-badid-{}", std::process::id()));
        save(&CrawlStore::default(), &dir).unwrap();
        std::fs::write(dir.join("urls.jsonl"), b"{\"id\": \"not-a-hex-oid\"}\n").unwrap();
        let err = load(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("urls.jsonl:1:"), "{msg}");
        assert!(msg.contains("bad id field id"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
