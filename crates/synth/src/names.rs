//! Deterministic username, domain, and title generation.

use crate::dist::Categorical;
use rand::Rng;

const NAME_PARTS_A: &[&str] = &[
    "free", "truth", "eagle", "patriot", "liberty", "digital", "silent", "night", "iron", "red",
    "storm", "wolf", "hawk", "winter", "golden", "real", "honest", "deplor", "shadow", "lone",
];

const NAME_PARTS_B: &[&str] = &[
    "speaker", "watcher", "rider", "fan", "voice", "thinker", "citizen", "walker", "smith",
    "runner", "reader", "hunter", "maker", "keeper", "pilgrim", "dissident", "skeptic", "texan",
    "viking", "owl",
];

/// Generate a unique username: `partA` + `partB` + decimal suffix.
pub fn username<R: Rng>(rng: &mut R, serial: u64) -> String {
    let a = NAME_PARTS_A[rng.gen_range(0..NAME_PARTS_A.len())];
    let b = NAME_PARTS_B[rng.gen_range(0..NAME_PARTS_B.len())];
    format!("{a}{b}{serial}")
}

/// Display name derived from a username (capitalized, spaced).
pub fn display_name(username: &str) -> String {
    let mut out = String::with_capacity(username.len() + 1);
    let mut cap = true;
    for c in username.chars() {
        if c.is_ascii_digit() {
            continue;
        }
        if cap {
            out.extend(c.to_uppercase());
            cap = false;
        } else {
            out.push(c);
        }
    }
    out
}

/// Table 2's top domains with their observed URL shares (percent of all
/// 588k URLs). The remainder ("Other", 54.61%) is synthesized from
/// [`other_domain`].
pub const TOP_DOMAINS: &[(&str, f64)] = &[
    ("youtube.com", 20.75),
    ("twitter.com", 6.87),
    ("breitbart.com", 4.03),
    ("bbc.co.uk", 2.76),
    ("dailymail.co.uk", 2.68),
    ("foxnews.com", 2.08),
    ("bitchute.com", 2.06),
    ("zerohedge.com", 1.47),
    ("theguardian.com", 1.36),
    ("youtu.be", 1.33),
];

/// Table 2's TLD shares (percent) used for synthesized "other" domains.
/// `.com`'s share here is net of the top domains above.
pub const OTHER_TLDS: &[(&str, f64)] = &[
    ("com", 40.0),
    ("uk", 2.0),
    ("org", 3.32),
    ("de", 1.75),
    ("be", 0.03),
    ("au", 1.17),
    ("ca", 0.93),
    ("net", 0.81),
    ("nz", 0.51),
    ("no", 0.50),
    ("fr", 0.30),
    ("es", 0.25),
    ("it", 0.25),
];

const DOMAIN_WORDS: &[&str] = &[
    "daily", "news", "report", "times", "post", "tribune", "herald", "wire", "journal", "gazette",
    "chronicle", "observer", "monitor", "dispatch", "insider", "review", "digest", "bulletin",
    "record", "standard", "examiner", "courier", "sentinel", "register", "beacon", "signal",
    "outlook", "globe", "voice", "watch",
];

/// Pre-built sampler for "other" domains' TLDs.
pub fn other_tld_table() -> Categorical<&'static str> {
    Categorical::new(&OTHER_TLDS.iter().map(|&(t, w)| (t, w)).collect::<Vec<_>>())
}

/// A synthesized long-tail domain like `dailyreport42.com`.
pub fn other_domain<R: Rng>(rng: &mut R, tld: &str) -> String {
    let a = DOMAIN_WORDS[rng.gen_range(0..DOMAIN_WORDS.len())];
    let b = DOMAIN_WORDS[rng.gen_range(0..DOMAIN_WORDS.len())];
    let n = rng.gen_range(1..100);
    if tld == "uk" {
        format!("{a}{b}{n}.co.uk")
    } else {
        format!("{a}{b}{n}.{tld}")
    }
}

/// Known fringe domains the paper highlights for high per-URL comment
/// volume (§4.2.1).
pub const FRINGE_DOMAINS: &[&str] = &["thewatcherfiles.com", "deutschland.de"];

/// A plausible article path.
pub fn article_path<R: Rng>(rng: &mut R) -> String {
    let a = DOMAIN_WORDS[rng.gen_range(0..DOMAIN_WORDS.len())];
    let b = DOMAIN_WORDS[rng.gen_range(0..DOMAIN_WORDS.len())];
    format!("/{}/{:04}/{a}-{b}-{}", 2019 + rng.gen_range(0..2), rng.gen_range(1..9999), rng.gen_range(100..999))
}

/// A YouTube video id (11 chars, base64-ish).
pub fn youtube_id<R: Rng>(rng: &mut R) -> String {
    const CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";
    (0..11).map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn usernames_unique_by_serial() {
        let mut r = StdRng::seed_from_u64(0);
        let a = username(&mut r, 1);
        let b = username(&mut r, 2);
        assert!(a.ends_with('1'));
        assert!(b.ends_with('2'));
        assert_ne!(a, b);
    }

    #[test]
    fn display_name_strips_digits() {
        assert_eq!(display_name("truthwalker42"), "Truthwalker");
    }

    #[test]
    fn top_domain_shares_match_table_2() {
        let total: f64 = TOP_DOMAINS.iter().map(|(_, w)| w).sum();
        assert!((total - 45.39).abs() < 0.01, "{total}");
    }

    #[test]
    fn uk_domains_use_co_uk() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(other_domain(&mut r, "uk").ends_with(".co.uk"));
        assert!(other_domain(&mut r, "de").ends_with(".de"));
    }

    #[test]
    fn youtube_ids_have_right_shape() {
        let mut r = StdRng::seed_from_u64(2);
        let id = youtube_id(&mut r);
        assert_eq!(id.len(), 11);
    }
}
