//! Fixed-bucket latency histograms.
//!
//! Buckets are geometric (powers of two) over nanoseconds, from 1 µs to
//! ~137 s, plus an overflow bucket. Recording is a single atomic add —
//! no locks on the hot path — and quantiles are estimated from bucket
//! counts (reported as the bucket's upper bound, i.e. conservatively).

use crate::json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of finite buckets (the slot after them catches overflow).
pub const BUCKET_COUNT: usize = 28;

/// Upper bound (inclusive) of bucket `i`, in nanoseconds: `1 µs · 2^i`.
fn upper_ns(i: usize) -> u64 {
    1_000u64 << i
}

#[derive(Debug, Default)]
pub(crate) struct HistInner {
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; BUCKET_COUNT + 1],
}

/// A shared handle to one histogram in a registry.
#[derive(Debug, Clone)]
pub struct Histogram(pub(crate) Arc<HistInner>);

impl Histogram {
    pub(crate) fn new() -> Self {
        Self(Arc::new(HistInner::default()))
    }

    /// Record one observation.
    pub fn observe(&self, d: Duration) {
        self.observe_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one observation given in nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        let idx = (0..BUCKET_COUNT).find(|&i| ns <= upper_ns(i)).unwrap_or(BUCKET_COUNT);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.0.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A plain-value copy for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.0.count.load(Ordering::Relaxed);
        let sum_ns = self.0.sum_ns.load(Ordering::Relaxed);
        let max_ns = self.0.max_ns.load(Ordering::Relaxed);
        let buckets: Vec<u64> =
            self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut cum = 0u64;
            for (i, &b) in buckets.iter().enumerate() {
                cum += b;
                if cum >= target {
                    // The overflow bucket has no finite bound; the true
                    // maximum is the tightest statement we can make.
                    return if i < BUCKET_COUNT { upper_ns(i).min(max_ns) } else { max_ns };
                }
            }
            max_ns
        };
        HistogramSnapshot {
            count,
            sum_ns,
            max_ns,
            p50_ns: quantile(0.50),
            p95_ns: quantile(0.95),
            p99_ns: quantile(0.99),
        }
    }
}

/// Plain-value summary of a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Largest observation, nanoseconds.
    pub max_ns: u64,
    /// Estimated median (upper bucket bound), nanoseconds.
    pub p50_ns: u64,
    /// Estimated 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// Estimated 99th percentile, nanoseconds.
    pub p99_ns: u64,
}

impl HistogramSnapshot {
    /// Mean observation, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Render as a JSON object (times in microseconds, f64).
    pub fn to_json(&self) -> String {
        let us = |ns: u64| json::number(ns as f64 / 1_000.0);
        format!(
            "{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            self.count,
            us(self.mean_ns()),
            us(self.p50_ns),
            us(self.p95_ns),
            us(self.p99_ns),
            us(self.max_ns),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ns, 0);
        assert_eq!(s.mean_ns(), 0);
    }

    #[test]
    fn quantiles_bracket_observations() {
        let h = Histogram::new();
        // 99 observations at ~1 ms, one at ~1 s.
        for _ in 0..99 {
            h.observe(Duration::from_millis(1));
        }
        h.observe(Duration::from_secs(1));
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // p50/p95 land in the 1 ms bucket: bound within [1 ms, 2·1 ms].
        assert!(s.p50_ns >= 1_000_000 && s.p50_ns <= 2_100_000, "p50 {}", s.p50_ns);
        assert!(s.p95_ns <= 2_100_000, "p95 {}", s.p95_ns);
        // p99 must see the outlier's bucket region but never exceed max.
        assert!(s.p99_ns <= s.max_ns);
        assert!(s.max_ns >= 1_000_000_000);
    }

    #[test]
    fn overflow_bucket_reports_max() {
        let h = Histogram::new();
        h.observe(Duration::from_secs(500)); // beyond the last finite bound
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_ns, s.max_ns);
    }

    #[test]
    fn json_shape() {
        let h = Histogram::new();
        h.observe(Duration::from_micros(10));
        let j = h.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("p99_us"));
    }
}
