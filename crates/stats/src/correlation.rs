//! Correlation coefficients: Pearson's r and Spearman's ρ.
//!
//! Used by the social analysis to quantify the Figure-9 relationships the
//! paper describes visually ("the number of Dissenters each user follows
//! is proportional to the number of followers"; toxicity vs degree).

/// Pearson product-moment correlation. `None` if the inputs differ in
/// length, are shorter than 2, or either side has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let (dx, dy) = (x - mx, y - my);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Spearman rank correlation (Pearson over mid-ranks; ties averaged).
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let rx = mid_ranks(xs);
    let ry = mid_ranks(ys);
    pearson(&rx, &ry)
}

/// Mid-rank transform: ties receive the average of the ranks they span.
pub fn mid_ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaN in rank input"));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 2.0).collect();
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_captures_monotone_nonlinear() {
        let xs: Vec<f64> = (1..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.exp().min(1e300)).collect();
        // Nonlinear → Pearson < 1, but perfectly monotone → Spearman = 1.
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_is_none() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&xs, &ys), None);
    }

    #[test]
    fn mismatched_or_tiny_inputs_none() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(spearman(&[], &[]), None);
    }

    #[test]
    fn mid_ranks_average_ties() {
        let r = mid_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn independent_samples_near_zero() {
        // Deterministic interleave: x ascending, y alternating.
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
        let r = pearson(&xs, &ys).unwrap();
        assert!(r.abs() < 0.1, "r = {r}");
    }
}
