//! Phase 5 — YouTube content crawl (§3.3).

use crate::resilience::{Phase, PhaseRun};
use crate::store::{CrawlStore, CrawledYoutube};
use crate::Crawler;
use platform::youtube::is_youtube_url;

/// Fetch the rendered state of every YouTube URL found in the crawl.
pub fn crawl_youtube(crawler: &Crawler, store: &mut CrawlStore) {
    let mut targets: Vec<String> = store
        .urls
        .values()
        .map(|u| u.url.clone())
        .filter(|u| is_youtube_url(u))
        .collect();
    // Sorted work list so the request order (and thus retry/dead-letter
    // accounting) is reproducible run to run.
    targets.sort();
    let run = PhaseRun::new(crawler, Phase::Youtube);
    let results = crate::parallel::parallel_fetch(
        crawler.endpoints.youtube,
        &targets,
        crawler.config.workers,
        &store.stats,
        |c| run.setup_client(c),
        |client, url| {
            let target = format!("/render?url={}", httpnet::http::percent_encode(url));
            let resp = run.fetch(client, store, &target)?;
            if !resp.status.is_success() {
                // Never-hosted URL: record as unavailable/unknown.
                return Some(CrawledYoutube {
                    url: url.clone(),
                    kind: "unknown".into(),
                    available: false,
                    reason: Some("not found".into()),
                    owner: None,
                    comments_disabled: false,
                });
            }
            let v = jsonlite::parse(&resp.text()).ok()?;
            Some(CrawledYoutube {
                url: url.clone(),
                kind: v.get("kind")?.as_str()?.to_owned(),
                available: v.get("available")?.as_bool()?,
                reason: v.get("reason").and_then(|r| r.as_str()).map(str::to_owned),
                owner: v.get("owner").and_then(|o| o.as_str()).map(str::to_owned),
                comments_disabled: v
                    .get("comments_disabled")
                    .and_then(|c| c.as_bool())
                    .unwrap_or(false),
            })
        },
    );
    // Results land in worker-completion order; sort so the stored list is
    // identical for any crawl worker count.
    let mut results = results;
    results.sort_by(|a, b| a.url.cmp(&b.url));
    store.youtube = results;
}
