//! The §6 proactive-defense scenario: "A content producer could
//! pre-emptively post comments within Dissenter for the content they own
//! to overwhelm the conversation with positive comments."
//!
//! ```sh
//! cargo run --release --example content_owner_defense
//! ```
//!
//! We simulate two identical articles. One is left undefended; on the
//! other, the publisher seeds the thread with benign comments before the
//! toxic crowd arrives. We then measure what a reader (and the paper's
//! toxicity pipeline) experiences on each thread.

use classify::PerspectiveModel;
use ids::{EntityKind, ObjectIdGen, DISSENTER_LAUNCH};
use platform::{Comment, CommentUrl, DissenterDb, Viewer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use stats::mean;
use synth::baselines::{sample_spec, Community};
use synth::{CommentSpec, TextGen};
use textkit::langid::Lang;

struct Thread {
    db: DissenterDb,
    id: ids::ObjectId,
}

fn new_thread(url: &str, tag: u64) -> Thread {
    let mut db = DissenterDb::new();
    let mut gen = ObjectIdGen::new(EntityKind::CommentUrl, tag);
    let id = gen.next(DISSENTER_LAUNCH);
    db.add_url(CommentUrl {
        id,
        url: url.into(),
        title: "Our big exclusive".into(),
        description: "article".into(),
        created_at: DISSENTER_LAUNCH,
        upvotes: 0,
        downvotes: 0,
    });
    Thread { db, id }
}

fn post(thread: &mut Thread, gen: &mut ObjectIdGen, author: &mut ObjectIdGen, t: u64, text: String) {
    thread.db.add_comment(Comment {
        id: gen.next(t),
        url_id: thread.id,
        author_id: author.next(t),
        parent: None,
        text,
        created_at: t,
        nsfw: false,
        offensive: false,
    });
}

fn main() {
    let textgen = TextGen::standard();
    let model = PerspectiveModel::standard();
    let mut rng = StdRng::seed_from_u64(2024);
    let mut cgen = ObjectIdGen::new(EntityKind::Comment, 1);
    let mut agen = ObjectIdGen::new(EntityKind::Author, 2);

    let mut undefended = new_thread("https://publisher.example/exclusive", 10);
    let mut defended = new_thread("https://publisher.example/exclusive-defended", 11);

    // The publisher floods the defended thread first: 40 positive posts.
    for i in 0..40u64 {
        let spec = CommentSpec::benign(12 + (i % 9) as usize);
        let text = textgen.generate(&mut rng, &spec);
        post(&mut defended, &mut cgen, &mut agen, DISSENTER_LAUNCH + i, text);
    }

    // Then the usual Dissenter crowd hits both threads with 25 comments.
    for i in 0..25u64 {
        let spec = sample_spec(&mut rng, Community::Dissenter, 0.6, Lang::En);
        let text = textgen.generate(&mut rng, &spec);
        post(&mut undefended, &mut cgen, &mut agen, DISSENTER_LAUNCH + 100 + i, text.clone());
        post(&mut defended, &mut cgen, &mut agen, DISSENTER_LAUNCH + 100 + i, text);
    }

    let summarize = |name: &str, t: &Thread| {
        let comments = t.db.visible_comments(t.id, Viewer::Anonymous);
        let severe: Vec<f64> =
            comments.iter().map(|c| model.score(&c.text).severe_toxicity).collect();
        let first_page: Vec<f64> = severe.iter().take(10).copied().collect();
        println!("{name}:");
        println!("  comments:                    {}", comments.len());
        println!("  mean SEVERE_TOXICITY:        {:.3}", mean(&severe).unwrap_or(0.0));
        println!(
            "  mean toxicity, first 10 seen: {:.3}",
            mean(&first_page).unwrap_or(0.0)
        );
        println!(
            "  share of toxic (≥0.5):       {:.1}%",
            100.0 * severe.iter().filter(|&&s| s >= 0.5).count() as f64 / severe.len() as f64
        );
    };

    summarize("UNDEFENDED thread", &undefended);
    println!();
    summarize("DEFENDED thread (publisher pre-seeded 40 positive comments)", &defended);

    println!();
    println!("The defense does not remove toxic comments — Dissenter gives the");
    println!("owner no such power — but it dominates the thread a reader opens,");
    println!("diluting aggregate toxicity and pushing attacks off the first page.");
}
