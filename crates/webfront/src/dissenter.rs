//! The dissenter.com front-end.

use crate::cache::{visibility_class, FrontCache};
use crate::{viewer_for, Front};
use httpnet::http::percent_encode;
use httpnet::{Handler, Params, Request, Response, Router, ServerConfig, Status};
use ids::ObjectId;
use parking_lot::Mutex;
use platform::{RateLimiter, SimClock, World};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Front-level vote tallies layered over the immutable world's counts
/// (the world behind a running front is shared and read-only; votes are
/// the one write path the front accepts).
type VoteOverlay = Arc<Mutex<HashMap<ObjectId, (u64, u64)>>>;

/// Handler for the Dissenter web application.
///
/// User and single-comment pages are served through the full
/// [`FrontCache`] pipeline (ETag + `304` + response cache). The per-URL
/// comment page is **conditional-only**: its 10-req/min rate limiter must
/// account every request, so revalidation happens inside the limiter's
/// allowed branch and bodies are never served from cache.
pub struct DissenterFront {
    router: Router,
    cache: FrontCache,
    limiter: Arc<Mutex<RateLimiter>>,
    config_override: Option<ServerConfig>,
}

impl DissenterFront {
    /// Build over a shared world with a default cache.
    pub fn new(world: Arc<World>) -> Self {
        let stamp = world.content_hash();
        Self::with_cache(world, FrontCache::new(stamp))
    }

    /// Build over a shared world with an explicit conditional-request
    /// cache (callers wanting `cache.*` metrics construct one with
    /// [`FrontCache::with_registry`]).
    pub fn with_cache(world: Arc<World>, cache: FrontCache) -> Self {
        Self::build(world, cache, RateLimiter::dissenter_per_url(), None)
    }

    /// Build with an explicit per-URL rate limiter in place of the
    /// advertised 10-req/min default. Tests and fast sweeps use a short
    /// window so runs that revisit the same comment pages (e.g. a
    /// crash-recovery resume right after a killed crawl) wait out
    /// seconds rather than the better part of a minute.
    pub fn with_rate_limit(world: Arc<World>, limit: u32, window_secs: u64) -> Self {
        let stamp = world.content_hash();
        Self::build(world, FrontCache::new(stamp), RateLimiter::new(limit, window_secs), None)
    }

    /// Build with both an explicit cache and an explicit limiter — the
    /// adversarial-traffic harness wants `cache.*` metrics *and* a short,
    /// penalty-enabled rate window on one front.
    pub fn with_parts(world: Arc<World>, cache: FrontCache, limiter: RateLimiter) -> Self {
        Self::build(world, cache, limiter, None)
    }

    /// Build with every knob explicit plus a shared [`SimClock`]: the
    /// rate limiter's window arithmetic (and so every `X-RateLimit-Reset`
    /// the front advertises) reads simulated time instead of the wall.
    /// Longitudinal sweeps use this so a crawler honoring a reset header
    /// can *advance the clock* rather than sleep, keeping resumed sweeps
    /// byte-replayable and fast.
    pub fn with_clock(
        world: Arc<World>,
        cache: FrontCache,
        limiter: RateLimiter,
        clock: SimClock,
    ) -> Self {
        Self::build(world, cache, limiter, Some(clock))
    }

    fn build(
        world: Arc<World>,
        cache: FrontCache,
        limiter: RateLimiter,
        clock: Option<SimClock>,
    ) -> Self {
        let mut router = Router::new();
        let limit_header = limiter.limit().to_string();
        let limiter = Arc::new(Mutex::new(limiter));
        let votes: VoteOverlay = Arc::new(Mutex::new(HashMap::new()));

        {
            let world = world.clone();
            let cache = cache.clone();
            router.route("GET", "/user/:username", move |req, p| {
                cache.respond(req, &visibility_class(&world, req), || user_page(&world, req, p))
            });
        }
        {
            let world = world.clone();
            let cache = cache.clone();
            let limiter = limiter.clone();
            let votes = votes.clone();
            let limit_header = limit_header.clone();
            let clock = clock.clone();
            router.route("GET", "/url/:cuid", move |req, p| {
                let now = clock.as_ref().map(SimClock::now).unwrap_or_else(now_secs);
                let decision = limiter.lock().check(req.path(), now);
                match decision {
                    platform::ratelimit::RateDecision::Deny { reset_at, penalized } => {
                        let mut r = Response::status(Status::TOO_MANY);
                        r.headers.add("X-RateLimit-Limit", &limit_header);
                        r.headers.add("X-RateLimit-Reset", &reset_at.to_string());
                        if penalized {
                            // This deny extended a greedy-client lockout;
                            // marked so abuse oracles can reconcile the
                            // limiter's penalized counter against what
                            // clients actually observed.
                            r.headers.add("X-RateLimit-Penalized", "1");
                        }
                        r
                    }
                    platform::ratelimit::RateDecision::Allow { remaining, reset_at } => {
                        let mut r = cache.conditional_only(
                            req,
                            &visibility_class(&world, req),
                            || comment_page(&world, &votes, req, p),
                        );
                        r.headers.add("X-RateLimit-Limit", &limit_header);
                        r.headers.add("X-RateLimit-Remaining", &remaining.to_string());
                        r.headers.add("X-RateLimit-Reset", &reset_at.to_string());
                        r
                    }
                }
            });
        }
        {
            let world = world.clone();
            let cache = cache.clone();
            let votes = votes.clone();
            router.route("POST", "/url/:cuid/vote", move |req, p| {
                vote(&world, &votes, &cache, req, p)
            });
        }
        {
            let world = world.clone();
            let cache = cache.clone();
            router.route("GET", "/comment/:cid", move |req, p| {
                cache.respond(req, &visibility_class(&world, req), || {
                    single_comment_page(&world, req, p)
                })
            });
        }
        {
            let world = world.clone();
            router.route("GET", "/discussion/begin", move |req, _| {
                discussion_begin(&world, req)
            });
        }
        Self { router, cache, limiter, config_override: None }
    }

    /// Pin an explicit server configuration for this front (returned by
    /// [`Front::server_config`] instead of the fleet-wide base).
    pub fn with_server_config(mut self, config: ServerConfig) -> Self {
        self.config_override = Some(config);
        self
    }

    /// The front's conditional-request cache.
    pub fn cache(&self) -> &FrontCache {
        &self.cache
    }

    /// The per-URL limiter's running decision totals, for oracles that
    /// reconcile server books against client-observed 429s.
    pub fn rate_stats(&self) -> platform::RateStats {
        self.limiter.lock().stats()
    }
}

impl Handler for DissenterFront {
    fn handle(&self, req: &Request) -> Response {
        self.router.dispatch(req)
    }
}

impl Front for DissenterFront {
    fn name(&self) -> &'static str {
        "dissenter"
    }

    fn server_config(&self, base: &ServerConfig) -> ServerConfig {
        self.config_override.clone().unwrap_or_else(|| base.clone())
    }
}

fn now_secs() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

/// Boilerplate padding bringing real pages over the 10 kB threshold the
/// size-probe relies on (§3.1) — the real site ships large CSS/JS bundles.
/// Built once: the probe phase requests a user page per Gab account
/// (1.3M at paper scale), so rebuilding the filler per request would be
/// pure waste.
fn page_chrome() -> &'static str {
    static CHROME: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    CHROME.get_or_init(|| {
        let mut filler = String::with_capacity(11 * 1024);
        filler.push_str("<style>\n");
        for i in 0..340 {
            filler.push_str(&format!(
                ".c{i}{{display:flex;margin:{}px;padding:4px;color:#22{:02x}44}}\n",
                i % 17,
                i % 256
            ));
        }
        filler.push_str("</style>");
        filler
    })
}

fn user_page(world: &World, _req: &Request, p: &Params) -> Response {
    let username = p.get("username").unwrap_or("");
    let Some(idx) = world.user_by_username(username) else {
        return Response::not_found();
    };
    let user = world.user(idx);
    let Some(author_id) = user.author_id else {
        // Gab-only account: no Dissenter home page.
        return Response::not_found();
    };
    let urls = world.dissenter.urls_for_author(author_id);
    let mut body = String::with_capacity(12 * 1024);
    body.push_str("<html><head><title>Dissenter</title>");
    body.push_str(page_chrome());
    body.push_str("</head><body>");
    body.push_str(&format!(
        "<div class=\"profile\" data-author-id=\"{}\"><h1>@{}</h1><h2>{}</h2><p class=\"bio\">{}</p></div>",
        author_id,
        user.username,
        html_escape(&user.display_name),
        html_escape(&user.bio)
    ));
    body.push_str("<ul class=\"commented-urls\">");
    for u in urls {
        body.push_str(&format!(
            "<li><a href=\"/url/{}\" data-commenturl-id=\"{}\">{}</a></li>",
            u.id,
            u.id,
            html_escape(&u.url)
        ));
    }
    body.push_str("</ul></body></html>");
    Response::html(body)
}

fn comment_page(world: &World, votes: &VoteOverlay, req: &Request, p: &Params) -> Response {
    let Some(cuid) = p.get("cuid").and_then(|s| s.parse::<ObjectId>().ok()) else {
        return Response::not_found();
    };
    let Some(url) = world.dissenter.url_by_id(cuid) else {
        return Response::not_found();
    };
    let viewer = viewer_for(world, req);
    let comments = world.dissenter.visible_comments(cuid, viewer);
    let (extra_up, extra_down) = votes.lock().get(&cuid).copied().unwrap_or((0, 0));
    let mut body = String::with_capacity(4096);
    body.push_str("<html><head><title>");
    body.push_str(&html_escape(&url.title));
    body.push_str("</title></head><body>");
    body.push_str(&format!(
        "<div class=\"thread\" data-commenturl-id=\"{}\" data-url=\"{}\" data-upvotes=\"{}\" data-downvotes=\"{}\" data-comment-count=\"{}\"><p class=\"description\">{}</p></div>",
        url.id,
        html_escape(&url.url),
        url.upvotes as u64 + extra_up,
        url.downvotes as u64 + extra_down,
        world.dissenter.comment_count(cuid),
        html_escape(&url.description),
    ));
    body.push_str("<ol class=\"comments\">");
    for c in comments {
        body.push_str(&format!(
            "<li class=\"comment\" data-comment-id=\"{}\" data-author-id=\"{}\" data-parent=\"{}\" data-created=\"{}\"><p>{}</p></li>",
            c.id,
            c.author_id,
            c.parent.map(|p| p.to_hex()).unwrap_or_default(),
            c.created_at,
            html_escape(&c.text),
        ));
    }
    body.push_str("</ol></body></html>");
    Response::html(body)
}

fn single_comment_page(world: &World, req: &Request, p: &Params) -> Response {
    let Some(cid) = p.get("cid").and_then(|s| s.parse::<ObjectId>().ok()) else {
        return Response::not_found();
    };
    let Some(comment) = world.dissenter.comment_by_id(cid) else {
        return Response::not_found();
    };
    let viewer = viewer_for(world, req);
    if !viewer.can_see(comment) {
        return Response::not_found();
    }
    let author_idx = world.user_by_author_id(comment.author_id);
    let mut body = String::with_capacity(2048);
    body.push_str("<html><head><title>Comment</title></head><body>");
    body.push_str(&format!(
        "<div class=\"comment\" data-comment-id=\"{}\" data-author-id=\"{}\"><p>{}</p></div>",
        comment.id,
        comment.author_id,
        html_escape(&comment.text)
    ));
    // The quirk §3.2 exploits: a commented-out JavaScript variable with
    // otherwise-undiscoverable user metadata.
    if let Some(idx) = author_idx {
        let u = world.user(idx);
        let meta = jsonlite::Value::object()
            .with("author_id", comment.author_id.to_hex())
            .with("username", u.username.as_str())
            .with("language", u.language.as_str())
            .with(
                "permissions",
                jsonlite::Value::object()
                    .with("canLogin", u.flags.can_login)
                    .with("canPost", u.flags.can_post)
                    .with("canReport", u.flags.can_report)
                    .with("canChat", u.flags.can_chat)
                    .with("canVote", u.flags.can_vote)
                    .with("isBanned", u.flags.is_banned)
                    .with("isAdmin", u.flags.is_admin)
                    .with("isModerator", u.flags.is_moderator)
                    .with("isPro", u.flags.is_pro)
                    .with("isDonor", u.flags.is_donor)
                    .with("isInvestor", u.flags.is_investor)
                    .with("isPremium", u.flags.is_premium)
                    .with("isTippable", u.flags.is_tippable)
                    .with("isPrivate", u.flags.is_private)
                    .with("verified", u.flags.verified),
            )
            .with(
                "viewFilters",
                jsonlite::Value::object()
                    .with("pro", u.filters.pro)
                    .with("verified", u.filters.verified)
                    .with("standard", u.filters.standard)
                    .with("nsfw", u.filters.nsfw)
                    .with("offensive", u.filters.offensive),
            );
        body.push_str(&format!(
            "<script>\n// var commentAuthor = [{}];\n</script>",
            jsonlite::to_string(&meta)
        ));
    }
    body.push_str("</body></html>");
    Response::html(body)
}

/// `POST /url/:cuid/vote?dir=up|down` — the one world-visible mutation
/// the front accepts. The tally lands in the front-level overlay and the
/// cache generation is bumped, so every outstanding ETag stops
/// validating and no cached body survives the change.
fn vote(
    world: &World,
    votes: &VoteOverlay,
    cache: &FrontCache,
    req: &Request,
    p: &Params,
) -> Response {
    let Some(cuid) = p.get("cuid").and_then(|s| s.parse::<ObjectId>().ok()) else {
        return Response::not_found();
    };
    let Some(url) = world.dissenter.url_by_id(cuid) else {
        return Response::not_found();
    };
    let up = match req.query("dir").as_deref() {
        Some("up") => true,
        Some("down") => false,
        _ => return Response::status(Status(400)),
    };
    let (u, d) = {
        let mut guard = votes.lock();
        let entry = guard.entry(cuid).or_insert((0, 0));
        if up {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
        *entry
    };
    cache.bump_generation();
    Response::json(jsonlite::to_string(
        &jsonlite::Value::object()
            .with("id", cuid.to_hex())
            .with("upvotes", url.upvotes as u64 + u)
            .with("downvotes", url.downvotes as u64 + d),
    ))
}

fn discussion_begin(world: &World, req: &Request) -> Response {
    let Some(url) = req.query("url") else {
        return Response::status(Status(400));
    };
    match world.dissenter.url_by_string(&url) {
        Some(u) => {
            let target = format!("/url/{}", u.id);
            let mut r = Response::status(Status(302));
            r.headers.add("Location", &target);
            r.body = format!("<a href=\"{target}\">moved</a>").into_bytes();
            r
        }
        None => {
            // New URL: an empty discussion page inviting the first comment.
            Response::html(format!(
                "<html><body><div class=\"thread\" data-url=\"{}\" data-comment-count=\"0\"></div><p>No comments yet.</p></body></html>",
                html_escape(&url)
            ))
        }
    }
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

/// Build the `/discussion/begin` query target for a raw URL.
pub fn discussion_target(url: &str) -> String {
    format!("/discussion/begin?url={}", percent_encode(url))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discussion_target_encodes_url() {
        let t = discussion_target("https://example.com/a b?x=1");
        assert!(t.starts_with("/discussion/begin?url="));
        assert!(!t.split_once('=').unwrap().1.contains(' '));
        assert!(!t.split_once('=').unwrap().1.contains('?'));
    }

    #[test]
    fn html_escape_round_trip_critical_chars() {
        assert_eq!(html_escape("<a href=\"x\">&"), "&lt;a href=&quot;x&quot;&gt;&amp;");
    }

    #[test]
    fn page_chrome_is_large_and_cached() {
        let a = page_chrome();
        assert!(a.len() > 10 * 1024, "filler must clear the probe threshold");
        let b = page_chrome();
        assert_eq!(a.as_ptr(), b.as_ptr(), "cached: same allocation");
    }
}
