#![warn(missing_docs)]
//! HTTP front-ends for the simulated services.
//!
//! Four independent servers (mirroring the four hosts the paper talks to):
//!
//! * [`dissenter`] — `dissenter.com`: user home pages (≥10 kB for real
//!   accounts vs ~150 B misses — the §3.1 probe signal), per-URL comment
//!   pages with vote counts and the per-URL 10-req/min rate-limit
//!   headers, per-comment pages embedding the commented-out
//!   `commentAuthor` JavaScript with hidden user metadata (§3.2), and the
//!   Gab-Trends-style `/discussion/begin?url=…` lookup;
//! * [`gab`] — `gab.com`: the JSON accounts API keyed by sequential ID
//!   (with 404s for unallocated IDs), paginated follower/following
//!   endpoints, and `X-RateLimit-Remaining` / `X-RateLimit-Reset`
//!   headers (§3.4);
//! * [`reddit`] — `reddit.com` + Pushshift: account existence and full
//!   comment-history queries (§4.4.1);
//! * [`youtube`] — the Selenium-rendered view of YouTube pages the paper
//!   scraped (§3.3), exposed as a `render?url=…` endpoint returning the
//!   video/channel/user state as JSON.
//!
//! Authentication is a `session` cookie of the form `u:<username>`; the
//! comment-visibility rules then apply that user's stored view filters —
//! NSFW / "offensive" shadow content appears only for opted-in sessions.
//!
//! All four fronts speak the conditional-request protocol in [`cache`]:
//! cacheable 200s carry strong ETags derived from the world's content
//! hash, repeat requests with `If-None-Match` get bodyless `304`s, and
//! cache entries are keyed by the requester's visibility class so shadow
//! views never leak across sessions.
//!
//! Each front implements [`Front`] — a [`Handler`] with a stable name and
//! a per-service [`ServerConfig`] override — and [`SimServices::start_with`]
//! starts one server per front from a [`SimFronts`] set. The one-line
//! [`SimServices::start`] remains for callers happy with four identical
//! configs.

pub mod cache;
pub mod dissenter;
pub mod gab;
pub mod reddit;
pub mod stamps;
pub mod youtube;

use httpnet::{Handler, Server, ServerConfig};
use platform::World;
use std::sync::Arc;

/// A simulated service front: an HTTP [`Handler`] plus the metadata
/// [`SimServices::start_with`] needs to run it as its own server.
pub trait Front: Handler {
    /// Stable service name (matches the crawler's endpoint classes:
    /// `dissenter`, `gab`, `reddit`, `youtube`).
    fn name(&self) -> &'static str;

    /// The server configuration this front should run under, given the
    /// fleet-wide base. The default keeps the base; fronts with an
    /// explicit override (see `with_server_config` on each front) return
    /// it instead.
    fn server_config(&self, base: &ServerConfig) -> ServerConfig {
        base.clone()
    }
}

/// The four concrete fronts over one shared world, ready to start.
/// Construct with [`SimFronts::new`], optionally swap in customized
/// fronts (rate limits, cache registries, per-service configs), then
/// hand to [`SimServices::start_with`].
pub struct SimFronts {
    /// dissenter.com handler.
    pub dissenter: Arc<dissenter::DissenterFront>,
    /// gab.com handler.
    pub gab: Arc<gab::GabFront>,
    /// reddit.com / Pushshift handler.
    pub reddit: Arc<reddit::RedditFront>,
    /// Rendered-YouTube handler.
    pub youtube: Arc<youtube::YouTubeFront>,
}

impl SimFronts {
    /// Default fronts over a shared world.
    pub fn new(world: Arc<World>) -> Self {
        Self {
            dissenter: Arc::new(dissenter::DissenterFront::new(world.clone())),
            gab: Arc::new(gab::GabFront::new(world.clone())),
            reddit: Arc::new(reddit::RedditFront::new(world.clone())),
            youtube: Arc::new(youtube::YouTubeFront::new(world)),
        }
    }

    /// Default fronts whose response caches publish `cache.*` metrics
    /// into `registry` (all four share the registry's counters).
    pub fn with_registry(world: Arc<World>, registry: &obs::Registry) -> Self {
        let stamp = world.content_hash();
        let front_cache =
            || cache::FrontCache::with_registry(stamp, httpnet::CacheConfig::default(), registry);
        Self {
            dissenter: Arc::new(dissenter::DissenterFront::with_cache(
                world.clone(),
                front_cache(),
            )),
            gab: Arc::new(gab::GabFront::with_cache(world.clone(), front_cache())),
            reddit: Arc::new(reddit::RedditFront::with_cache(world.clone(), front_cache())),
            youtube: Arc::new(youtube::YouTubeFront::with_cache(world, front_cache())),
        }
    }

    /// Fronts for one longitudinal sweep over an evolving world:
    ///
    /// * ETags carry **per-target stamps** ([`stamps`]) instead of the
    ///   whole-world digest, so a client's validators from an earlier
    ///   sweep keep revalidating pages whose entities didn't change;
    /// * every rate-limit decision (and `X-RateLimit-Reset` header) is
    ///   keyed to the shared [`platform::SimClock`], so crawler waits
    ///   advance simulated time instead of the wall;
    /// * `cache.*` metrics land in `registry`.
    pub fn for_sweep(
        world: Arc<World>,
        registry: &obs::Registry,
        clock: platform::SimClock,
    ) -> Self {
        let stamp = world.content_hash();
        let front_cache = |resolver: cache::StampResolver| {
            cache::FrontCache::with_registry(stamp, httpnet::CacheConfig::default(), registry)
                .with_stamp_resolver(resolver)
        };
        Self {
            dissenter: Arc::new(dissenter::DissenterFront::with_clock(
                world.clone(),
                front_cache(stamps::dissenter_stamps(world.clone())),
                platform::RateLimiter::dissenter_per_url(),
                clock.clone(),
            )),
            gab: Arc::new(gab::GabFront::with_clock(
                world.clone(),
                front_cache(stamps::gab_stamps(world.clone())),
                gab::RATE_LIMIT,
                300,
                clock,
            )),
            reddit: Arc::new(reddit::RedditFront::with_cache(
                world.clone(),
                front_cache(stamps::reddit_stamps(world.clone())),
            )),
            youtube: Arc::new(youtube::YouTubeFront::with_cache(
                world.clone(),
                front_cache(stamps::youtube_stamps(world)),
            )),
        }
    }
}

/// All four servers bound to ephemeral loopback ports.
#[derive(Debug)]
pub struct SimServices {
    /// dissenter.com stand-in.
    pub dissenter: Server,
    /// gab.com stand-in.
    pub gab: Server,
    /// reddit.com / Pushshift stand-in.
    pub reddit: Server,
    /// Selenium-rendered YouTube stand-in.
    pub youtube: Server,
}

impl SimServices {
    /// Start default fronts over a shared world, all under one config.
    pub fn start(world: Arc<World>, config: ServerConfig) -> std::io::Result<SimServices> {
        Self::start_with(SimFronts::new(world), config)
    }

    /// Start one server per front, each under the config the front asks
    /// for ([`Front::server_config`] applied to `base`).
    pub fn start_with(fronts: SimFronts, base: ServerConfig) -> std::io::Result<SimServices> {
        fn launch<F: Front + 'static>(front: Arc<F>, base: &ServerConfig) -> std::io::Result<Server> {
            let config = front.server_config(base);
            Server::start(front as Arc<dyn Handler>, config)
        }
        Ok(SimServices {
            dissenter: launch(fronts.dissenter, &base)?,
            gab: launch(fronts.gab, &base)?,
            reddit: launch(fronts.reddit, &base)?,
            youtube: launch(fronts.youtube, &base)?,
        })
    }
}

/// Resolve a request's viewer from its `session` cookie (`u:<username>`).
pub(crate) fn viewer_for(world: &World, req: &httpnet::Request) -> platform::Viewer {
    let Some(session) = req.cookie("session") else {
        return platform::Viewer::Anonymous;
    };
    // The measurement team's own accounts (§3.2: "the HTTP cookies of an
    // authenticated account we created with NSFW and offensive content
    // enabled separately").
    if let Some(mode) = session.strip_prefix("crawler:") {
        let filters = match mode {
            "nsfw" => platform::ViewFilters { nsfw: true, ..Default::default() },
            "offensive" => platform::ViewFilters { offensive: true, ..Default::default() },
            "both" => platform::ViewFilters { nsfw: true, offensive: true, ..Default::default() },
            _ => platform::ViewFilters::default(),
        };
        return platform::Viewer::Authenticated(filters);
    }
    let Some(username) = session.strip_prefix("u:") else {
        return platform::Viewer::Anonymous;
    };
    match world.user_by_username(username) {
        Some(idx) => {
            let u = world.user(idx);
            // Deleted Gab accounts can no longer authenticate (§4.1.1).
            if u.gab_deleted || !u.flags.can_login || u.author_id.is_none() {
                platform::Viewer::Anonymous
            } else {
                platform::Viewer::Authenticated(u.filters)
            }
        }
        None => platform::Viewer::Anonymous,
    }
}
