//! The assembled study report: every §4 table and figure from one crawl.

use crate::content::{language_table, youtube_breakdown, YoutubeBreakdown};
use crate::domains::{domain_comment_medians, domain_table, tld_table, ShareRow};
use crate::social::{analyze_social, SocialAnalysis};
use crate::toxicity::{
    figure4, figure7_dataset, figure8, score_store_pooled, score_texts_pooled, CommentScores,
    Figure4, Figure7Dataset, Figure8,
};
use crate::url::{census, UrlCensus};
use crate::users::{
    activity_concentration, gab_growth, ghost_users, joined_by, table1, ActivityConcentration,
    FlagRow, GabGrowth,
};
use crate::votes::{figure5, Figure5};
use crawler::store::CrawlStore;
use graph::CoreCriteria;
use ids::ObjectId;
use platform::BaselineCorpus;
use std::collections::HashMap;
use textkit::langid::Lang;

/// Headline counts (§1, §4.1.1).
#[derive(Debug, Clone, Default)]
pub struct Overview {
    /// Gab accounts enumerated.
    pub gab_accounts: usize,
    /// Dissenter accounts found by the probe.
    pub dissenter_users: usize,
    /// Users discovered only through comments (deleted Gab accounts).
    pub ghost_users: usize,
    /// Users with ≥1 comment.
    pub active_users: usize,
    /// Total comments and replies.
    pub comments: usize,
    /// Distinct commented URLs.
    pub urls: usize,
    /// NSFW-labeled comments.
    pub nsfw_comments: usize,
    /// "Offensive"-labeled comments.
    pub offensive_comments: usize,
    /// Fraction of users joined by March 2019.
    pub joined_by_march_2019: f64,
    /// Shadow-label validation (sampled, confirmed).
    pub shadow_validation: (usize, usize),
}

/// Figure 6: Dissenter-vs-Reddit comment ratios.
#[derive(Debug, Clone, Default)]
pub struct CommentRatio {
    /// Ratio `d/(d+r)` per user with activity on either platform.
    pub ratios: Vec<f64>,
    /// Usernames matched on Reddit.
    pub matched_usernames: usize,
    /// Users active on at least one platform (the Fig. 6 population).
    pub active_either: usize,
    /// Fraction posting only on Dissenter (ratio = 1).
    pub dissenter_only: f64,
    /// Fraction posting only on Reddit (ratio = 0).
    pub reddit_only: f64,
}

/// Table 3 row.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// Dataset name.
    pub name: String,
    /// Declared comment count (full corpus size).
    pub declared_comments: u64,
    /// Comments actually scored (subsampled corpus).
    pub scored_comments: usize,
    /// Dissenter users represented (Reddit only).
    pub dissenter_users: Option<usize>,
}

/// Everything §4 reports.
#[derive(Debug)]
pub struct StudyReport {
    /// Headline counts.
    pub overview: Overview,
    /// Fig. 2.
    pub gab_growth: GabGrowth,
    /// Fig. 3.
    pub activity: ActivityConcentration,
    /// Table 1 (population size, rows).
    pub table1: (usize, Vec<FlagRow>),
    /// Table 2 left half.
    pub tlds: Vec<ShareRow>,
    /// Table 2 right half.
    pub domains: Vec<ShareRow>,
    /// Per-domain comment-volume medians (top rows).
    pub domain_medians: Vec<(String, usize, f64)>,
    /// §4.2.1 URL anomaly census.
    pub url_census: UrlCensus,
    /// §4.2.2.
    pub youtube: YoutubeBreakdown,
    /// §4.2.3 language table.
    pub languages: Vec<(Lang, usize, f64)>,
    /// Fig. 4.
    pub figure4: Figure4,
    /// Fig. 5.
    pub figure5: Figure5,
    /// Fig. 6.
    pub comment_ratio: CommentRatio,
    /// Table 3.
    pub table3: Vec<BaselineRow>,
    /// Fig. 7 datasets (Dissenter, Reddit, NY Times, Daily Mail).
    pub figure7: Vec<Figure7Dataset>,
    /// Fig. 8.
    pub figure8: Figure8,
    /// §4.5.
    pub social: SocialAnalysis,
    /// Per-comment scores (kept for downstream consumers, e.g. the SVM
    /// application pass and ablation benches).
    pub scores: HashMap<ObjectId, CommentScores>,
}

/// Build the full report from a crawl plus the Table-3 baseline corpora.
///
/// `declared_reddit_total` lets the caller report Table 3's full Reddit
/// corpus size (the crawl materializes capped per-user histories).
pub fn build_report(
    store: &CrawlStore,
    baselines: &[BaselineCorpus],
    workers: usize,
) -> StudyReport {
    build_report_with_metrics(store, baselines, workers, None)
}

/// [`build_report`] exporting per-scorer throughput to `metrics` (see
/// [`crate::toxicity::score_texts_with_metrics`]). Spins up a transient
/// `workers`-sized scoring pool.
pub fn build_report_with_metrics(
    store: &CrawlStore,
    baselines: &[BaselineCorpus],
    workers: usize,
    metrics: Option<&obs::Registry>,
) -> StudyReport {
    let workers = workers.max(1);
    let pool = httpnet::ThreadPool::new(workers, workers * 2);
    build_report_pooled(store, baselines, &pool, metrics)
}

/// How the report's table aggregations run.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Route the Table-2 TLD/domain tables, per-domain medians, and the
    /// language table through [`crate::spill`]'s external-merge path
    /// (bounded resident memory, byte-identical rows).
    pub out_of_core: bool,
    /// Distinct resident keys per spill buffer before a run is written.
    pub spill_budget: usize,
}

impl Default for ReportOptions {
    fn default() -> Self {
        Self { out_of_core: false, spill_budget: crate::spill::DEFAULT_SPILL_BUDGET }
    }
}

impl ReportOptions {
    /// The out-of-core configuration with the default spill budget.
    pub fn out_of_core() -> Self {
        Self { out_of_core: true, ..Self::default() }
    }
}

/// [`build_report`] with every scoring pass sharded onto a shared
/// [`httpnet::ThreadPool`] (see [`score_texts_pooled`] for the
/// determinism contract and the metrics exported).
pub fn build_report_pooled(
    store: &CrawlStore,
    baselines: &[BaselineCorpus],
    pool: &httpnet::ThreadPool,
    metrics: Option<&obs::Registry>,
) -> StudyReport {
    build_report_pooled_opts(store, baselines, pool, metrics, &ReportOptions::default())
}

/// [`build_report_pooled`] with explicit [`ReportOptions`]. With
/// `out_of_core` set, the share tables and language table aggregate via
/// external-merge spill files instead of resident hash maps — the
/// `scale.merge` simcheck oracle holds the two paths byte-identical.
pub fn build_report_pooled_opts(
    store: &CrawlStore,
    baselines: &[BaselineCorpus],
    pool: &httpnet::ThreadPool,
    metrics: Option<&obs::Registry>,
    options: &ReportOptions,
) -> StudyReport {
    let scores = score_store_pooled(store, pool, metrics);

    let ghosts = ghost_users(store);
    let overview = Overview {
        gab_accounts: store.gab_accounts.len(),
        dissenter_users: store.dissenter_usernames.len() + ghosts.len(),
        ghost_users: ghosts.len(),
        active_users: store.comments_by_author().len(),
        comments: store.comments.len(),
        urls: store.urls.len(),
        nsfw_comments: store.nsfw_comments().count(),
        offensive_comments: store.offensive_comments().count(),
        joined_by_march_2019: joined_by(store, 2019, 3),
        shadow_validation: store.shadow_validation,
    };

    // Stores are hash maps: iterate urls by id, reddit matches by
    // username, and scores by comment id so every derived sequence below
    // is identical across runs — downstream order-insensitivity is then a
    // bonus, not a load-bearing assumption of the byte-identical export
    // contract.
    let mut url_ids: Vec<ObjectId> = store.urls.keys().copied().collect();
    url_ids.sort_unstable();
    let url_strings: Vec<&str> = url_ids.iter().map(|id| store.urls[id].url.as_str()).collect();
    let url_comment_counts: Vec<(&str, usize)> = url_ids
        .iter()
        .map(|id| {
            let u = &store.urls[id];
            (u.url.as_str(), u.declared_comment_count)
        })
        .collect();
    let mut reddit_names: Vec<&str> = store.reddit.keys().map(String::as_str).collect();
    reddit_names.sort_unstable();

    // Fig. 6 / Table 3 Reddit side.
    let dissenter_counts = crate::users::comment_counts(store);
    let mut ratios = Vec::new();
    let mut active_either = 0usize;
    for name in &reddit_names {
        let m = &store.reddit[*name];
        let d = dissenter_counts.get(*name).copied().unwrap_or(0) as f64;
        let r = m.total_comments as f64;
        if d + r > 0.0 {
            active_either += 1;
            ratios.push(d / (d + r));
        }
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let comment_ratio = CommentRatio {
        matched_usernames: store.reddit.len(),
        active_either,
        dissenter_only: ratios.iter().filter(|&&r| r >= 1.0).count() as f64
            / ratios.len().max(1) as f64,
        reddit_only: ratios.iter().filter(|&&r| r <= 0.0).count() as f64
            / ratios.len().max(1) as f64,
        ratios,
    };

    // Fig. 7: Dissenter + Reddit (crawled texts) + the two baselines.
    let mut comment_ids: Vec<ObjectId> = scores.keys().copied().collect();
    comment_ids.sort_unstable();
    let dissenter_scores: Vec<classify::PerspectiveScores> =
        comment_ids.iter().map(|id| scores[id].perspective).collect();
    let mut figure7 = vec![figure7_dataset("Dissenter", &dissenter_scores)];
    let reddit_texts: Vec<&str> = reddit_names
        .iter()
        .flat_map(|name| store.reddit[*name].comments.iter().map(String::as_str))
        .collect();
    let reddit_scored: Vec<classify::PerspectiveScores> =
        score_texts_pooled(&reddit_texts, pool, metrics)
            .iter()
            .map(|s| s.perspective)
            .collect();
    figure7.push(figure7_dataset("Reddit", &reddit_scored));
    let mut table3 = vec![BaselineRow {
        name: "Reddit".into(),
        declared_comments: store.reddit.values().map(|m| m.total_comments).sum(),
        scored_comments: reddit_texts.len(),
        dissenter_users: Some(
            store.reddit.values().filter(|m| m.total_comments > 0).count(),
        ),
    }];
    for corpus in baselines {
        let texts: Vec<&str> = corpus.comments.iter().map(String::as_str).collect();
        let scored: Vec<classify::PerspectiveScores> =
            score_texts_pooled(&texts, pool, metrics)
                .iter()
                .map(|s| s.perspective)
                .collect();
        figure7.push(figure7_dataset(&corpus.name, &scored));
        table3.push(BaselineRow {
            name: corpus.name.clone(),
            declared_comments: corpus.comments.len() as u64,
            scored_comments: corpus.comments.len(),
            dissenter_users: None,
        });
    }

    // Table 2 + languages: the only whole-corpus aggregations with
    // unbounded key sets, so they are the ones the out-of-core path
    // reroutes. Spill-run I/O hits the temp dir only; failure there is
    // unrecoverable for the run.
    let (tlds, domains, domain_medians, languages) = if options.out_of_core {
        let budget = options.spill_budget;
        (
            crate::spill::tld_table_spilled(url_strings.iter().copied(), 12, budget)
                .expect("spill run I/O"),
            crate::spill::domain_table_spilled(url_strings.iter().copied(), 12, budget)
                .expect("spill run I/O"),
            crate::spill::domain_comment_medians_spilled(
                url_comment_counts.iter().copied(),
                1,
                budget,
            )
            .expect("spill run I/O")
            .into_iter()
            .take(12)
            .collect(),
            crate::spill::language_table_spilled(store, budget).expect("spill run I/O"),
        )
    } else {
        (
            tld_table(url_strings.iter().copied(), 12),
            domain_table(url_strings.iter().copied(), 12),
            domain_comment_medians(url_comment_counts.iter().copied(), 1)
                .into_iter()
                .take(12)
                .collect(),
            language_table(store),
        )
    };

    StudyReport {
        overview,
        gab_growth: gab_growth(store),
        activity: activity_concentration(store),
        table1: table1(store),
        tlds,
        domains,
        domain_medians,
        url_census: census(url_strings.iter().copied()),
        youtube: youtube_breakdown(store),
        languages,
        figure4: figure4(store, &scores),
        figure5: figure5(store, &scores),
        comment_ratio,
        table3,
        figure7,
        figure8: figure8(store, &scores),
        social: analyze_social(store, &scores, CoreCriteria::default()),
        scores,
    }
}

#[cfg(test)]
mod tests {
    // `build_report` is exercised end-to-end by the workspace integration
    // tests (tests/full_study.rs) against a crawled world; unit coverage
    // for each section lives in the sibling modules.
}
