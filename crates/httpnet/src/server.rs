//! The event-driven HTTP server.
//!
//! An accept loop on a dedicated thread feeds accepted connections
//! round-robin to `workers` epoll reactors (see [`crate::reactor`]); each
//! reactor multiplexes its connections on a readiness loop with
//! per-connection state machines, so a stalled or fault-delayed peer
//! never pins a thread. Transient `accept()` failures (EMFILE during a
//! connection flood) back off exponentially instead of spinning hot, and
//! are counted under `accept.errors` when a metrics registry is set.
//! Shutdown is cooperative: a flag is set, the accept loop is woken with
//! a self-connection, and every reactor is woken through its eventfd.

use crate::fault::{FaultConfig, FaultInjector};
use crate::http::{Request, Response, Status};
use crate::reactor::{Inbox, Reactor, ReactorShared};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A request handler. Implementations must be thread-safe; the server
/// invokes them concurrently (one at a time per reactor).
pub trait Handler: Send + Sync + 'static {
    /// Produce a response for one request.
    fn handle(&self, req: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: &Request) -> Response {
        self(req)
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Reactor (event-loop worker) threads.
    pub workers: usize,
    /// Pending-connection hand-off queue per reactor.
    pub queue: usize,
    /// Per-connection read timeout (enforced to sweep granularity,
    /// ~200 ms).
    pub read_timeout: Duration,
    /// Per-connection write timeout — symmetric with `read_timeout`: a
    /// peer that stops draining its receive window must not pin a
    /// connection slot forever any more than a peer that stops sending.
    pub write_timeout: Duration,
    /// Maximum keep-alive requests per connection.
    pub max_requests_per_conn: usize,
    /// Total time a connection may take to deliver one complete request,
    /// measured from its first byte. Unlike `read_timeout` (refreshed on
    /// every read, so a slowloris peer trickling one byte per interval
    /// refreshes it forever), this budget is pinned at request start;
    /// connections that exceed it are closed and counted under
    /// `conn.read_timeouts`.
    pub header_read_timeout: Duration,
    /// Ceiling on buffered, not-yet-parsed request bytes per connection.
    /// A peer that exceeds it (shoveling bytes that never form a request)
    /// is closed and counted under `conn.oversize`.
    pub max_inflight_request_bytes: usize,
    /// Fault injection.
    pub faults: FaultConfig,
    /// Optional metrics registry: handler panics are counted under
    /// `pool.job_panics` (name kept from the worker-pool era) and accept
    /// failures under `accept.errors` when set.
    pub metrics: Option<obs::Registry>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 8,
            queue: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_requests_per_conn: 1000,
            header_read_timeout: Duration::from_secs(10),
            max_inflight_request_bytes: crate::http::MAX_BODY + crate::http::MAX_LINE * 2,
            faults: FaultConfig::none(),
            metrics: None,
        }
    }
}

/// Smallest accept-error backoff; doubles per consecutive failure.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(1);
/// Backoff cap, so recovery after a long fd-exhaustion episode is quick.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(100);

/// A running HTTP server. Dropping it shuts it down and joins all threads.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    reactor_threads: Vec<std::thread::JoinHandle<()>>,
    inboxes: Vec<Arc<Inbox>>,
    requests_served: Arc<AtomicU64>,
    access_log: Arc<crate::log::AccessLog>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Server({})", self.addr)
    }
}

impl Server {
    /// Bind to `127.0.0.1:0` (ephemeral port) and start serving.
    pub fn start(handler: Arc<dyn Handler>, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests_served = Arc::new(AtomicU64::new(0));
        let access_log = Arc::new(crate::log::AccessLog::new(4096));
        let accept_errors = config.metrics.as_ref().map(|r| r.counter("accept.errors"));
        let handler_panics = config.metrics.as_ref().map(|r| r.counter("pool.job_panics"));
        let read_timeouts = config.metrics.as_ref().map(|r| r.counter("conn.read_timeouts"));
        let write_timeouts = config.metrics.as_ref().map(|r| r.counter("conn.write_timeouts"));
        let oversize = config.metrics.as_ref().map(|r| r.counter("conn.oversize"));

        let shared = Arc::new(ReactorShared {
            handler,
            injector: Arc::new(FaultInjector::new(config.faults)),
            requests_served: requests_served.clone(),
            access_log: access_log.clone(),
            stop: stop.clone(),
            config: config.clone(),
            handler_panics,
            read_timeouts,
            write_timeouts,
            oversize,
        });

        let workers = config.workers.max(1);
        let mut inboxes = Vec::with_capacity(workers);
        let mut reactor_threads = Vec::with_capacity(workers);
        for i in 0..workers {
            let inbox = Inbox::new(config.queue)?;
            let reactor = Reactor::new(inbox.clone(), shared.clone())?;
            inboxes.push(inbox);
            reactor_threads.push(
                std::thread::Builder::new()
                    .name(format!("httpnet-reactor-{i}"))
                    .spawn(move || reactor.run())?,
            );
        }

        let accept_stop = stop.clone();
        let accept_inboxes = inboxes.clone();
        let accept_thread = std::thread::Builder::new()
            .name("httpnet-accept".into())
            .spawn(move || {
                accept_loop(listener, accept_inboxes, accept_stop, accept_errors);
            })?;

        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            reactor_threads,
            inboxes,
            requests_served,
            access_log,
        })
    }

    /// The server's access log (bounded ring of recent requests).
    pub fn access_log(&self) -> &crate::log::AccessLog {
        &self.access_log
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::SeqCst)
    }

    /// Stop accepting and join all threads.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for inbox in &self.inboxes {
            inbox.wake();
        }
        for t in self.reactor_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accept connections and hand them to reactors round-robin. Errors from
/// `accept()` (fd exhaustion, aborted handshakes on some platforms) back
/// off exponentially up to [`ACCEPT_BACKOFF_MAX`] instead of spinning.
fn accept_loop(
    listener: TcpListener,
    inboxes: Vec<Arc<Inbox>>,
    stop: Arc<AtomicBool>,
    accept_errors: Option<obs::Counter>,
) {
    let mut next = 0usize;
    let mut backoff = ACCEPT_BACKOFF_MIN;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = ACCEPT_BACKOFF_MIN;
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let mut pending = Some(stream);
                'place: while let Some(s) = pending.take() {
                    let mut cur = s;
                    for k in 0..inboxes.len() {
                        let i = (next + k) % inboxes.len();
                        match inboxes[i].push(cur) {
                            Ok(()) => {
                                next = (i + 1) % inboxes.len();
                                continue 'place;
                            }
                            Err(back) => cur = back,
                        }
                    }
                    // Every inbox is full: brief pause, then retry so the
                    // connection is not dropped under a burst.
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    pending = Some(cur);
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(c) = &accept_errors {
                    c.inc();
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
    }
}

/// A throttling response advertising when the client may retry.
/// `Retry-After` is written in (possibly fractional) seconds; the
/// simulation allows sub-second values so throttle tests stay fast.
pub(crate) fn retry_after_response(status: Status, retry_after: Duration) -> Response {
    let mut resp = Response::status(status);
    resp.headers.add("Retry-After", &format!("{}", retry_after.as_secs_f64()));
    resp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::http::WireError;

    fn echo_server(config: ServerConfig) -> Server {
        let handler: Arc<dyn Handler> =
            Arc::new(|req: &Request| Response::html(format!("echo:{}", req.path())));
        Server::start(handler, config).expect("server starts")
    }

    #[test]
    fn serves_requests() {
        let server = echo_server(ServerConfig::default());
        let client = Client::builder(server.addr()).build();
        let resp = client.get("/hello").unwrap();
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.text(), "echo:/hello");
        assert_eq!(server.requests_served(), 1);
    }

    #[test]
    fn keep_alive_reuses_connection() {
        let server = echo_server(ServerConfig::default());
        let mut client = Client::builder(server.addr()).build();
        client.keep_alive(true);
        for i in 0..5 {
            let resp = client.get(&format!("/r{i}")).unwrap();
            assert_eq!(resp.text(), format!("echo:/r{i}"));
        }
        assert_eq!(server.requests_served(), 5);
    }

    #[test]
    fn concurrent_clients() {
        let server = echo_server(ServerConfig::default());
        let addr = server.addr();
        let mut handles = Vec::new();
        for t in 0..8 {
            handles.push(std::thread::spawn(move || {
                let client = Client::builder(addr).build();
                for i in 0..20 {
                    let resp = client.get(&format!("/t{t}/{i}")).unwrap();
                    assert_eq!(resp.text(), format!("echo:/t{t}/{i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.requests_served(), 160);
    }

    #[test]
    fn access_log_records_served_requests() {
        let server = echo_server(ServerConfig::default());
        let client = Client::builder(server.addr()).build();
        client.get("/logged?x=1").unwrap();
        client.get("/another").unwrap();
        let snap = server.access_log().snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].target, "/logged?x=1");
        assert_eq!(snap[0].status, 200);
        assert!(snap[0].body_len > 0);
        assert_eq!(server.access_log().count_status_class(2), 2);
    }

    #[test]
    fn shutdown_is_idempotent_and_joins() {
        let mut server = echo_server(ServerConfig::default());
        server.shutdown();
        server.shutdown();
    }

    #[test]
    fn single_worker_multiplexes_concurrent_connections() {
        // One reactor, many simultaneous keep-alive connections: the
        // readiness loop must interleave them rather than serialize
        // whole connections.
        let server = echo_server(ServerConfig { workers: 1, ..Default::default() });
        let addr = server.addr();
        let mut handles = Vec::new();
        for t in 0..16 {
            handles.push(std::thread::spawn(move || {
                let mut client = Client::builder(addr).build();
                client.keep_alive(true);
                for i in 0..10 {
                    let resp = client.get(&format!("/w{t}/{i}")).unwrap();
                    assert_eq!(resp.text(), format!("echo:/w{t}/{i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.requests_served(), 160);
    }

    #[test]
    fn pipelined_requests_get_ordered_responses() {
        use std::io::{Read, Write};
        let server = echo_server(ServerConfig::default());
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let mut batch = Vec::new();
        for i in 0..4 {
            batch.extend_from_slice(
                format!("GET /p{i} HTTP/1.1\r\nHost: sim.local\r\n\r\n").as_bytes(),
            );
        }
        // Last request closes the connection so read_to_end terminates.
        batch.extend_from_slice(b"GET /last HTTP/1.1\r\nHost: sim.local\r\nConnection: close\r\n\r\n");
        s.write_all(&batch).unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        let mut pos = 0;
        for expect in ["echo:/p0", "echo:/p1", "echo:/p2", "echo:/p3", "echo:/last"] {
            let at = text[pos..].find(expect).unwrap_or_else(|| panic!("missing {expect}"));
            pos += at + expect.len();
        }
        assert_eq!(server.requests_served(), 5);
    }

    #[test]
    fn handler_panic_drops_connection_and_counts() {
        let registry = obs::Registry::new();
        let handler: Arc<dyn Handler> = Arc::new(|req: &Request| {
            if req.path() == "/boom" {
                panic!("handler exploded");
            }
            Response::html("ok".to_string())
        });
        let server = Server::start(
            handler,
            ServerConfig { metrics: Some(registry.clone()), ..Default::default() },
        )
        .unwrap();
        let client = Client::builder(server.addr()).build();
        assert!(client.get("/boom").is_err(), "panicked handler must close the connection");
        // The server survives and keeps serving.
        assert_eq!(client.get("/fine").unwrap().text(), "ok");
        assert_eq!(registry.snapshot().counter("pool.job_panics"), Some(1));
    }

    #[test]
    fn slow_draining_peer_gets_write_timeout_close() {
        use std::io::Write;
        // A response too large for kernel socket buffers (tcp_wmem +
        // tcp_rmem autotune to ~36 MB here) against a peer that never
        // reads: the reactor must park the connection on EPOLLOUT and
        // close it when the write deadline passes — without blocking
        // other connections.
        let big = "x".repeat(64 * 1024 * 1024);
        let handler: Arc<dyn Handler> = Arc::new(move |req: &Request| {
            if req.path() == "/big" {
                Response::html(big.clone())
            } else {
                Response::html("ok".to_string())
            }
        });
        let server = Server::start(
            handler,
            ServerConfig {
                workers: 1,
                write_timeout: Duration::from_millis(300),
                ..Default::default()
            },
        )
        .unwrap();
        let mut stuck = TcpStream::connect(server.addr()).unwrap();
        stuck.write_all(b"GET /big HTTP/1.1\r\nHost: sim.local\r\n\r\n").unwrap();
        // While the big write is parked, a well-behaved client on the
        // same single reactor is still served.
        std::thread::sleep(Duration::from_millis(50));
        let client = Client::builder(server.addr()).build();
        assert_eq!(client.get("/ok").unwrap().status, Status::OK);
        // Wait out the write deadline plus a sweep interval (draining
        // earlier would un-stick the write), then drain: buffered bytes
        // followed by EOF proves the sweep closed the connection.
        std::thread::sleep(Duration::from_millis(900));
        stuck.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut sink = vec![0u8; 1024 * 1024];
        loop {
            match std::io::Read::read(&mut stuck, &mut sink) {
                Ok(0) => break, // server closed
                Ok(_) => continue,
                Err(e) => panic!("server never closed the stuck connection: {e}"),
            }
        }
    }

    #[test]
    fn header_trickle_slowloris_is_closed_and_counted() {
        use std::io::Write;
        // One byte per 100 ms of a syntactically fine request that never
        // completes: each byte refreshes the per-read deadline, so only
        // the pinned `header_read_timeout` budget can stop it.
        let registry = obs::Registry::new();
        let server = echo_server(ServerConfig {
            workers: 1,
            read_timeout: Duration::from_secs(5),
            header_read_timeout: Duration::from_millis(300),
            metrics: Some(registry.clone()),
            ..Default::default()
        });
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let req = b"GET /slow HTTP/1.1\r\nHost: sim.local\r\nX-Pad: aaaaaaaaaaaaaaaa\r\n\r\n";
        let started = std::time::Instant::now();
        let mut fed = 0usize;
        let mut closed = false;
        for &b in req.iter() {
            if s.write_all(&[b]).is_err() {
                closed = true;
                break;
            }
            fed += 1;
            std::thread::sleep(Duration::from_millis(100));
            if started.elapsed() > Duration::from_secs(3) {
                break;
            }
        }
        // The write side may keep succeeding into kernel buffers after
        // the server closed; the read side is authoritative.
        if !closed {
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let mut byte = [0u8; 16];
            match std::io::Read::read(&mut s, &mut byte) {
                Ok(0) => {}
                Err(e) if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => panic!("server never closed the trickling connection"),
                Err(_) => {}
                Ok(n) => panic!("server answered a never-completed request with {n} bytes"),
            }
        }
        assert!(
            fed < req.len(),
            "server accepted the whole trickled request ({fed} bytes) without closing"
        );
        assert!(
            registry.snapshot().counter("conn.read_timeouts").unwrap_or(0) >= 1,
            "slowloris close must be counted under conn.read_timeouts"
        );
        // A well-behaved client on the same reactor is unaffected.
        let client = Client::builder(server.addr()).build();
        assert_eq!(client.get("/fine").unwrap().status, Status::OK);
    }

    #[test]
    fn peer_abort_mid_request_leaves_server_clean() {
        use std::io::Write;
        // Two flavors of mid-request abort against the reactor: a FIN
        // after half a request (EPOLLRDHUP / read 0) and an RST via
        // SO_LINGER(0) (EPOLLHUP / ECONNRESET). Neither may count a
        // served request or wedge the reactor.
        let registry = obs::Registry::new();
        let server = echo_server(ServerConfig {
            workers: 1,
            metrics: Some(registry.clone()),
            ..Default::default()
        });

        // FIN mid-request.
        let mut fin = TcpStream::connect(server.addr()).unwrap();
        fin.write_all(b"GET /half HTTP/1.1\r\nHos").unwrap();
        fin.shutdown(std::net::Shutdown::Write).unwrap();
        // RST mid-request: linger(0) turns close into a reset.
        let rst = TcpStream::connect(server.addr()).unwrap();
        (&rst).write_all(b"POST /half HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial").unwrap();
        set_linger_zero(&rst);
        drop(rst);
        std::thread::sleep(Duration::from_millis(100));

        // The reactor survives both aborts and never accounted them.
        let client = Client::builder(server.addr()).build();
        assert_eq!(client.get("/after").unwrap().text(), "echo:/after");
        assert_eq!(server.requests_served(), 1, "aborted requests must not be counted");
        drop(fin);
    }

    /// `SO_LINGER { on, 0 }` via setsockopt so dropping the socket sends
    /// RST instead of FIN (no libc: raw syscall like `crate::sys`).
    fn set_linger_zero(s: &TcpStream) {
        use std::os::fd::AsRawFd;
        #[repr(C)]
        struct Linger {
            onoff: i32,
            linger: i32,
        }
        let val = Linger { onoff: 1, linger: 0 };
        // SOL_SOCKET = 1, SO_LINGER = 13 on linux.
        let ret = unsafe {
            let fd = s.as_raw_fd() as usize;
            let level = 1usize;
            let optname = 13usize;
            let optval = &val as *const Linger as usize;
            let optlen = std::mem::size_of::<Linger>();
            syscall_setsockopt(fd, level, optname, optval, optlen)
        };
        assert_eq!(ret, 0, "setsockopt(SO_LINGER) failed");
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall_setsockopt(
        fd: usize,
        level: usize,
        optname: usize,
        optval: usize,
        optlen: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") 54isize => ret, // __NR_setsockopt
            in("rdi") fd,
            in("rsi") level,
            in("rdx") optname,
            in("r10") optval,
            in("r8") optlen,
            lateout("rcx") _,
            lateout("r11") _,
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall_setsockopt(
        fd: usize,
        level: usize,
        optname: usize,
        optval: usize,
        optlen: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc 0",
            inlateout("x8") 208isize => _, // __NR_setsockopt
            inlateout("x0") fd as isize => ret,
            in("x1") level,
            in("x2") optname,
            in("x3") optval,
            in("x4") optlen,
        );
        ret
    }

    #[test]
    fn oversize_inflight_request_is_closed_and_counted() {
        use std::io::Write;
        let registry = obs::Registry::new();
        let server = echo_server(ServerConfig {
            workers: 1,
            max_inflight_request_bytes: 64 * 1024,
            metrics: Some(registry.clone()),
            ..Default::default()
        });
        let mut s = TcpStream::connect(server.addr()).unwrap();
        // Headers that never end: the buffered bytes cross the ceiling
        // long before any request parses.
        s.write_all(b"GET /big HTTP/1.1\r\n").unwrap();
        let chunk = format!("X-Fill: {}\r\n", "a".repeat(4000));
        let mut closed = false;
        for _ in 0..64 {
            if s.write_all(chunk.as_bytes()).is_err() {
                closed = true;
                break;
            }
        }
        if !closed {
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let mut byte = [0u8; 16];
            match std::io::Read::read(&mut s, &mut byte) {
                Ok(0) => {}
                Err(e) if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => panic!("server never closed the oversize connection"),
                Err(_) => {}
                Ok(n) => panic!("server answered an oversize request with {n} bytes"),
            }
        }
        assert!(
            registry.snapshot().counter("conn.oversize").unwrap_or(0) >= 1,
            "oversize close must be counted under conn.oversize"
        );
        let client = Client::builder(server.addr()).build();
        assert_eq!(client.get("/fine").unwrap().status, Status::OK);
    }

    #[test]
    fn fault_injection_drops_connections() {
        let cfg = ServerConfig {
            faults: FaultConfig { drop_prob: 1.0, seed: 1, ..Default::default() },
            ..Default::default()
        };
        let server = echo_server(cfg);
        let client = Client::builder(server.addr()).build();
        assert!(client.get("/x").is_err(), "dropped connection must error");
    }

    #[test]
    fn fault_injection_errors() {
        let cfg = ServerConfig {
            faults: FaultConfig { error_prob: 1.0, seed: 2, ..Default::default() },
            ..Default::default()
        };
        let server = echo_server(cfg);
        let client = Client::builder(server.addr()).build();
        let resp = client.get("/x").unwrap();
        assert_eq!(resp.status, Status::INTERNAL);
    }

    #[test]
    fn fault_injection_truncates_bodies() {
        let cfg = ServerConfig {
            faults: FaultConfig { truncate_prob: 1.0, seed: 4, ..Default::default() },
            ..Default::default()
        };
        let server = echo_server(cfg);
        let client = Client::builder(server.addr()).build();
        match client.get("/x") {
            Err(crate::client::ClientError::Wire(WireError::Malformed(m))) => {
                assert!(m.contains("truncated"), "{m}");
            }
            other => panic!("expected truncated-body error, got {other:?}"),
        }
    }

    #[test]
    fn fault_injection_resets_mid_line() {
        let cfg = ServerConfig {
            faults: FaultConfig { reset_prob: 1.0, seed: 5, ..Default::default() },
            ..Default::default()
        };
        let server = echo_server(cfg);
        let client = Client::builder(server.addr()).build();
        assert!(client.get("/x").is_err(), "mid-line reset must error");
    }

    #[test]
    fn fault_injection_malformed_status_line() {
        let cfg = ServerConfig {
            faults: FaultConfig { malformed_prob: 1.0, seed: 6, ..Default::default() },
            ..Default::default()
        };
        let server = echo_server(cfg);
        let client = Client::builder(server.addr()).build();
        match client.get("/x") {
            Err(crate::client::ClientError::Wire(WireError::Malformed(_))) => {}
            other => panic!("expected malformed-wire error, got {other:?}"),
        }
    }

    #[test]
    fn fault_injection_stall_outlives_client_timeout() {
        let cfg = ServerConfig {
            faults: FaultConfig {
                stall_prob: 1.0,
                stall: Duration::from_millis(300),
                seed: 7,
                ..Default::default()
            },
            ..Default::default()
        };
        let server = echo_server(cfg);
        let mut client = Client::builder(server.addr()).build();
        client.timeout(Duration::from_millis(50));
        match client.get("/x") {
            Err(crate::client::ClientError::Wire(WireError::Io(e))) => {
                assert!(
                    matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ),
                    "{e:?}"
                );
            }
            other => panic!("expected read timeout, got {other:?}"),
        }
    }

    #[test]
    fn fault_injection_stall_does_not_block_other_connections() {
        // On a single reactor, a stalled response must not delay an
        // unfaulted concurrent request — the delay is a timer, not a
        // sleeping thread.
        let handler: Arc<dyn Handler> = Arc::new(|_: &Request| Response::html("ok".to_string()));
        let stalled = Server::start(
            handler.clone(),
            ServerConfig {
                workers: 1,
                faults: FaultConfig {
                    stall_prob: 1.0,
                    stall: Duration::from_millis(600),
                    seed: 11,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        // Every request stalls, so overlap is the signal: four stalled
        // connections on one reactor must finish in ~one stall, not four.
        let addr = stalled.addr();
        let started = std::time::Instant::now();
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(std::thread::spawn(move || {
                let client = Client::builder(addr).build();
                let _ = client.get("/x");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = started.elapsed();
        // Serialized stalls would take ≥ 4 × 600 ms on one reactor.
        assert!(
            elapsed < Duration::from_millis(1800),
            "stalls must overlap on a single reactor, took {elapsed:?}"
        );
    }

    #[test]
    fn fault_injection_rate_limit_carries_retry_after() {
        let cfg = ServerConfig {
            faults: FaultConfig {
                rate_limit_prob: 1.0,
                retry_after: Duration::from_millis(250),
                seed: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        let server = echo_server(cfg);
        let client = Client::builder(server.addr()).build();
        let resp = client.get("/x").unwrap();
        assert_eq!(resp.status, Status::TOO_MANY);
        let ra: f64 = resp.headers.get("retry-after").unwrap().parse().unwrap();
        assert!((ra - 0.25).abs() < 1e-9, "{ra}");
    }

    #[test]
    fn fault_injection_unavailable_is_503() {
        let cfg = ServerConfig {
            faults: FaultConfig { unavailable_prob: 1.0, seed: 9, ..Default::default() },
            ..Default::default()
        };
        let server = echo_server(cfg);
        let client = Client::builder(server.addr()).build();
        let resp = client.get("/x").unwrap();
        assert_eq!(resp.status.0, 503);
        assert!(resp.headers.get("retry-after").is_some());
    }

    #[test]
    fn malformed_request_gets_400() {
        use std::io::{Read, Write};
        let server = echo_server(ServerConfig::default());
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        let _ = s.read_to_end(&mut buf);
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    }

    #[test]
    fn smuggled_content_length_gets_400() {
        use std::io::{Read, Write};
        let server = echo_server(ServerConfig::default());
        for bad in
            ["Content-Length: +10", "Content-Length: 5\r\nContent-Length: 6", "Content-Length: 1e2"]
        {
            let mut s = TcpStream::connect(server.addr()).unwrap();
            s.write_all(format!("GET / HTTP/1.1\r\nHost: sim.local\r\n{bad}\r\n\r\n").as_bytes())
                .unwrap();
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
            let text = String::from_utf8_lossy(&buf);
            assert!(text.starts_with("HTTP/1.1 400"), "{bad} => {text}");
        }
    }
}
