//! Streaming (out-of-core) distribution sketches.
//!
//! [`EcdfSketch`] is the bounded-memory counterpart of [`crate::Ecdf`]:
//! instead of owning the full sample vector it counts observations per
//! distinct value in a totally-ordered map. Every statistic the report
//! pipeline renders — `F(x)`, the CCDF, interpolated quantiles, the
//! evenly-spaced plotting curve, the two-sample KS test — is recomputed
//! from the counts with **bit-for-bit identical** results to the
//! vector-backed implementations, because each one only ever consumed
//! the sample through its order statistics and cumulative counts:
//!
//! * `eval`/`survival` divide a cumulative count by `n` — exact.
//! * `quantile` interpolates between two order statistics, which the
//!   counting map reconstructs exactly.
//! * `curve` evaluates `F` on the same `lo + (hi-lo)·i/(p-1)` grid.
//! * [`ks_two_sample_sketch`] replays the ECDF merge walk of
//!   [`crate::ks_two_sample`] over distinct values, consuming ties in
//!   one step exactly like the original's `<= x` inner loops.
//! * `mean` keeps a running sum **in push order**, matching
//!   `Describe::of`'s left-to-right summation over the same sequence.
//!
//! Memory is bounded by the number of *distinct* values, not the number
//! of observations. Perspective-style scores live on a finite lattice
//! (sigmoid of a linear model over token-count ratios), so at paper
//! scale the map stays small while the sample count runs into the
//! millions; a worst-case all-distinct stream degenerates to the same
//! footprint as the sorted vector, never more than a constant factor
//! worse.
//!
//! `-0.0` is normalized to `0.0` at push: the counting key is the
//! total-order bit pattern, under which the two zeros differ, while the
//! vector implementations compare them numerically equal. The pipeline
//! never produces negative zero (scores are probabilities), so the
//! normalization is unobservable there and keeps the two
//! representations aligned everywhere else.

use crate::ks::{kolmogorov_sf, KsResult};
use std::collections::BTreeMap;

/// Map a non-NaN `f64` to a key whose unsigned order equals numeric
/// order (negative values reversed below positives).
fn key_of(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 0 {
        b ^ (1 << 63)
    } else {
        !b
    }
}

/// Inverse of [`key_of`].
fn val_of(k: u64) -> f64 {
    if k >> 63 == 1 {
        f64::from_bits(k ^ (1 << 63))
    } else {
        f64::from_bits(!k)
    }
}

/// A streaming empirical CDF/CCDF sketch: per-distinct-value counts in
/// ascending order plus a push-order running sum.
///
/// ```
/// let mut s = stats::EcdfSketch::new();
/// for x in [0.1, 0.4, 0.4, 0.9] {
///     s.push(x);
/// }
/// assert_eq!(s.eval(0.4), 0.75);
/// assert_eq!(s.survival(0.4), 0.25);
/// assert_eq!(s.quantile(0.5), Some(0.4));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EcdfSketch {
    counts: BTreeMap<u64, u64>,
    n: usize,
    sum: f64,
}

impl EcdfSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a slice — the streaming equivalent of
    /// [`crate::Ecdf::new`]. Panics on NaN.
    pub fn of(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Record one observation. Panics on NaN, like [`crate::Ecdf::new`].
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN in ECDF sample");
        let x = if x == 0.0 { 0.0 } else { x };
        *self.counts.entry(key_of(x)).or_insert(0) += 1;
        self.n += 1;
        self.sum += x;
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether the sketch holds no observations.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of distinct values — the sketch's memory footprint.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Smallest observed value.
    pub fn min(&self) -> Option<f64> {
        self.counts.keys().next().map(|&k| val_of(k))
    }

    /// Largest observed value.
    pub fn max(&self) -> Option<f64> {
        self.counts.keys().next_back().map(|&k| val_of(k))
    }

    /// Arithmetic mean from the push-order running sum (0 for an empty
    /// sketch, matching `Describe::of`). Bit-identical to summing the
    /// sample left-to-right in push order; see the module note on
    /// [`merge`](Self::merge).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.sum / self.n as f64
    }

    /// `F(x)` — fraction of the sample ≤ `x`. Returns 0 for empty
    /// sketches. Bit-identical to [`crate::Ecdf::eval`].
    pub fn eval(&self, x: f64) -> f64 {
        if self.n == 0 || x.is_nan() {
            return 0.0;
        }
        let x = if x == 0.0 { 0.0 } else { x };
        let le: u64 = self.counts.range(..=key_of(x)).map(|(_, c)| *c).sum();
        le as f64 / self.n as f64
    }

    /// Complementary CDF: fraction strictly greater than `x`.
    pub fn survival(&self, x: f64) -> f64 {
        1.0 - self.eval(x)
    }

    /// The `i`-th order statistic (0-based). Panics if `i >= n`.
    fn order_stat(&self, i: usize) -> f64 {
        assert!(i < self.n, "order statistic out of range");
        let mut cum = 0usize;
        for (&k, &c) in &self.counts {
            cum += c as usize;
            if cum > i {
                return val_of(k);
            }
        }
        unreachable!("counts sum to n")
    }

    /// Quantile `q ∈ [0,1]` with linear interpolation between order
    /// statistics. Bit-identical to [`crate::Ecdf::quantile`].
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            Some(self.order_stat(lo))
        } else {
            let frac = pos - lo as f64;
            Some(self.order_stat(lo) * (1.0 - frac) + self.order_stat(hi) * frac)
        }
    }

    /// Median — `quantile(0.5)`, or 0 for an empty sketch (matching
    /// `Describe::of`'s empty summary).
    pub fn median(&self) -> f64 {
        self.quantile(0.5).unwrap_or(0.0)
    }

    /// `points` evenly-spaced `(x, F(x))` pairs spanning the sample
    /// range. Bit-identical to [`crate::Ecdf::curve`]: the same grid,
    /// the same degenerate two-point answer for constant samples, and
    /// `F` evaluated by cumulative count. Single pass over the counts.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.n == 0 || points == 0 {
            return Vec::new();
        }
        let lo = self.min().expect("non-empty");
        let hi = self.max().expect("non-empty");
        if hi == lo {
            return vec![(lo, self.eval(lo)), (hi, 1.0)];
        }
        let points = points.max(2);
        let mut out = Vec::with_capacity(points);
        let mut iter = self.counts.iter().peekable();
        let mut cum = 0u64;
        for i in 0..points {
            let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
            while let Some(&(&k, &c)) = iter.peek() {
                if val_of(k) <= x {
                    cum += c;
                    iter.next();
                } else {
                    break;
                }
            }
            out.push((x, cum as f64 / self.n as f64));
        }
        out
    }

    /// Materialize the sorted sample (for small-scale verification and
    /// tests — at paper scale this is exactly what the sketch avoids).
    pub fn to_sorted(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n);
        for (&k, &c) in &self.counts {
            out.extend(std::iter::repeat_n(val_of(k), c as usize));
        }
        out
    }

    /// Fold another sketch into this one. Counts merge exactly, so every
    /// count-derived statistic (`eval`, `survival`, `quantile`, `curve`,
    /// KS) is invariant under any merge tree. The running `sum` is
    /// reassociated (`sum_a + sum_b`), so `mean()` of a merged sketch is
    /// only guaranteed bit-identical to the serial push when the
    /// constituent pushes were contiguous prefixes in push order — the
    /// report pipeline builds its per-figure sketches serially in
    /// canonical order and never relies on merged means.
    pub fn merge(&mut self, other: &EcdfSketch) {
        for (&k, &c) in &other.counts {
            *self.counts.entry(k).or_insert(0) += c;
        }
        self.n += other.n;
        self.sum += other.sum;
    }

    /// Ascending `(value, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts.iter().map(|(&k, &c)| (val_of(k), c))
    }
}

/// Two-sample KS test over sketches, bit-identical to
/// [`crate::ks_two_sample`] on the equivalent samples: the ECDF merge
/// walk advances over distinct values in ascending order, consuming all
/// ties at once exactly like the original's `<= x` inner loops, so the
/// sequence of `(F1, F2)` evaluation points — and therefore `D` and the
/// p-value — is identical. Panics if either sketch is empty.
pub fn ks_two_sample_sketch(a: &EcdfSketch, b: &EcdfSketch) -> KsResult {
    assert!(!a.is_empty() && !b.is_empty(), "KS test requires non-empty samples");
    let (n1, n2) = (a.n, b.n);
    let mut ia = a.counts.iter().peekable();
    let mut ib = b.counts.iter().peekable();
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n1 && j < n2 {
        let next_a = ia.peek().map(|(&k, _)| val_of(k));
        let next_b = ib.peek().map(|(&k, _)| val_of(k));
        let x = match (next_a, next_b) {
            (Some(va), Some(vb)) => va.min(vb),
            (Some(va), None) => va,
            (None, Some(vb)) => vb,
            (None, None) => break,
        };
        while let Some(&(&k, &c)) = ia.peek() {
            if val_of(k) <= x {
                i += c as usize;
                ia.next();
            } else {
                break;
            }
        }
        while let Some(&(&k, &c)) = ib.peek() {
            if val_of(k) <= x {
                j += c as usize;
                ib.next();
            } else {
                break;
            }
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }

    let en = ((n1 * n2) as f64 / (n1 + n2) as f64).sqrt();
    let lambda = (en + 0.12 + 0.11 / en) * d;
    KsResult { statistic: d, p_value: kolmogorov_sf(lambda), n1, n2 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ks_two_sample, Describe, Ecdf};

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    fn sample(seed: u64, len: usize, distinct: u64) -> Vec<f64> {
        let mut s = seed.max(1);
        (0..len)
            .map(|_| (xorshift(&mut s) % distinct) as f64 / distinct as f64)
            .collect()
    }

    #[test]
    fn matches_ecdf_bit_for_bit_on_seeded_samples() {
        for seed in 1..=20u64 {
            let xs = sample(seed, 500 + (seed as usize * 37) % 300, 64);
            let e = Ecdf::new(&xs);
            let s = EcdfSketch::of(&xs);
            assert_eq!(s.n(), e.n());
            for i in 0..=100 {
                let q = i as f64 / 100.0;
                assert_eq!(s.quantile(q), e.quantile(q), "seed {seed} q {q}");
                let x = q * 1.2 - 0.1;
                assert_eq!(s.eval(x), e.eval(x), "seed {seed} x {x}");
                assert_eq!(s.survival(x), e.survival(x), "seed {seed} x {x}");
            }
            assert_eq!(s.curve(101), e.curve(101), "seed {seed}");
            assert_eq!(s.curve(1), e.curve(1), "seed {seed}");
            assert_eq!(s.to_sorted(), e.sorted(), "seed {seed}");
        }
    }

    #[test]
    fn matches_describe_mean_and_median_in_push_order() {
        for seed in 1..=10u64 {
            let xs = sample(seed, 257, 1000);
            let d = Describe::of(&xs);
            let s = EcdfSketch::of(&xs);
            assert_eq!(s.mean(), d.mean, "seed {seed}");
            assert_eq!(s.median(), d.median, "seed {seed}");
            assert_eq!(s.min(), Some(d.min));
            assert_eq!(s.max(), Some(d.max));
        }
    }

    #[test]
    fn ks_matches_vector_implementation_bit_for_bit() {
        for seed in 1..=10u64 {
            let a = sample(seed, 300, 40);
            let b = sample(seed + 100, 211, 55);
            let want = ks_two_sample(&a, &b);
            let have = ks_two_sample_sketch(&EcdfSketch::of(&a), &EcdfSketch::of(&b));
            assert_eq!(have, want, "seed {seed}");
        }
    }

    #[test]
    fn merge_is_count_exact() {
        let xs = sample(3, 400, 32);
        let whole = EcdfSketch::of(&xs);
        let mut merged = EcdfSketch::of(&xs[..150]);
        merged.merge(&EcdfSketch::of(&xs[150..]));
        assert_eq!(merged.n(), whole.n());
        assert_eq!(merged.to_sorted(), whole.to_sorted());
        assert_eq!(merged.curve(101), whole.curve(101));
        assert_eq!(merged.quantile(0.5), whole.quantile(0.5));
        // Contiguous-prefix merge preserves even the push-order sum.
        assert_eq!(merged.mean(), whole.mean());
    }

    #[test]
    fn empty_sketch_mirrors_empty_ecdf() {
        let s = EcdfSketch::new();
        assert_eq!(s.eval(1.0), 0.0);
        assert_eq!(s.quantile(0.5), None);
        assert!(s.curve(10).is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.n(), 0);
    }

    #[test]
    fn degenerate_constant_sample_matches() {
        let xs = [5.0, 5.0, 5.0];
        assert_eq!(EcdfSketch::of(&xs).curve(10), Ecdf::new(&xs).curve(10));
    }

    #[test]
    fn negative_zero_is_normalized() {
        let mut s = EcdfSketch::new();
        s.push(-0.0);
        s.push(0.0);
        assert_eq!(s.distinct(), 1);
        assert_eq!(s.eval(-0.0), 1.0);
        assert_eq!(s.quantile(0.0), Some(0.0));
        assert!(s.quantile(0.0).unwrap().to_bits() == 0.0f64.to_bits());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        EcdfSketch::new().push(f64::NAN);
    }
}
