//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng` (seedable, deterministic), the `Rng` extension trait
//! (`gen`, `gen_range`, `gen_bool`), and `seq::SliceRandom`
//! (`shuffle`, `choose`).
//!
//! The container building this repository has no crates.io access, so the
//! real crate cannot be fetched; this crate keeps the same call sites
//! compiling against a xoshiro256** generator. Streams differ from the
//! upstream `StdRng` (ChaCha12), but every consumer in the workspace only
//! relies on determinism-per-seed and statistical quality, not on exact
//! upstream sequences.

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic per seed, passes BigCrush-class tests.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sampling a value of `Self` from the full "standard" distribution.
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

/// Types with uniform range sampling; the single generic
/// [`SampleRange`] impl over this trait is what lets integer-literal
/// ranges (`0..3`) take their type from the surrounding expression, as
/// with the real crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`. Panics on an empty range.
    fn sample_single_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_single<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }

    fn sample_single_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_single_inclusive(lo, hi, rng)
    }
}

/// Uniform integer in `[0, n)` via 128-bit widening multiply (`n > 0`).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice sampling and shuffling.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// `rand::seq::SliceRandom` subset: `shuffle` and `choose`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick a reference, `None` on empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = r.gen_range(5..=5);
            assert_eq!(y, 5);
            let z = r.gen_range(-3i64..4);
            assert!((-3..4).contains(&z));
        }
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut r = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_slice() {
        let mut r = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut r).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
