//! World-generation configuration and paper-calibrated constants.

/// Preset sizes. All paper quantities scale linearly; statistics reported
/// as fractions are scale-invariant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// ~1/64 world; seconds to generate. Used by tests.
    Small,
    /// ~1/16 world; the default for the `repro` harness.
    Medium,
    /// Full paper-scale counts (1.3M Gab users, 1.68M comments, 588k
    /// URLs). Minutes to generate and crawl.
    Paper,
    /// Custom multiplier of the paper counts.
    Custom(f64),
}

impl Scale {
    /// The multiplier applied to paper counts.
    pub fn factor(&self) -> f64 {
        match self {
            Scale::Small => 1.0 / 64.0,
            Scale::Medium => 1.0 / 16.0,
            Scale::Paper => 1.0,
            Scale::Custom(f) => *f,
        }
    }
}

/// Paper-published absolute quantities (the `Scale` multiplies these).
pub mod paper {
    /// Gab accounts discovered by ID enumeration (§3.1).
    pub const GAB_USERS: f64 = 1_300_000.0;
    /// Dissenter accounts (§1).
    pub const DISSENTER_USERS: f64 = 101_000.0;
    /// Fraction of Dissenter users who joined by the end of March 2019.
    pub const EARLY_JOIN_FRACTION: f64 = 0.77;
    /// Fraction of Dissenter users with ≥1 comment (§4.1.1).
    pub const ACTIVE_FRACTION: f64 = 0.47;
    /// Total comments + replies.
    pub const COMMENTS: f64 = 1_680_000.0;
    /// Distinct commented URLs.
    pub const URLS: f64 = 588_000.0;
    /// NSFW-labeled comments (§4.3.1).
    pub const NSFW_COMMENTS: f64 = 10_000.0;
    /// "Offensive"-labeled comments.
    pub const OFFENSIVE_COMMENTS: f64 = 8_000.0;
    /// Dissenter users whose Gab account was deleted (§4.1.1).
    pub const DELETED_GAB_USERS: f64 = 1_300.0;
    /// Banned active users (Table 1).
    pub const BANNED_USERS: f64 = 8.0;
    /// Fraction of Dissenter usernames that exist on Reddit (§4.4.1).
    pub const REDDIT_MATCH_FRACTION: f64 = 0.56;
    /// Reddit baseline comments (Table 3).
    pub const REDDIT_COMMENTS: f64 = 13_051_561.0;
    /// NY Times baseline comments.
    pub const NYT_COMMENTS: f64 = 4_995_119.0;
    /// Daily Mail baseline comments.
    pub const DAILYMAIL_COMMENTS: f64 = 14_287_096.0;
    /// Users in the §4.5.1 hateful core.
    pub const CORE_USERS: usize = 42;
    /// Connected components of the core.
    pub const CORE_COMPONENTS: usize = 6;
    /// Size of the core's giant component.
    pub const CORE_GIANT: usize = 32;
    /// Dissenter users in the social-network analysis (≥1 comment/reply).
    pub const SOCIAL_USERS: f64 = 45_524.0;
    /// Users with no followers and following no one (§4.5.1).
    pub const ISOLATED_USERS: f64 = 15_702.0;
    /// YouTube URLs crawled (§3.3).
    pub const YOUTUBE_URLS: f64 = 128_000.0;
}

/// Full configuration for [`crate::world::generate`].
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; every sub-generator derives its own stream from it.
    pub seed: u64,
    /// World size.
    pub scale: Scale,
    /// Baseline corpora (NYT / Daily Mail / Reddit texts) are additionally
    /// subsampled by this factor: the paper's 32M baseline comments only
    /// matter distributionally, so materializing a fraction preserves
    /// every figure while bounding memory. Declared totals in Table 3 are
    /// still reported at full (scaled) size.
    pub baseline_subsample: f64,
    /// Cap on materialized Reddit comment texts per matched account (full
    /// per-account counts are tracked separately for Figure 6).
    pub reddit_texts_per_user_cap: usize,
}

impl WorldConfig {
    /// Config at a given scale with the default seed.
    pub fn at(scale: Scale) -> Self {
        Self { seed: 0xD155_E17E, scale, baseline_subsample: 0.02, reddit_texts_per_user_cap: 50 }
    }

    /// Small test-sized config.
    pub fn small() -> Self {
        Self::at(Scale::Small)
    }

    /// Scaled count helper.
    pub fn n(&self, paper_count: f64) -> usize {
        (paper_count * self.scale.factor()).round().max(1.0) as usize
    }

    /// Scaled baseline-corpus count (scale × subsample).
    pub fn n_baseline(&self, paper_count: f64) -> usize {
        (paper_count * self.scale.factor() * self.baseline_subsample)
            .round()
            .max(10.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors() {
        assert_eq!(Scale::Paper.factor(), 1.0);
        assert!(Scale::Small.factor() < Scale::Medium.factor());
        assert_eq!(Scale::Custom(0.5).factor(), 0.5);
    }

    #[test]
    fn scaled_counts() {
        let c = WorldConfig::at(Scale::Paper);
        assert_eq!(c.n(paper::DISSENTER_USERS), 101_000);
        let s = WorldConfig::small();
        let n = s.n(paper::DISSENTER_USERS);
        assert!((1_400..1_700).contains(&n), "{n}");
    }

    #[test]
    fn baseline_subsampling_applies() {
        let c = WorldConfig::at(Scale::Paper);
        let full = c.n(paper::NYT_COMMENTS);
        let sampled = c.n_baseline(paper::NYT_COMMENTS);
        assert!(sampled < full / 10);
        assert!(sampled >= 10);
    }
}
