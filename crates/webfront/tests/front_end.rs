//! End-to-end tests of the four simulated services over real loopback TCP.

use httpnet::{Client, ServerConfig, Status};
use platform::World;
use std::sync::{Arc, OnceLock};
use synth::config::Scale;
use synth::WorldConfig;
use webfront::SimServices;

struct Fixture {
    world: Arc<World>,
    services: SimServices,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let cfg = WorldConfig { scale: Scale::Custom(0.004), ..WorldConfig::small() };
        let (world, _) = synth::generate(&cfg);
        let world = Arc::new(world);
        let services = SimServices::start(world.clone(), ServerConfig::default()).expect("services");
        Fixture { world, services }
    })
}

fn some_dissenter_username(world: &World) -> String {
    world
        .users
        .iter()
        .find(|u| u.author_id.is_some() && !u.gab_deleted)
        .expect("has dissenter users")
        .username
        .clone()
}

#[test]
fn user_page_size_probe_signal() {
    let fx = fixture();
    let client = Client::builder(fx.services.dissenter.addr()).build();
    let name = some_dissenter_username(&fx.world);
    let hit = client.get(&format!("/user/{name}")).unwrap();
    assert_eq!(hit.status, Status::OK);
    assert!(hit.body.len() >= 10 * 1024, "real page must be ≥10kB, got {}", hit.body.len());

    let miss = client.get("/user/thisuserdoesnotexist").unwrap();
    assert_eq!(miss.status, Status::NOT_FOUND);
    assert!(miss.body.len() < 300, "miss must be tiny, got {}", miss.body.len());

    // Gab-only users have no Dissenter home page either.
    let gab_only = fx
        .world
        .users
        .iter()
        .find(|u| u.author_id.is_none())
        .expect("gab-only user");
    let r = client.get(&format!("/user/{}", gab_only.username)).unwrap();
    assert_eq!(r.status, Status::NOT_FOUND);
}

#[test]
fn comment_page_lists_comments_and_votes() {
    let fx = fixture();
    let client = Client::builder(fx.services.dissenter.addr()).build();
    // Find a URL with at least one anonymous-visible comment.
    let url = fx
        .world
        .dissenter
        .urls()
        .iter()
        .find(|u| {
            !fx.world
                .dissenter
                .visible_comments(u.id, platform::Viewer::Anonymous)
                .is_empty()
        })
        .expect("urls with comments");
    let resp = client.get(&format!("/url/{}", url.id)).unwrap();
    assert_eq!(resp.status, Status::OK);
    let text = resp.text();
    assert!(text.contains(&format!("data-commenturl-id=\"{}\"", url.id)));
    assert!(text.contains("data-comment-id=\""));
    assert!(text.contains("data-upvotes=\""));
    assert!(resp.headers.get("x-ratelimit-limit").is_some());
}

#[test]
fn nsfw_content_requires_opted_in_session() {
    let fx = fixture();
    let nsfw_comment = fx
        .world
        .dissenter
        .comments()
        .iter()
        .find(|c| c.nsfw && !c.offensive)
        .expect("nsfw comments exist");
    let mut client = Client::builder(fx.services.dissenter.addr()).build();

    // Anonymous: hidden.
    let anon = client.get(&format!("/comment/{}", nsfw_comment.id)).unwrap();
    assert_eq!(anon.status, Status::NOT_FOUND);

    // Authenticated as a user with the NSFW filter enabled: visible.
    let opted_in = fx
        .world
        .users
        .iter()
        .find(|u| u.author_id.is_some() && !u.gab_deleted && u.filters.nsfw && u.flags.can_login)
        .expect("some user opted in");
    client.set_cookie("session", &format!("u:{}", opted_in.username));
    let authed = client.get(&format!("/comment/{}", nsfw_comment.id)).unwrap();
    assert_eq!(authed.status, Status::OK);
}

#[test]
fn comment_page_embeds_hidden_metadata() {
    let fx = fixture();
    let client = Client::builder(fx.services.dissenter.addr()).build();
    let c = fx
        .world
        .dissenter
        .comments()
        .iter()
        .find(|c| !c.nsfw && !c.offensive)
        .expect("standard comment");
    let resp = client.get(&format!("/comment/{}", c.id)).unwrap();
    let text = resp.text();
    assert!(text.contains("// var commentAuthor ="), "hidden JS blob missing");
    assert!(text.contains("\"language\""));
    assert!(text.contains("\"viewFilters\""));
}

#[test]
fn gab_api_enumeration_signals() {
    let fx = fixture();
    let client = Client::builder(fx.services.gab.addr()).build();
    // ID 1 is @e.
    let r = client.get("/api/v1/accounts/1").unwrap();
    assert_eq!(r.status, Status::OK);
    let v = jsonlite::parse(&r.text()).unwrap();
    assert_eq!(v.get("username").and_then(|s| s.as_str()), Some("e"));
    assert!(r.headers.get("x-ratelimit-remaining").is_some());

    // A wildly out-of-range ID errors like the real API.
    let miss = client.get("/api/v1/accounts/999999999").unwrap();
    assert_eq!(miss.status, Status::NOT_FOUND);
    let v = jsonlite::parse(&miss.text()).unwrap();
    assert!(v.get("error").is_some());
}

#[test]
fn gab_followers_paginate() {
    let fx = fixture();
    let client = Client::builder(fx.services.gab.addr()).build();
    // Find a live user with many followers.
    let (idx, _) = (0..fx.world.user_count() as u32)
        .filter(|&i| !fx.world.user(i).gab_deleted)
        .map(|i| (i, fx.world.gab.followers(i).len()))
        .max_by_key(|&(_, n)| n)
        .unwrap();
    let gab_id = fx.world.user(idx).gab_id;
    let mut collected = 0usize;
    let mut page = 0;
    loop {
        let r = client
            .get(&format!("/api/v1/accounts/{gab_id}/followers?page={page}"))
            .unwrap();
        let v = jsonlite::parse(&r.text()).unwrap();
        let n = v.as_array().map(|a| a.len()).unwrap_or(0);
        collected += n;
        if n < webfront::gab::PAGE_SIZE {
            break;
        }
        page += 1;
    }
    // Deleted accounts are hidden from listings; everyone else appears.
    let visible = fx
        .world
        .gab
        .followers(idx)
        .iter()
        .filter(|&&f| !fx.world.user(f).gab_deleted)
        .count();
    assert_eq!(collected, visible);
    assert!(collected > 0, "hub user should have visible followers");
}

#[test]
fn reddit_and_pushshift() {
    let fx = fixture();
    let client = Client::builder(fx.services.reddit.addr()).build();
    let name = fx.world.reddit.usernames().next().expect("reddit accounts").to_owned();
    let about = client.get(&format!("/user/{name}/about")).unwrap();
    assert_eq!(about.status, Status::OK);
    let miss = client.get("/user/nobody-here-xyz/about").unwrap();
    assert_eq!(miss.status, Status::NOT_FOUND);

    let r = client
        .get(&format!("/pushshift/comments?author={name}&page=0"))
        .unwrap();
    let v = jsonlite::parse(&r.text()).unwrap();
    assert!(v.get("data").is_some());
    assert!(v.get("total").is_some());
}

#[test]
fn youtube_render_endpoint() {
    let fx = fixture();
    let client = Client::builder(fx.services.youtube.addr()).build();
    let (url, _) = fx.world.youtube.iter().next().expect("youtube content");
    let r = client.get(&webfront::youtube::render_target(url)).unwrap();
    assert_eq!(r.status, Status::OK);
    let v = jsonlite::parse(&r.text()).unwrap();
    assert!(v.get("kind").is_some());
    assert!(v.get("available").is_some());

    let miss = client.get(&webfront::youtube::render_target("https://youtube.com/watch?v=nope")).unwrap();
    assert_eq!(miss.status, Status::NOT_FOUND);
}

#[test]
fn discussion_begin_known_and_unknown() {
    let fx = fixture();
    let client = Client::builder(fx.services.dissenter.addr()).build();
    let known = &fx.world.dissenter.urls()[0];
    let r = client
        .get(&webfront::dissenter::discussion_target(&known.url))
        .unwrap();
    assert_eq!(r.status.0, 302, "known URL redirects to its thread");
    assert!(r.headers.get("location").unwrap().contains(&known.id.to_hex()));

    let r = client
        .get(&webfront::dissenter::discussion_target("https://example.com/brand-new-page"))
        .unwrap();
    assert_eq!(r.status, Status::OK);
    assert!(r.text().contains("data-comment-count=\"0\""));
}

#[test]
fn per_url_rate_limit_enforced_and_scoped() {
    let fx = fixture();
    let client = Client::builder(fx.services.dissenter.addr()).build();
    let urls = fx.world.dissenter.urls();
    let (a, b) = (&urls[1], &urls[2]);
    // Exhaust URL a's budget.
    let mut denied = false;
    for _ in 0..12 {
        let r = client.get(&format!("/url/{}", a.id)).unwrap();
        if r.status == Status::TOO_MANY {
            denied = true;
            assert!(r.headers.get("x-ratelimit-reset").is_some());
            break;
        }
    }
    assert!(denied, "11th request within a minute must be denied");
    // URL b is unaffected — the §3.2 quirk the crawler exploits.
    let r = client.get(&format!("/url/{}", b.id)).unwrap();
    assert_eq!(r.status, Status::OK);
}
