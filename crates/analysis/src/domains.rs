//! Table 2: TLD and domain composition, plus per-domain comment-volume
//! medians (§4.2.1).

use crate::url::ParsedUrl;
use std::collections::HashMap;

/// A share table row.
#[derive(Debug, Clone, PartialEq)]
pub struct ShareRow {
    /// Key (TLD or domain).
    pub key: String,
    /// Absolute count.
    pub count: usize,
    /// Percentage of the total.
    pub percent: f64,
}

/// Count/share table over arbitrary keys.
pub fn share_table(keys: impl Iterator<Item = String>, top: usize) -> Vec<ShareRow> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut total = 0usize;
    for k in keys {
        *counts.entry(k).or_insert(0) += 1;
        total += 1;
    }
    let mut rows: Vec<ShareRow> = counts
        .into_iter()
        .map(|(key, count)| ShareRow { key, count, percent: 100.0 * count as f64 / total.max(1) as f64 })
        .collect();
    rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
    rows.truncate(top);
    rows
}

/// Table 2 (left half): top TLDs by URL share. Non-network schemes are
/// grouped under their scheme name (`file:`, `chrome:`).
pub fn tld_table<'a>(urls: impl Iterator<Item = &'a str>, top: usize) -> Vec<ShareRow> {
    share_table(
        urls.filter_map(|u| {
            let p = ParsedUrl::parse(u)?;
            Some(if p.host.is_empty() || !matches!(p.scheme.as_str(), "http" | "https") {
                format!("{}:", p.scheme)
            } else {
                format!(".{}", p.tld())
            })
        }),
        top,
    )
}

/// Table 2 (right half): top registrable domains by URL share.
pub fn domain_table<'a>(urls: impl Iterator<Item = &'a str>, top: usize) -> Vec<ShareRow> {
    share_table(
        urls.filter_map(|u| {
            let p = ParsedUrl::parse(u)?;
            (!p.host.is_empty()).then(|| p.domain())
        }),
        top,
    )
}

/// Per-domain comment volume: `(domain, urls, median_comments_per_url)`,
/// ranked by median descending — the paper's observation that fringe
/// domains top this ranking while YouTube's median is 1.
pub fn domain_comment_medians<'a>(
    url_comments: impl Iterator<Item = (&'a str, usize)>,
    min_urls: usize,
) -> Vec<(String, usize, f64)> {
    let mut per_domain: HashMap<String, Vec<usize>> = HashMap::new();
    for (url, n) in url_comments {
        if let Some(p) = ParsedUrl::parse(url) {
            if !p.host.is_empty() {
                per_domain.entry(p.domain()).or_default().push(n);
            }
        }
    }
    let mut rows: Vec<(String, usize, f64)> = per_domain
        .into_iter()
        .filter(|(_, v)| v.len() >= min_urls)
        .map(|(d, mut v)| {
            v.sort_unstable();
            let median = if v.len() % 2 == 1 {
                v[v.len() / 2] as f64
            } else {
                (v[v.len() / 2 - 1] + v[v.len() / 2]) as f64 / 2.0
            };
            (d, v.len(), median)
        })
        .collect();
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite medians").then(a.0.cmp(&b.0)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tld_shares() {
        let urls = [
            "https://a.com/1",
            "https://b.com/2",
            "https://c.co.uk/3",
            "file:///C:/x",
        ];
        let t = tld_table(urls.iter().copied(), 10);
        assert_eq!(t[0].key, ".com");
        assert_eq!(t[0].count, 2);
        assert!((t[0].percent - 50.0).abs() < 1e-9);
        assert!(t.iter().any(|r| r.key == ".uk"));
        assert!(t.iter().any(|r| r.key == "file:"));
    }

    #[test]
    fn domain_shares_merge_youtube_hosts() {
        let urls = ["https://www.youtube.com/watch?v=1", "https://m.youtube.com/watch?v=2"];
        let t = domain_table(urls.iter().copied(), 5);
        assert_eq!(t[0].key, "youtube.com");
        assert_eq!(t[0].count, 2);
    }

    #[test]
    fn medians_rank_fringe_first() {
        let data = [
            ("https://youtube.com/watch?v=1", 1),
            ("https://youtube.com/watch?v=2", 1),
            ("https://youtube.com/watch?v=3", 3),
            ("https://thewatcherfiles.com/x", 116),
        ];
        let rows = domain_comment_medians(data.iter().map(|&(u, n)| (u, n)), 1);
        assert_eq!(rows[0].0, "thewatcherfiles.com");
        assert_eq!(rows[0].2, 116.0);
        let yt = rows.iter().find(|r| r.0 == "youtube.com").unwrap();
        assert_eq!(yt.2, 1.0, "even-length median of [1,1,3]? no — odd: 1");
    }

    #[test]
    fn median_even_length() {
        let data = [("https://a.com/1", 2), ("https://a.com/2", 4)];
        let rows = domain_comment_medians(data.iter().map(|&(u, n)| (u, n)), 1);
        assert_eq!(rows[0].2, 3.0);
    }

    #[test]
    fn min_urls_filter() {
        let data = [("https://only-one.com/x", 50), ("https://big.com/1", 1), ("https://big.com/2", 1)];
        let rows = domain_comment_medians(data.iter().map(|&(u, n)| (u, n)), 2);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "big.com");
    }
}
