//! The sweep≡one-shot differential oracle, as an integration test.
//!
//! At drift 0 a longitudinal study composed sweep-by-sweep over every
//! epoch must equal a one-shot retrospective study of the final epoch
//! state **byte-for-byte** on every artifact: the deterministic render,
//! the longitudinal section, the windowed CSVs, the figure CSVs, and
//! the persisted JSONL mirror. The `longitudinal.*` simcheck family
//! enforces the same property across seeds; this test pins one seed in
//! the tier-1 suite and also exercises the legitimate-divergence side
//! (drift > 0 must flag) and the crash-resume side (a killed sweep
//! resumes into the same bytes).

use dissenter_core::longitudinal::{
    artifacts, run_composed, run_one_shot, version_schedule, LongitudinalConfig,
};
use synth::config::Scale;

fn cfg(epochs: u32, drift: f64) -> LongitudinalConfig {
    let mut cfg = LongitudinalConfig::small();
    cfg.study.world.seed = 0xD155_E17E;
    cfg.study.world.scale = Scale::Custom(0.003);
    cfg.epochs = epochs;
    cfg.drift = drift;
    cfg
}

fn assert_same_artifacts(want: &[(String, Vec<u8>)], have: &[(String, Vec<u8>)]) {
    assert_eq!(
        want.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        have.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        "artifact sets differ"
    );
    for ((name, want), (_, have)) in want.iter().zip(have) {
        assert_eq!(want, have, "{name} differs between composed and one-shot studies");
    }
}

#[test]
fn composed_sweeps_equal_one_shot_at_zero_drift() {
    let cfg = cfg(2, 0.0);
    let composed = run_composed(&cfg);
    let one_shot = run_one_shot(&cfg);

    // The oracle proper.
    assert_same_artifacts(&artifacts(&one_shot), &artifacts(&composed));

    // Sanity on the composed run's shape: one sweep per window, and the
    // shared revalidation cache turned repeat fetches into 304s from the
    // second sweep on (per-target stamps keep validators stable for
    // pages untouched by an epoch).
    assert_eq!(composed.windows.len(), 3);
    assert_eq!(composed.sweep_not_modified.len(), 3);
    // Sweep 0 can only revalidate targets it refetched itself; sweeps 1+
    // inherit the whole previous mirror's validators, so their 304
    // volume must dominate it.
    assert!(
        composed.sweep_not_modified[1..]
            .iter()
            .all(|&n| n > composed.sweep_not_modified[0]),
        "incremental sweeps must be 304-dominated: {:?}",
        composed.sweep_not_modified
    );
    // The evolving world actually grew in every epoch.
    for pair in composed.growth.windows(2) {
        assert!(pair[1].new_users > 0 && pair[1].new_comments > 0, "dead epoch: {pair:?}");
    }
    // A no-op mid-study redeploy is detected but never flagged.
    assert_eq!(composed.drift.boundaries.len(), 1);
    assert!(!composed.drift.boundaries[0].flagged, "zero drift must not flag");
}

#[test]
fn drift_produces_flagged_rescoring_deltas() {
    let cfg = cfg(2, 0.25);
    let study = run_composed(&cfg);
    assert_eq!(study.drift.boundaries.len(), 1, "one mid-study revision expected");
    let b = &study.drift.boundaries[0];
    assert_eq!((b.from_version, b.to_version), (0, 1));
    assert!(b.calibration_n > 0);
    assert!(
        b.flagged,
        "drift 0.25 must move calibration means past the threshold: {b:?}"
    );
    assert!(b.max_abs_comment_delta > 0.0);
    // Windows before the upgrade were scored under v0, after under v1.
    assert_eq!(study.windows[0].scorer_version, 0);
    assert_eq!(study.windows[2].scorer_version, 1);
}

#[test]
fn version_schedule_shape() {
    assert_eq!(
        version_schedule(0, 0.1, 7).iter().map(|v| v.version).collect::<Vec<_>>(),
        vec![0],
        "a zero-epoch study never upgrades"
    );
    assert_eq!(
        version_schedule(2, 0.1, 7).iter().map(|v| v.version).collect::<Vec<_>>(),
        vec![0, 0, 1]
    );
    assert_eq!(
        version_schedule(4, 0.1, 7).iter().map(|v| v.version).collect::<Vec<_>>(),
        vec![0, 0, 0, 1, 1]
    );
}

#[test]
fn killed_sweep_resumes_into_identical_artifacts() {
    let plain = cfg(1, 0.0);
    let want = artifacts(&run_composed(&plain));

    let root = std::env::temp_dir().join(format!("longitudinal-kill-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let mut killed = cfg(1, 0.0);
    killed.durable_root = Some(root.clone());
    killed.kill_sweep = Some((1, 40));
    let have = artifacts(&run_composed(&killed));
    std::fs::remove_dir_all(&root).ok();

    assert_same_artifacts(&want, &have);
}
