//! The labeled training corpus replacing Davidson et al. (§3.5.3).
//!
//! The paper trains its SVM on crowd-labeled tweets: 1,194 hate, 16,025
//! offensive, 20,499 neither — a 1 : 13.4 : 17.2 imbalance that motivates
//! ADASYN. We synthesize a corpus with the same imbalance whose classes
//! have genuinely different lexical signatures (hate-lexicon terms vs
//! insults/obscenity vs benign text), so the full train/oversample/CV
//! pipeline runs on a learnable problem of the same shape.

use crate::dist::geometric;
use crate::textgen::{CommentSpec, TextGen};
use classify::CommentClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use textkit::langid::Lang;

/// One labeled sample.
#[derive(Debug, Clone)]
pub struct LabeledSample {
    /// Raw text.
    pub text: String,
    /// Gold class.
    pub class: CommentClass,
}

/// Davidson-corpus class counts.
pub const DAVIDSON_COUNTS: (usize, usize, usize) = (1_194, 16_025, 20_499);

/// Label-noise rate: crowd-sourced labels disagree, and hate vs offensive
/// is genuinely ambiguous — the paper's 0.87 F1 reflects that ceiling. A
/// perfectly separable synthetic corpus would let the SVM score ≈0.94, so
/// a fraction of labels is deliberately flipped to a neighboring class.
pub const LABEL_NOISE: f64 = 0.09;

/// Generate a labeled corpus with the Davidson class ratio, scaled so the
/// total is `total` samples (exact class counts are proportional).
/// Serial; identical to [`labeled_corpus_sharded`] at any worker count.
pub fn labeled_corpus(total: usize, seed: u64) -> Vec<LabeledSample> {
    labeled_corpus_sharded(total, seed, 1)
}

/// [`labeled_corpus`] with text synthesis sharded over `workers` threads.
/// Specs and label-noise swaps are sampled serially from the corpus
/// stream; each text draws from its own per-sample stream, so the corpus
/// is byte-identical for every worker count.
pub fn labeled_corpus_sharded(total: usize, seed: u64, workers: usize) -> Vec<LabeledSample> {
    assert!(total >= 30, "corpus too small to stratify");
    let (h, o, n) = DAVIDSON_COUNTS;
    let sum = (h + o + n) as f64;
    let n_h = ((h as f64 / sum) * total as f64).round().max(1.0) as usize;
    let n_o = ((o as f64 / sum) * total as f64).round().max(1.0) as usize;
    let n_n = total.saturating_sub(n_h + n_o).max(1);

    let gen = TextGen::standard();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut specs: Vec<(CommentSpec, CommentClass)> = Vec::with_capacity(n_h + n_o + n_n);
    for _ in 0..n_h {
        specs.push((hate_spec(&mut rng), CommentClass::Hate));
    }
    for _ in 0..n_o {
        specs.push((offensive_spec(&mut rng), CommentClass::Offensive));
    }
    for _ in 0..n_n {
        specs.push((neither_spec(&mut rng), CommentClass::Neither));
    }
    let flat: Vec<CommentSpec> = specs.iter().map(|(s, _)| *s).collect();
    let texts = gen.generate_batch(&flat, crate::dist::child_seed(seed, 17), workers);
    let mut out: Vec<LabeledSample> = specs
        .iter()
        .zip(texts)
        .map(|(&(_, class), text)| LabeledSample { text, class })
        .collect();
    // Crowd-label noise as label *swaps* between random sample pairs:
    // preserves the published class counts exactly while mislabeling
    // ~LABEL_NOISE of the corpus.
    let swaps = ((LABEL_NOISE / 2.0) * out.len() as f64).round() as usize;
    for _ in 0..swaps {
        let i = rng.gen_range(0..out.len());
        let j = rng.gen_range(0..out.len());
        if i != j {
            let tmp = out[i].class;
            out[i].class = out[j].class;
            out[j].class = tmp;
        }
    }
    out
}

fn tokens<R: Rng>(rng: &mut R) -> usize {
    4 + geometric(rng, 0.12, 60) as usize
}

fn hate_spec<R: Rng>(rng: &mut R) -> CommentSpec {
    CommentSpec {
        lang: Lang::En,
        severe: 0.55 + 0.4 * crate::dist::beta(rng, 2.0, 2.0),
        obscene: crate::dist::beta(rng, 1.5, 6.0),
        attack: crate::dist::beta(rng, 1.5, 5.0),
        reject: 0.9,
        tokens: tokens(rng),
    }
}

fn offensive_spec<R: Rng>(rng: &mut R) -> CommentSpec {
    CommentSpec {
        lang: Lang::En,
        severe: crate::dist::beta(rng, 1.2, 8.0),
        obscene: 0.4 + 0.5 * crate::dist::beta(rng, 2.0, 2.0),
        attack: crate::dist::beta(rng, 2.0, 4.0),
        reject: 0.75,
        tokens: tokens(rng),
    }
}

fn neither_spec<R: Rng>(rng: &mut R) -> CommentSpec {
    CommentSpec {
        lang: Lang::En,
        severe: 0.03,
        obscene: 0.03,
        attack: 0.03,
        reject: 0.1 + 0.15 * crate::dist::beta(rng, 2.0, 4.0),
        tokens: tokens(rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ratio_matches_davidson() {
        let corpus = labeled_corpus(3_772, 1); // 1/10 of Davidson's total
        let h = corpus.iter().filter(|s| s.class == CommentClass::Hate).count();
        let o = corpus.iter().filter(|s| s.class == CommentClass::Offensive).count();
        let n = corpus.iter().filter(|s| s.class == CommentClass::Neither).count();
        assert!((110..=130).contains(&h), "hate {h}");
        assert!((1_550..=1_650).contains(&o), "offensive {o}");
        assert!((1_950..=2_100).contains(&n), "neither {n}");
    }

    #[test]
    fn classes_are_lexically_separable() {
        // The hate class must carry hate-lexicon terms; neither must not.
        let dict = classify::HateDictionary::standard();
        let corpus = labeled_corpus(600, 2);
        let mean = |class: CommentClass| {
            let xs: Vec<f64> = corpus
                .iter()
                .filter(|s| s.class == class)
                .map(|s| dict.score(&s.text))
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let h = mean(CommentClass::Hate);
        let o = mean(CommentClass::Offensive);
        let n = mean(CommentClass::Neither);
        assert!(h > 0.1, "hate dictionary density {h}");
        assert!(h > o * 2.0, "h={h} o={o}");
        assert!(n < 0.02, "neither {n}");
    }

    #[test]
    fn deterministic() {
        let a = labeled_corpus(100, 9);
        let b = labeled_corpus(100, 9);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.text == y.text && x.class == y.class));
    }

    #[test]
    fn sharded_corpus_identical_for_any_worker_count() {
        let serial = labeled_corpus_sharded(400, 9, 1);
        for workers in [2, 8] {
            let par = labeled_corpus_sharded(400, 9, workers);
            assert!(
                serial.iter().zip(&par).all(|(x, y)| x.text == y.text && x.class == y.class),
                "workers={workers}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_corpus_panics() {
        labeled_corpus(5, 0);
    }
}
