//! Self-contained replay files.
//!
//! A replay is everything needed to re-execute a (shrunk) failing
//! scenario deterministically: the scenario itself plus the failure it
//! reproduced when written. Replays live under `simcheck/replays/` at
//! the repository root; committed ones act as a pinned regression
//! corpus that `tests/simcheck_replays.rs` re-runs on every
//! `cargo test` and must now pass.

use crate::oracle::Failure;
use crate::scenario::Scenario;
use jsonlite::Value;
use std::io;
use std::path::{Path, PathBuf};

/// The replay schema version written by this build.
pub const VERSION: i64 = 1;

/// Default replay directory, relative to the repository root.
pub const DEFAULT_DIR: &str = "simcheck/replays";

/// One replay file's contents.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// The scenario to re-execute.
    pub scenario: Scenario,
    /// The oracle that tripped when this replay was written (for
    /// committed regression replays: the failure the fix addressed).
    pub check: String,
    /// Failure evidence as observed at write time.
    pub detail: String,
}

impl Replay {
    /// Package a shrunk failure.
    pub fn new(scenario: Scenario, failure: &Failure) -> Self {
        Self { scenario, check: failure.check.clone(), detail: failure.detail.clone() }
    }

    /// Serialize to the on-disk JSON form.
    pub fn to_json(&self) -> Value {
        Value::object()
            .with("version", VERSION)
            .with("check", self.check.as_str())
            .with("detail", self.detail.as_str())
            .with("scenario", self.scenario.to_json())
    }

    /// Deserialize from the on-disk JSON form.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let version = v.get("version").and_then(Value::as_i64).ok_or("replay: missing version")?;
        if version != VERSION {
            return Err(format!("replay: unsupported version {version}"));
        }
        Ok(Self {
            scenario: Scenario::from_json(v.get("scenario").ok_or("replay: missing scenario")?)?,
            check: v
                .get("check")
                .and_then(Value::as_str)
                .ok_or("replay: missing check")?
                .to_owned(),
            detail: v
                .get("detail")
                .and_then(Value::as_str)
                .ok_or("replay: missing detail")?
                .to_owned(),
        })
    }
}

/// Write a replay into `dir` (created if missing) as
/// `seed-<seed-hex>.json`. Returns the path written.
pub fn write(dir: &Path, replay: &Replay) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("seed-{:016x}.json", replay.scenario.seed));
    let mut text = jsonlite::to_string_pretty(&replay.to_json());
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Read one replay file.
pub fn read(path: &Path) -> Result<Replay, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let v = jsonlite::parse(&text).map_err(|e| format!("{}: {e:?}", path.display()))?;
    Replay::from_json(&v).map_err(|e| format!("{}: {e}", path.display()))
}

/// Every `*.json` replay in `dir`, sorted by file name for a stable run
/// order. An absent directory is an empty corpus, not an error.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Replay)>, String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    paths.into_iter().map(|p| read(&p).map(|r| (p, r))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("simcheck-replay-{tag}-{}", std::process::id()))
    }

    #[test]
    fn write_read_round_trip() {
        let dir = temp_dir("roundtrip");
        let replay = Replay::new(
            Scenario::from_seed(0xBEEF),
            &Failure { check: "obs.reconcile".into(), detail: "counter skew".into() },
        );
        let path = write(&dir, &replay).expect("writes");
        assert!(path.file_name().unwrap().to_str().unwrap().contains("beef"));
        assert_eq!(read(&path).expect("reads"), replay);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dir_sorts_and_tolerates_absence() {
        let dir = temp_dir("loaddir");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(load_dir(&dir).expect("missing dir is empty"), Vec::new());
        let f = Failure { check: "c".into(), detail: "d".into() };
        write(&dir, &Replay::new(Scenario::from_seed(9), &f)).unwrap();
        write(&dir, &Replay::new(Scenario::from_seed(2), &f)).unwrap();
        let loaded = load_dir(&dir).expect("loads");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].1.scenario.seed, 2, "sorted by file name");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_and_field_errors_are_reported() {
        let v = jsonlite::parse(r#"{"version":99}"#).unwrap();
        assert!(Replay::from_json(&v).unwrap_err().contains("version 99"));
        let v = jsonlite::parse(r#"{"version":1,"check":"c","detail":"d"}"#).unwrap();
        assert!(Replay::from_json(&v).unwrap_err().contains("scenario"));
    }
}
