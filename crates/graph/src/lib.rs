#![warn(missing_docs)]
//! Directed social-graph algorithms for §4.5.
//!
//! The paper builds the Dissenter-specific social network by crawling Gab
//! followers of every Dissenter user (Gab users are a strict superset), and
//! analyzes it: in/out degree power laws, a following-vs-followers scatter,
//! toxicity against degree, PageRank-style influence, and the "hateful
//! core" — the subgraph induced on mutually-following, active, high-median-
//! toxicity users, whose connected components the paper counts (42 users in
//! 6 components, largest 32).

pub mod components;
pub mod core_extract;
pub mod digraph;
pub mod pagerank;

pub use components::{connected_components, ComponentSummary};
pub use core_extract::{extract_hateful_core, CoreCriteria, HatefulCore};
pub use digraph::DiGraph;
pub use pagerank::pagerank;
