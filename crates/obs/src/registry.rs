//! The metrics registry: named counters, gauges, and histograms.

use crate::events::{Event, EventLog};
use crate::hist::{Histogram, HistogramSnapshot};
use crate::json;
use crate::span::Span;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A shared handle to one counter. Counters record seed-determined facts
/// and must replay identically for identical seeds.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared handle to one gauge (an `f64` last-write-wins value; gauges
/// carry timing-derived readings like items/sec and may differ between
/// otherwise identical runs).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    fn new() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Default)]
struct Maps {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

struct Inner {
    start: Instant,
    maps: Mutex<Maps>,
    events: EventLog,
}

/// The registry: a cheaply cloneable handle to one run's metrics.
#[derive(Clone)]
pub struct Registry(Arc<Inner>);

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let maps = self.0.maps.lock().unwrap_or_else(|e| e.into_inner());
        write!(
            f,
            "Registry({} counters, {} gauges, {} histograms, {} events)",
            maps.counters.len(),
            maps.gauges.len(),
            maps.histograms.len(),
            self.0.events.len()
        )
    }
}

impl Registry {
    /// An empty registry; its relative clock starts now.
    pub fn new() -> Self {
        Self(Arc::new(Inner {
            start: Instant::now(),
            maps: Mutex::new(Maps::default()),
            events: EventLog::default(),
        }))
    }

    fn maps(&self) -> std::sync::MutexGuard<'_, Maps> {
        self.0.maps.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter named `name`, created on first use. Grab the handle
    /// once for hot paths; updates on the handle are lock-free.
    pub fn counter(&self, name: &str) -> Counter {
        self.maps().counters.entry(name.to_owned()).or_default().clone()
    }

    /// Add `n` to counter `name` (cold-path convenience).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Add one to counter `name` (cold-path convenience).
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.maps().gauges.entry(name.to_owned()).or_insert_with(Gauge::new).clone()
    }

    /// Set gauge `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.gauge(name).set(v);
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.maps().histograms.entry(name.to_owned()).or_insert_with(Histogram::new).clone()
    }

    /// Record `d` into histogram `name` (cold-path convenience).
    pub fn observe(&self, name: &str, d: std::time::Duration) {
        self.histogram(name).observe(d);
    }

    /// Start a scoped wall-clock span. On [`Span::finish`] (or drop) the
    /// elapsed time lands in histogram `name` and a `span` event is
    /// appended to the log.
    pub fn span(&self, name: &str) -> Span {
        Span::start(self.clone(), name)
    }

    /// Microseconds since the registry was created (the event clock).
    pub fn elapsed_us(&self) -> u64 {
        self.0.start.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Append a structured event to the log.
    pub fn event(&self, name: &str, fields: &[(&str, &str)]) {
        self.0.events.push(Event {
            ts_us: self.elapsed_us(),
            name: name.to_owned(),
            fields: fields.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
        });
    }

    /// Events recorded so far (capped; see [`EventLog`](crate::Event)).
    pub fn events(&self) -> Vec<Event> {
        self.0.events.to_vec()
    }

    /// The event log rendered as JSON Lines (one event object per line).
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.0.events.to_vec() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// A plain-value copy of every metric, names sorted.
    pub fn snapshot(&self) -> Snapshot {
        let maps = self.maps();
        Snapshot {
            counters: maps.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: maps.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: maps
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a registry, suitable for reporting, JSON
/// export, and cross-run comparison (compare `counters` only — gauges
/// and histograms carry wall-clock readings).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, summary)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// The value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// The summary of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].1)
    }

    /// All counters whose name starts with `prefix`.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .iter()
            .filter(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// Counters that differ between two snapshots, as
    /// `(name, self_value, other_value)` sorted by name; a counter absent
    /// on one side reads 0 there. Differential testing uses this to
    /// pinpoint exactly which counters diverged between two runs that
    /// should have agreed.
    pub fn diff_counters(&self, other: &Snapshot) -> Vec<(String, u64, u64)> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.counters.len() || j < other.counters.len() {
            let (name, a, b) = match (self.counters.get(i), other.counters.get(j)) {
                (Some((ka, va)), Some((kb, vb))) => match ka.cmp(kb) {
                    std::cmp::Ordering::Equal => {
                        i += 1;
                        j += 1;
                        (ka.clone(), *va, *vb)
                    }
                    std::cmp::Ordering::Less => {
                        i += 1;
                        (ka.clone(), *va, 0)
                    }
                    std::cmp::Ordering::Greater => {
                        j += 1;
                        (kb.clone(), 0, *vb)
                    }
                },
                (Some((ka, va)), None) => {
                    i += 1;
                    (ka.clone(), *va, 0)
                }
                (None, Some((kb, vb))) => {
                    j += 1;
                    (kb.clone(), 0, *vb)
                }
                (None, None) => unreachable!("loop condition"),
            };
            if a != b {
                out.push((name, a, b));
            }
        }
        out
    }

    /// Render the whole snapshot as one JSON object with `counters`,
    /// `gauges`, and `histograms` sub-objects.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        push_entries(&mut s, self.counters.iter().map(|(k, v)| (k, v.to_string())));
        s.push_str("},\"gauges\":{");
        push_entries(&mut s, self.gauges.iter().map(|(k, v)| (k, json::number(*v))));
        s.push_str("},\"histograms\":{");
        push_entries(&mut s, self.histograms.iter().map(|(k, v)| (k, v.to_json())));
        s.push_str("}}");
        s
    }
}

fn push_entries<'a>(s: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&json::string(k));
        s.push(':');
        s.push_str(&v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn diff_counters_merges_and_reports_only_changes() {
        let a = Registry::new();
        a.add("same", 5);
        a.add("changed", 1);
        a.add("only_a", 3);
        let b = Registry::new();
        b.add("same", 5);
        b.add("changed", 2);
        b.add("only_b", 4);
        let diff = a.snapshot().diff_counters(&b.snapshot());
        assert_eq!(
            diff,
            vec![
                ("changed".to_owned(), 1, 2),
                ("only_a".to_owned(), 3, 0),
                ("only_b".to_owned(), 0, 4),
            ]
        );
        assert!(a.snapshot().diff_counters(&a.snapshot()).is_empty());
    }

    #[test]
    fn counters_accumulate_and_share_handles() {
        let r = Registry::new();
        let c = r.counter("x");
        c.add(2);
        r.inc("x");
        assert_eq!(r.counter("x").get(), 3);
        assert_eq!(r.snapshot().counter("x"), Some(3));
        assert_eq!(r.snapshot().counter("missing"), None);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = Registry::new();
        r.set_gauge("g", 1.5);
        r.set_gauge("g", 2.5);
        assert_eq!(r.snapshot().gauge("g"), Some(2.5));
    }

    #[test]
    fn histograms_register_and_snapshot() {
        let r = Registry::new();
        r.observe("h", Duration::from_millis(2));
        let snap = r.snapshot();
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert!(snap.histogram("nope").is_none());
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let r = Registry::new();
        r.inc("z");
        r.inc("a");
        r.inc("m");
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
        assert_eq!(snap.counter("m"), Some(1));
    }

    #[test]
    fn prefix_query() {
        let r = Registry::new();
        r.add("crawl.probe.attempted", 4);
        r.add("crawl.spider.attempted", 2);
        r.inc("http.requests");
        let snap = r.snapshot();
        let crawl: Vec<_> = snap.counters_with_prefix("crawl.").collect();
        assert_eq!(crawl.len(), 2);
        assert_eq!(crawl.iter().map(|(_, v)| v).sum::<u64>(), 6);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let r = Registry::new();
        r.inc("c");
        r.set_gauge("g", 0.5);
        r.observe("h", Duration::from_micros(3));
        let j = r.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"counters\":{\"c\":1}"));
        assert!(j.contains("\"g\":0.5"));
        assert!(j.contains("\"histograms\":{\"h\":{"));
    }

    #[test]
    fn registry_clones_share_state() {
        let r = Registry::new();
        let r2 = r.clone();
        r2.inc("shared");
        assert_eq!(r.snapshot().counter("shared"), Some(1));
    }

    #[test]
    fn threaded_updates_are_all_counted() {
        let r = Registry::new();
        let c = r.counter("n");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
