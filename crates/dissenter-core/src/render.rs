//! Plain-text rendering of every table and figure — what the `repro`
//! harness prints. Each function renders one paper artifact from a
//! [`Study`].

use crate::Study;
use analysis::toxicity::Figure7Dataset;
use stats::EcdfSketch;
use std::fmt::Write;

const CDF_THRESHOLDS: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

fn cdf_row(name: &str, e: &EcdfSketch) -> String {
    let mut s = format!("{name:<22} n={:<8}", e.n());
    for t in CDF_THRESHOLDS {
        let _ = write!(s, " P(≥{t:.1})={:.3}", e.survival(t - 1e-12));
    }
    s
}

/// §4.1.1 / headline numbers.
pub fn overview(study: &Study) -> String {
    let o = &study.report.overview;
    let mut s = String::new();
    let _ = writeln!(s, "== Overview (scale factor {:.4}) ==", study.scale_factor);
    let _ = writeln!(s, "Gab accounts enumerated:      {}", o.gab_accounts);
    let _ = writeln!(
        s,
        "Dissenter users:              {} ({} ghosts with deleted Gab accounts)",
        o.dissenter_users, o.ghost_users
    );
    let _ = writeln!(
        s,
        "Active users (≥1 comment):    {} ({:.1}% of Dissenter users)",
        o.active_users,
        100.0 * o.active_users as f64 / o.dissenter_users.max(1) as f64
    );
    let _ = writeln!(s, "Comments + replies:           {}", o.comments);
    let _ = writeln!(s, "Distinct commented URLs:      {}", o.urls);
    let _ = writeln!(
        s,
        "Joined by March 2019:         {:.1}%  (paper: 77%)",
        100.0 * o.joined_by_march_2019
    );
    let _ = writeln!(
        s,
        "NSFW / offensive comments:    {} / {}  ({:.2}% / {:.2}%)",
        o.nsfw_comments,
        o.offensive_comments,
        100.0 * o.nsfw_comments as f64 / o.comments.max(1) as f64,
        100.0 * o.offensive_comments as f64 / o.comments.max(1) as f64
    );
    let _ = writeln!(
        s,
        "Shadow validation:            {}/{} confirmed",
        o.shadow_validation.1, o.shadow_validation.0
    );
    s
}

/// Figure 2.
pub fn fig2(study: &Study) -> String {
    let g = &study.report.gab_growth;
    let mut s = String::new();
    let _ = writeln!(s, "== Figure 2: Gab user IDs vs creation date ==");
    let _ = writeln!(s, "accounts: {}", g.series.len());
    let _ = writeln!(
        s,
        "monotone fraction: {:.4}  (IDs generally sequential; anomaly windows break strictness)",
        g.monotone_fraction
    );
    // Decile summary of the curve.
    if !g.series.is_empty() {
        for dec in 0..=10 {
            let idx = ((g.series.len() - 1) * dec) / 10;
            let (id, t) = g.series[idx];
            let _ = writeln!(s, "  id {:>10} created {}", id, ids::clock::format_date(t));
        }
    }
    s
}

/// Figure 3.
pub fn fig3(study: &Study) -> String {
    let a = &study.report.activity;
    let mut s = String::new();
    let _ = writeln!(s, "== Figure 3: comments per active user (CDF) ==");
    let _ = writeln!(s, "active users: {} of {}", a.active_users, a.total_users);
    let _ = writeln!(
        s,
        "90% of comments come from {:.1}% of active users  (paper: ~14%)",
        100.0 * a.user_fraction_for_90pct
    );
    for &(uf, cf) in a.curve.iter().step_by(10) {
        let _ = writeln!(s, "  top {:>5.1}% of users → {:>5.1}% of comments", 100.0 * uf, 100.0 * cf);
    }
    s
}

/// Table 1.
pub fn table1(study: &Study) -> String {
    let (n, rows) = &study.report.table1;
    let mut s = String::new();
    let _ = writeln!(s, "== Table 1: user flags & view filters (n={n}) ==");
    for r in rows {
        let _ = writeln!(s, "  {:<20} {:>8}  ({:.2}%)", r.name, r.count, r.percent);
    }
    s
}

/// Table 2.
pub fn table2(study: &Study) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Table 2: most frequently commented TLDs and domains ==");
    let _ = writeln!(s, "-- top-level domains --");
    for r in &study.report.tlds {
        let _ = writeln!(s, "  {:<18} {:>8}  ({:.2}%)", r.key, r.count, r.percent);
    }
    let _ = writeln!(s, "-- domains --");
    for r in &study.report.domains {
        let _ = writeln!(s, "  {:<18} {:>8}  ({:.2}%)", r.key, r.count, r.percent);
    }
    let _ = writeln!(s, "-- highest median comment volume per URL --");
    for (d, urls, median) in study.report.domain_medians.iter().take(6) {
        let _ = writeln!(s, "  {:<22} urls={:<6} median comments/url = {median:.1}", d, urls);
    }
    s
}

/// §4.2.1 URL anomalies.
pub fn urls(study: &Study) -> String {
    let c = &study.report.url_census;
    let mut s = String::new();
    let _ = writeln!(s, "== §4.2.1: URL anomaly census ==");
    let _ = writeln!(s, "total URLs: {}", c.total);
    for (scheme, n) in &c.by_scheme {
        let _ = writeln!(s, "  scheme {:<8} {:>8}  ({:.2}%)", scheme, n, 100.0 * *n as f64 / c.total.max(1) as f64);
    }
    let _ = writeln!(s, "protocol-duplicate pairs:   {}  (paper: ~400)", c.protocol_dup_pairs);
    let _ = writeln!(s, "trailing-slash pairs:       {}  (paper: ~60)", c.trailing_slash_pairs);
    let _ = writeln!(s, "multi-GET-parameter URLs:   {}", c.multi_param_urls);
    let _ = writeln!(s, "file:// URLs:               {}  (paper: 13)", c.file_urls);
    let _ = writeln!(s, "browser-internal URLs:      {}", c.browser_urls);
    s
}

/// §4.2.2 YouTube.
pub fn youtube(study: &Study) -> String {
    let y = &study.report.youtube;
    let mut s = String::new();
    let _ = writeln!(s, "== §4.2.2: YouTube content ==");
    let _ = writeln!(s, "YouTube URLs crawled: {}", y.total);
    for (k, n) in &y.by_kind {
        let _ = writeln!(s, "  kind {:<8} {:>8}", k, n);
    }
    let _ = writeln!(s, "active: {}   unavailable: {}", y.active, y.unavailable);
    for (r, n) in &y.reasons {
        let _ = writeln!(s, "  gone: {:<70} {:>6}", r, n);
    }
    let _ = writeln!(
        s,
        "comments disabled on YouTube: {} ({:.1}% of active; paper: >10%)",
        y.comments_disabled,
        100.0 * y.comments_disabled as f64 / y.active.max(1) as f64
    );
    for (o, n, pct) in y.top_owners.iter().take(6) {
        let _ = writeln!(s, "  owner {:<14} {:>6} videos ({pct:.1}% of active)", o, n);
    }
    s
}

/// §4.2.3 languages.
pub fn languages(study: &Study) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== §4.2.3: comment languages ==");
    for (lang, n, pct) in &study.report.languages {
        let _ = writeln!(s, "  {:<4} {:>9}  ({pct:.2}%)", lang.code(), n);
    }
    s
}

/// Figure 4.
pub fn fig4(study: &Study) -> String {
    let f = &study.report.figure4;
    let mut s = String::new();
    let _ = writeln!(s, "== Figure 4: NSFW / offensive / all comments (Perspective CDFs) ==");
    let _ = writeln!(s, "{}", cdf_row("LTR (all)", &f.all.likely_to_reject));
    let _ = writeln!(s, "{}", cdf_row("LTR (nsfw)", &f.nsfw.likely_to_reject));
    let _ = writeln!(s, "{}", cdf_row("LTR (offensive)", &f.offensive.likely_to_reject));
    let _ = writeln!(s, "{}", cdf_row("OBSCENE (all)", &f.all.obscene));
    let _ = writeln!(s, "{}", cdf_row("OBSCENE (nsfw)", &f.nsfw.obscene));
    let _ = writeln!(s, "{}", cdf_row("OBSCENE (offensive)", &f.offensive.obscene));
    let _ = writeln!(s, "{}", cdf_row("SEVERE (all)", &f.all.severe_toxicity));
    let _ = writeln!(s, "{}", cdf_row("SEVERE (nsfw)", &f.nsfw.severe_toxicity));
    let _ = writeln!(s, "{}", cdf_row("SEVERE (offensive)", &f.offensive.severe_toxicity));
    let _ = writeln!(
        s,
        "offensive comments with LTR > 0.95: {:.1}%  (paper: ~80%)",
        100.0 * f.offensive.likely_to_reject.survival(0.95)
    );
    let _ = writeln!(
        s,
        "nsfw comments with LTR > 0.95:      {:.1}%  (paper: ~25%)",
        100.0 * f.nsfw.likely_to_reject.survival(0.95)
    );
    let _ = writeln!(
        s,
        "all comments with LTR > 0.95:       {:.1}%  (paper: <20%)",
        100.0 * f.all.likely_to_reject.survival(0.95)
    );
    s
}

/// Figure 5.
pub fn fig5(study: &Study) -> String {
    let f = &study.report.figure5;
    let mut s = String::new();
    let _ = writeln!(s, "== Figure 5: SEVERE_TOXICITY vs net vote score ==");
    let _ = writeln!(
        s,
        "URLs: {} positive / {} zero / {} negative net votes; |net|<10 for {:.1}%",
        f.positive,
        f.zero,
        f.negative,
        100.0 * f.within_ten
    );
    let _ = writeln!(s, "mean severe toxicity | zero-vote URLs:      {:.3}", f.mean_severe_zero);
    let _ = writeln!(s, "mean severe toxicity | |net| ≥ 3:           {:.3}", f.mean_severe_voted);
    let _ = writeln!(s, "mean severe toxicity | negative-net URLs:   {:.3}", f.mean_severe_negative);
    let _ = writeln!(s, "mean severe toxicity | positive-net URLs:   {:.3}", f.mean_severe_positive);
    s
}

/// Figure 6 and Table 3.
pub fn fig6_table3(study: &Study) -> String {
    let r = &study.report.comment_ratio;
    let mut s = String::new();
    let _ = writeln!(s, "== Table 3: baseline datasets ==");
    for row in &study.report.table3 {
        let _ = writeln!(
            s,
            "  {:<12} declared={:<10} scored={:<9} dissenter-users={}",
            row.name,
            row.declared_comments,
            row.scored_comments,
            row.dissenter_users.map(|n| n.to_string()).unwrap_or_else(|| "n/a".into())
        );
    }
    let _ = writeln!(s, "== Figure 6: Dissenter/Reddit comment ratio ==");
    let _ = writeln!(
        s,
        "matched usernames: {} ({:.1}% of Dissenter users)",
        r.matched_usernames,
        100.0 * r.matched_usernames as f64 / study.report.overview.dissenter_users.max(1) as f64
    );
    let _ = writeln!(s, "active on ≥1 platform: {}", r.active_either);
    let _ = writeln!(s, "Dissenter-only: {:.1}%  (paper: >33%)", 100.0 * r.dissenter_only);
    let _ = writeln!(s, "Reddit-only:    {:.1}%  (paper: ~20%)", 100.0 * r.reddit_only);
    if !r.ratios.is_empty() {
        let e = EcdfSketch::of(&r.ratios);
        let _ = writeln!(s, "{}", cdf_row("d/(d+r) ratio CDF", &e));
    }
    s
}

/// Figure 7 (a, b, c).
pub fn fig7(study: &Study) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Figure 7: Perspective score CDFs across communities ==");
    let section = |s: &mut String, title: &str, pick: &dyn Fn(&Figure7Dataset) -> &EcdfSketch| {
        let _ = writeln!(s, "-- {title} --");
        for d in &study.report.figure7 {
            let _ = writeln!(s, "{}", cdf_row(&d.name, pick(d)));
        }
    };
    section(&mut s, "7a LIKELY_TO_REJECT", &|d| &d.likely_to_reject);
    section(&mut s, "7b SEVERE_TOXICITY", &|d| &d.severe_toxicity);
    section(&mut s, "7c ATTACK_ON_AUTHOR", &|d| &d.attack_on_author);
    s
}

/// Figure 8 (a, b).
pub fn fig8(study: &Study) -> String {
    let f = &study.report.figure8;
    let mut s = String::new();
    let _ = writeln!(s, "== Figure 8: Perspective scores by Allsides bias ==");
    let _ = writeln!(
        s,
        "comments on ranked URLs: {}   unranked: {}",
        f.ranked_comments, f.unranked_comments
    );
    let _ = writeln!(s, "-- 8a SEVERE_TOXICITY by bias --");
    for (b, d) in &f.severe_by_bias {
        let _ = writeln!(
            s,
            "  {:<13} n={:<9} mean={:.3} median={:.3}",
            b.label(),
            d.n(),
            d.mean(),
            d.median()
        );
    }
    let _ = writeln!(s, "-- 8b ATTACK_ON_AUTHOR by bias --");
    for (b, e) in &f.attack_by_bias {
        let _ = writeln!(s, "{}", cdf_row(b.label(), e));
    }
    let _ = writeln!(s, "-- pairwise KS on SEVERE_TOXICITY (ranked biases) --");
    for (a, b, ks) in &f.ks_severe {
        let _ = writeln!(
            s,
            "  {:<13} vs {:<13} D={:.4} p={:.2e} {}",
            a.label(),
            b.label(),
            ks.statistic,
            ks.p_value,
            if ks.significant_at(0.01) { "(significant)" } else { "" }
        );
    }
    s
}

/// Figure 9 and §4.5.1.
pub fn fig9_core(study: &Study) -> String {
    let so = &study.report.social;
    let mut s = String::new();
    let _ = writeln!(s, "== Figure 9 / §4.5: social network ==");
    let _ = writeln!(s, "users in network: {}   isolated: {}", so.users, so.isolated);
    if let Some(fit) = &so.in_fit {
        let _ = writeln!(s, "in-degree power law:  α={:.2} (tail n={})", fit.alpha, fit.n_tail);
    }
    if let Some(fit) = &so.out_fit {
        let _ = writeln!(s, "out-degree power law: α={:.2} (tail n={})", fit.alpha, fit.n_tail);
    }
    let _ = writeln!(s, "top follower counts:  {:?}", so.top_in_degrees);
    let _ = writeln!(s, "top following counts: {:?}", so.top_out_degrees);
    if let Some(rho) = so.degree_spearman {
        let _ = writeln!(
            s,
            "Spearman ρ(in-degree, out-degree) = {rho:.3}  (paper: 'following proportional to followers')"
        );
    }
    let _ = writeln!(
        s,
        "overlap(top-10 by followers, top-10 by comments): {}  (paper: 0)",
        so.popular_prolific_overlap
    );
    let _ = writeln!(s, "-- toxicity vs followers (log10 bins) --");
    for (bin, mean, median) in &so.toxicity_by_followers {
        let label = bin.map(|b| format!("10^{b}")).unwrap_or_else(|| "0".into());
        let _ = writeln!(s, "  followers {label:<6} mean={mean:.3} median={median:.3}");
    }
    let _ = writeln!(s, "-- hateful core --");
    let _ = writeln!(
        s,
        "core: {} users in {} components; giant component {}  (paper: 42 / 6 / 32)",
        so.core.size(),
        so.core.components.count(),
        so.core.components.giant()
    );
    s
}

/// §3.5.3 SVM.
pub fn svm(study: &Study) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== §3.5.3: SVM classifier ==");
    match &study.svm {
        None => {
            let _ = writeln!(s, "(skipped)");
        }
        Some(r) => {
            let _ = writeln!(s, "labeled corpus: {} samples (Davidson-shaped imbalance)", r.corpus_size);
            for (lambda, f1) in &r.grid {
                let _ = writeln!(s, "  λ={lambda:<9.0e} 5-fold weighted F1 = {f1:.3}");
            }
            let _ = writeln!(s, "best: λ={:.0e}, F1={:.3}  (paper: 0.87)", r.best_lambda, r.cv_f1);
            let _ = writeln!(
                s,
                "Dissenter mean class probabilities: hate={:.3} offensive={:.3} neither={:.3}",
                r.mean_class_probs[0], r.mean_class_probs[1], r.mean_class_probs[2]
            );
            let _ = writeln!(
                s,
                "Dissenter argmax shares:            hate={:.3} offensive={:.3} neither={:.3}",
                r.class_shares[0], r.class_shares[1], r.class_shares[2]
            );
        }
    }
    s
}

/// Run statistics: stage wall-clocks, crawl coverage, scorer throughput,
/// and per-service request latency.
pub fn runstats(study: &Study) -> String {
    let rs = &study.runstats;
    let mut s = String::new();
    let _ = writeln!(s, "== Run statistics ==");
    let _ = writeln!(s, "-- stage wall-clock --");
    for st in &rs.stages {
        let _ = writeln!(s, "  {:<10} {:>10.1} ms", st.name, st.wall_us as f64 / 1e3);
    }
    let _ = writeln!(s, "-- memory --");
    let _ = writeln!(s, "  peak RSS   {:>10.1} MiB", rs.peak_rss_bytes as f64 / (1u64 << 20) as f64);
    let _ = writeln!(s, "-- crawl coverage (attempted = succeeded + dead-lettered) --");
    for p in &rs.phases {
        let _ = writeln!(
            s,
            "  {:<10} attempted={:<8} succeeded={:<8} retried={:<6} dead-lettered={}",
            p.name, p.attempted, p.succeeded, p.retried, p.dead_lettered
        );
    }
    let _ = writeln!(s, "-- scorer throughput --");
    for sc in &rs.scorers {
        let _ = writeln!(
            s,
            "  {:<12} comments={:<9} {:>10.0} comments/sec",
            sc.name, sc.comments, sc.comments_per_sec
        );
    }
    let _ = writeln!(s, "-- sharded stages (jobs/items worker-invariant) --");
    for sh in &rs.shards {
        let _ = writeln!(
            s,
            "  {:<15} shards={:<6} items={:<9} busy={:>9.1} ms",
            sh.name,
            sh.jobs,
            sh.items,
            sh.busy_us as f64 / 1e3
        );
    }
    let _ = writeln!(s, "-- request latency by service --");
    for (name, h) in &rs.snapshot.histograms {
        let Some(service) = name.strip_prefix("http.").and_then(|n| n.strip_suffix(".latency"))
        else {
            continue;
        };
        let _ = writeln!(
            s,
            "  {:<10} n={:<8} mean={:>7.1}µs p50={:>7.1}µs p95={:>7.1}µs p99={:>7.1}µs max={:>8.1}µs",
            service,
            h.count,
            h.mean_ns() as f64 / 1e3,
            h.p50_ns as f64 / 1e3,
            h.p95_ns as f64 / 1e3,
            h.p99_ns as f64 / 1e3,
            h.max_ns as f64 / 1e3
        );
    }
    s
}

/// The seed-deterministic subset of [`runstats`]: crawl coverage,
/// scorer comment counts, and shard job/item accounting — everything
/// counter-derived, nothing wall-clock. Byte-identical across same-seed
/// runs at any worker count (shard geometry is worker-invariant), so it
/// can be pinned by the golden-file test alongside the report.
pub fn runstats_deterministic(study: &Study) -> String {
    let rs = &study.runstats;
    let mut s = String::new();
    let _ = writeln!(s, "== Run statistics (deterministic subset) ==");
    let _ = writeln!(s, "-- crawl coverage (attempted = succeeded + dead-lettered) --");
    for p in &rs.phases {
        let _ = writeln!(
            s,
            "  {:<10} attempted={:<8} succeeded={:<8} retried={:<6} dead-lettered={}",
            p.name, p.attempted, p.succeeded, p.retried, p.dead_lettered
        );
    }
    let _ = writeln!(s, "-- scorer volume --");
    for sc in &rs.scorers {
        let _ = writeln!(s, "  {:<12} comments={}", sc.name, sc.comments);
    }
    let _ = writeln!(s, "-- sharded stages --");
    for sh in &rs.shards {
        let _ = writeln!(s, "  {:<15} shards={:<6} items={}", sh.name, sh.jobs, sh.items);
    }
    s
}

/// §6 extension: covert-channel candidates.
pub fn covert(study: &Study) -> String {
    let candidates = analysis::covert::detect_covert_channels(
        &study.store,
        analysis::covert::CovertConfig::default(),
    );
    let mut s = String::new();
    let _ = writeln!(s, "== §6 extension: covert-channel candidates ==");
    let _ = writeln!(s, "flagged threads: {}", candidates.len());
    for c in candidates.iter().take(15) {
        let _ = writeln!(
            s,
            "  {:<50} comments={:<5} authors={:<3} replies={:.0}% signals={:?}",
            c.url,
            c.comments,
            c.authors,
            100.0 * c.reply_fraction,
            c.signals
        );
    }
    s
}

/// The longitudinal section: per-window growth and toxicity, crossover
/// timing, the scorer-revision timeline, and the drift verdict.
/// Deterministic — diagnostics (per-sweep 304s, wall-clocks) are
/// deliberately excluded so composed and one-shot artifacts compare
/// byte-for-byte under the sweep≡one-shot oracle.
pub fn longitudinal(ls: &crate::longitudinal::LongitudinalStudy) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Longitudinal: windowed study ==");
    let _ = writeln!(s, "windows: {}   epochs past base: {}", ls.windows.len(), ls.windows.len().saturating_sub(1));
    let _ = writeln!(s, "-- growth curve --");
    for g in &ls.growth {
        let _ = writeln!(
            s,
            "  w{:<3} {}  users={:<7} (+{:<5}) comments={:<8} (+{:<5}) urls={:<6} (+{})",
            g.window,
            g.until,
            g.total_users,
            g.new_users,
            g.total_comments,
            g.new_comments,
            g.total_urls,
            g.new_urls
        );
    }
    let _ = writeln!(s, "-- per-window toxicity --");
    for w in &ls.windows {
        let _ = writeln!(
            s,
            "  w{:<3} scorer=v{} comments={:<8} severe={:.4} reject={:.4} attack={:.4}",
            w.window, w.scorer_version, w.comments, w.mean_severe, w.mean_reject, w.mean_attack
        );
    }
    match ls.crossover {
        Some(w) => {
            let _ = writeln!(s, "severe-toxicity crossover: window {w}");
        }
        None => {
            let _ = writeln!(s, "severe-toxicity crossover: none");
        }
    }
    let _ = writeln!(s, "-- scorer drift --");
    if ls.drift.boundaries.is_empty() {
        let _ = writeln!(s, "  no version boundaries in study span");
    }
    for b in &ls.drift.boundaries {
        let _ = writeln!(
            s,
            "  w{:<3} v{} -> v{}  sample={} d_severe={:+.6} d_reject={:+.6} max|d|={:.6}  {}",
            b.window,
            b.from_version,
            b.to_version,
            b.calibration_n,
            b.mean_severe_delta,
            b.mean_reject_delta,
            b.max_abs_comment_delta,
            if b.flagged { "FLAGGED: conclusion-changing drift" } else { "within tolerance" }
        );
    }
    s
}

/// Every paper artifact, in paper order — the deterministic half of
/// [`full`]: byte-identical across same-seed runs at **any** worker
/// count (the determinism contract the worker-matrix and golden tests
/// enforce). Excludes only [`runstats`], which reports wall-clock.
pub fn deterministic(study: &Study) -> String {
    [
        overview(study),
        fig2(study),
        fig3(study),
        table1(study),
        table2(study),
        urls(study),
        youtube(study),
        languages(study),
        fig4(study),
        fig5(study),
        fig6_table3(study),
        fig7(study),
        fig8(study),
        fig9_core(study),
        svm(study),
        covert(study),
    ]
    .join("\n")
}

/// Everything, in paper order.
pub fn full(study: &Study) -> String {
    [deterministic(study), runstats(study)].join("\n")
}
