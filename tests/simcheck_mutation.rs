//! Mutation smoke: a deliberately injected accounting bug must be
//! caught by the simcheck oracles, shrink to a minimal scenario, and
//! reproduce deterministically from its replay file.
//!
//! The mutation lives behind the `SIMCHECK_MUTATE` environment variable
//! in the crawler's resilience layer: `skip_succeeded_counter` skips the
//! obs `crawl.<phase>.succeeded` increment while the store's own books
//! still count the delivery, so the obs ↔ store reconciliation oracle
//! must trip. The variable is read once per process (the crawl hot path
//! must not re-query the environment), which is why this test owns its
//! own integration-test binary and sets the variable before anything
//! crawls.

use dissenter_repro::simcheck::{check_scenario, replay, shrink, Scenario};
use dissenter_repro::simcheck::scenario::MIN_SCALE;

#[test]
fn injected_accounting_bug_is_caught_shrunk_and_replayed() {
    // Must happen before the first crawl in this process.
    std::env::set_var("SIMCHECK_MUTATE", "skip_succeeded_counter");

    // A small scenario; the shrinker should still find work to do.
    let sc = Scenario {
        scale: 0.001,
        workers: 2,
        crawl_workers: 1,
        svm: false,
        // Disarm the abuse family: it is irrelevant to this mutation and
        // would only add wall time to every shrink candidate.
        abuse_conns: 0,
        ..Scenario::from_seed(0x5EED)
    };

    // 1. Detection.
    let failure = check_scenario(&sc).expect_err("the mutated crawler must trip an oracle");
    assert_eq!(failure.check, "obs.reconcile", "caught by counter reconciliation: {failure}");
    assert!(failure.detail.contains("succeeded"), "{failure}");

    // 2. Shrinking preserves the failure and reaches the floor.
    let (min, min_failure) = shrink::shrink(sc, failure, |c| check_scenario(c).err());
    assert_eq!(min_failure.check, "obs.reconcile", "{min_failure}");
    assert_eq!(min.scale, MIN_SCALE, "scale shrinks to the floor");
    assert_eq!(min.workers, 1, "workers shrink to serial");

    // 3. The replay file round-trips and still reproduces the failure.
    let dir = std::env::temp_dir().join(format!("simcheck-mutation-{}", std::process::id()));
    let path = replay::write(&dir, &replay::Replay::new(min, &min_failure)).expect("replay writes");
    let loaded = replay::read(&path).expect("replay reads");
    let replayed = check_scenario(&loaded.scenario)
        .expect_err("the replayed scenario must reproduce the failure deterministically");
    assert_eq!(replayed.check, "obs.reconcile", "{replayed}");
    std::fs::remove_dir_all(&dir).ok();
}
