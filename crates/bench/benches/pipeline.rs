//! End-to-end pipeline benchmarks: one per experiment family. Each bench
//! regenerates a paper artifact from the shared cached study (E2, E4, E6,
//! E10, E12), plus whole-stage benches for world generation and analysis.

use bench::bench_study;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use synth::config::Scale;
use synth::WorldConfig;

fn bench_artifacts(c: &mut Criterion) {
    let study = bench_study();
    let store = &study.store;
    let mut g = c.benchmark_group("artifacts");
    g.sample_size(10);

    // E2 / Fig. 3.
    g.bench_function("fig3_activity_concentration", |b| {
        b.iter(|| black_box(analysis::users::activity_concentration(store)));
    });
    // E1 / Fig. 2.
    g.bench_function("fig2_gab_growth", |b| {
        b.iter(|| black_box(analysis::users::gab_growth(store)));
    });
    // E4 / Table 2.
    g.bench_function("table2_domain_tables", |b| {
        b.iter(|| {
            let urls: Vec<&str> = store.urls.values().map(|u| u.url.as_str()).collect();
            black_box((
                analysis::domains::tld_table(urls.iter().copied(), 12),
                analysis::domains::domain_table(urls.iter().copied(), 12),
            ))
        });
    });
    // E6 / §4.2.3.
    g.bench_function("languages_table", |b| {
        b.iter(|| black_box(analysis::content::language_table(store)));
    });
    // E10 / Fig. 7 scoring (the dominant analysis cost).
    g.bench_function("fig7_score_all_comments", |b| {
        b.iter(|| black_box(analysis::toxicity::score_store(store, 8)));
    });
    // E7 / Fig. 4 + E11 / Fig. 8 from cached scores.
    g.bench_function("fig4_fig8_aggregation", |b| {
        b.iter(|| {
            black_box((
                analysis::toxicity::figure4(store, &study.report.scores),
                analysis::toxicity::figure8(store, &study.report.scores),
            ))
        });
    });
    // E12 / Fig. 9.
    g.bench_function("fig9_social_analysis", |b| {
        b.iter(|| {
            black_box(analysis::social::analyze_social(
                store,
                &study.report.scores,
                graph::CoreCriteria::default(),
            ))
        });
    });
    g.finish();
}

fn bench_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("stages");
    g.sample_size(10);
    g.bench_function("world_generate_0_002", |b| {
        let cfg = WorldConfig { scale: Scale::Custom(0.002), ..WorldConfig::small() };
        b.iter(|| black_box(synth::generate(&cfg)));
    });
    g.bench_function("full_report_build", |b| {
        let study = bench_study();
        // Rebuild the report (scoring + all aggregations) from the crawl.
        b.iter(|| black_box(analysis::report::build_report(&study.store, &[], 8)));
    });
    g.finish();
}

criterion_group!(benches, bench_artifacts, bench_stages);
criterion_main!(benches);
