//! The blocking HTTP client the crawler drives.
//!
//! Supports per-request headers and cookies, read timeouts, optional
//! keep-alive, and simple retry with backoff — the operational behaviors
//! the paper's crawl needed (timeout monitoring + re-requests, §4.3.1;
//! rate-limit sleeps, §3.4).

use crate::cache::RevalidationCache;
use crate::cpool::ConnPool;
use crate::http::{read_response, write_request, Request, Response, Status, WireError};
use crate::retry::{classify_status, parse_retry_after, RetryPolicy, StatusClass};
use std::fmt;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect.
    Connect(std::io::Error),
    /// Failed mid-request/response (includes timeouts and drops).
    Wire(WireError),
    /// The server kept answering with a retryable error status until the
    /// retry budget ran out. The final response is preserved — callers can
    /// inspect the status (and any `Retry-After`) instead of a stand-in
    /// "server error" string.
    Http(Response),
}

impl ClientError {
    /// The status of the final response, when the failure was an HTTP
    /// error status rather than a transport fault.
    pub fn status(&self) -> Option<Status> {
        match self {
            ClientError::Http(r) => Some(r.status),
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Wire(e) => write!(f, "request failed: {e}"),
            ClientError::Http(r) => write!(f, "retries exhausted on status {}", r.status),
        }
    }
}

impl std::error::Error for ClientError {}

/// Metric handles for one instrumented client (see [`Client::instrument`]).
/// Counter values are a pure function of the seeded workload — latency
/// lives in the histogram, which is the only timing-dependent piece.
#[derive(Debug, Clone)]
struct Instrument {
    /// `http.<class>.requests` — wire attempts issued (one per logical
    /// call; a transparent keep-alive reconnect is not double-counted).
    requests: obs::Counter,
    /// `http.<class>.latency` — request→response wall-clock for
    /// delivered responses.
    latency: obs::Histogram,
    /// `http.<class>.wire_faults` — connect/transport failures observed
    /// (drops, resets, truncations, malformed replies, timeouts).
    wire_faults: obs::Counter,
    /// `http.<class>.status_5xx` — injected/real server errors observed.
    status_5xx: obs::Counter,
    /// `http.<class>.status_429` — throttling responses observed.
    status_429: obs::Counter,
    /// `http.<class>.retries` — extra attempts spent by
    /// [`Client::get_with_policy`].
    retries: obs::Counter,
    /// `http.<class>.retry_after_waits` — delays honored from an
    /// advertised `Retry-After` header.
    retry_after_waits: obs::Counter,
    /// `http.<class>.not_modified` — 304s answered from the
    /// revalidation cache (full representation served locally).
    not_modified: obs::Counter,
}

impl Instrument {
    fn new(registry: &obs::Registry, class: &str) -> Self {
        let name = |suffix: &str| format!("http.{class}.{suffix}");
        Self {
            requests: registry.counter(&name("requests")),
            latency: registry.histogram(&name("latency")),
            wire_faults: registry.counter(&name("wire_faults")),
            status_5xx: registry.counter(&name("status_5xx")),
            status_429: registry.counter(&name("status_429")),
            retries: registry.counter(&name("retries")),
            retry_after_waits: registry.counter(&name("retry_after_waits")),
            not_modified: registry.counter(&name("not_modified")),
        }
    }

    fn observe(&self, started: Instant, result: &Result<Response, ClientError>) {
        self.requests.inc();
        match result {
            Ok(r) => {
                self.latency.observe(started.elapsed());
                if r.status.0 >= 500 {
                    self.status_5xx.inc();
                } else if r.status.0 == 429 {
                    self.status_429.inc();
                }
            }
            Err(_) => self.wire_faults.inc(),
        }
    }
}

/// Chained-setter construction for [`Client`] — the one supported way
/// to configure a client. Obtained from [`Client::builder`].
///
/// ```
/// # let addr: std::net::SocketAddr = "127.0.0.1:9".parse().unwrap();
/// let registry = obs::Registry::new();
/// let client = httpnet::Client::builder(addr)
///     .timeout(std::time::Duration::from_secs(2))
///     .keep_alive(true)
///     .metrics(&registry, "gab")
///     .retry_policy(httpnet::RetryPolicy::default())
///     .revalidation_cache(httpnet::RevalidationCache::new(1024))
///     .build();
/// # drop(client);
/// ```
#[derive(Debug)]
#[must_use = "call .build() to obtain the Client"]
pub struct ClientBuilder {
    addr: SocketAddr,
    timeout: Duration,
    keep_alive: bool,
    cookies: Vec<(String, String)>,
    inst: Option<Instrument>,
    reval: Option<RevalidationCache>,
    policy: RetryPolicy,
    pool: Option<ConnPool>,
}

impl ClientBuilder {
    /// Set the connect/read timeout.
    pub fn timeout(mut self, t: Duration) -> Self {
        self.timeout = t;
        self
    }

    /// Enable or disable connection reuse.
    pub fn keep_alive(mut self, on: bool) -> Self {
        self.keep_alive = on;
        self
    }

    /// Attach a cookie to every request.
    pub fn cookie(mut self, name: &str, value: &str) -> Self {
        self.cookies.retain(|(n, _)| n != name);
        self.cookies.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Report request metrics into `registry` under the endpoint class
    /// `class` (see [`Client::instrument`] for the metric names).
    pub fn metrics(mut self, registry: &obs::Registry, class: &str) -> Self {
        self.inst = Some(Instrument::new(registry, class));
        self
    }

    /// Attach a client-side revalidation cache: stored ETags are sent as
    /// `If-None-Match`, and a `304 Not Modified` is transparently
    /// resolved to the cached full representation, so callers always see
    /// the complete response. Clone one cache across clients (and across
    /// sweeps) to share it.
    pub fn revalidation_cache(mut self, cache: RevalidationCache) -> Self {
        self.reval = Some(cache);
        self
    }

    /// The retry policy [`Client::get_retrying`] schedules with.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Share a keep-alive [`ConnPool`] with other clients. Without this
    /// the client gets a private pool with default knobs.
    pub fn pool(mut self, pool: ConnPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Finish construction.
    pub fn build(self) -> Client {
        Client {
            addr: self.addr,
            timeout: self.timeout,
            keep_alive: self.keep_alive,
            pool: self.pool.unwrap_or_default(),
            cookies: self.cookies,
            inst: self.inst,
            reval: self.reval,
            policy: self.policy,
        }
    }
}

/// A blocking HTTP/1.1 client bound to one server address.
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    keep_alive: bool,
    pool: ConnPool,
    /// Cookies sent with every request as `name=value` pairs.
    cookies: Vec<(String, String)>,
    inst: Option<Instrument>,
    reval: Option<RevalidationCache>,
    policy: RetryPolicy,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Client({})", self.addr)
    }
}

impl Client {
    /// Start building a client for `addr`. Defaults: 5-second timeout,
    /// no keep-alive, no cookies, no metrics, no revalidation cache,
    /// [`RetryPolicy::default`].
    pub fn builder(addr: SocketAddr) -> ClientBuilder {
        ClientBuilder {
            addr,
            timeout: Duration::from_secs(5),
            keep_alive: false,
            cookies: Vec::new(),
            inst: None,
            reval: None,
            policy: RetryPolicy::default(),
            pool: None,
        }
    }

    /// The keep-alive connection pool backing [`Client::get_keep_alive`].
    pub fn pool(&self) -> &ConnPool {
        &self.pool
    }

    /// Report request metrics into `registry` under the endpoint class
    /// `class` (e.g. the service name): per-request latency histogram
    /// `http.<class>.latency`, plus counters for attempts, wire faults,
    /// 5xx/429 statuses observed, retries, and honored `Retry-After`
    /// waits.
    pub fn instrument(&mut self, registry: &obs::Registry, class: &str) -> &mut Self {
        self.inst = Some(Instrument::new(registry, class));
        self
    }

    /// Set the read timeout.
    pub fn timeout(&mut self, t: Duration) -> &mut Self {
        self.timeout = t;
        self
    }

    /// Enable or disable connection reuse.
    pub fn keep_alive(&mut self, on: bool) -> &mut Self {
        self.keep_alive = on;
        self
    }

    /// Attach a cookie to all subsequent requests (e.g. the authenticated
    /// session cookie used for the NSFW/offensive re-spider, §3.2).
    pub fn set_cookie(&mut self, name: &str, value: &str) -> &mut Self {
        self.cookies.retain(|(n, _)| n != name);
        self.cookies.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Remove all cookies.
    pub fn clear_cookies(&mut self) -> &mut Self {
        self.cookies.clear();
        self
    }

    /// Attach (or replace) the revalidation cache after construction —
    /// the runtime counterpart of
    /// [`ClientBuilder::revalidation_cache`].
    pub fn set_revalidation_cache(&mut self, cache: RevalidationCache) -> &mut Self {
        self.reval = Some(cache);
        self
    }

    /// The cache-context key for `target`: cookie state is part of the
    /// key because the same target renders differently per session
    /// (shadow views must never resurrect into another session).
    fn reval_key(&self, target: &str) -> String {
        let mut key = String::new();
        for (n, v) in &self.cookies {
            key.push_str(n);
            key.push('=');
            key.push_str(v);
            key.push(';');
        }
        key.push('|');
        key.push_str(target);
        key
    }

    /// Build the (possibly conditional) GET for `target`, returning the
    /// revalidation context when a cache is attached: `(key, etag sent)`.
    fn prepare_get(&self, target: &str) -> (Request, Option<(String, bool)>) {
        let mut req = self.build(Request::get(target));
        let Some(rc) = &self.reval else { return (req, None) };
        let key = self.reval_key(target);
        let etag = rc.etag_for(&key);
        if let Some(etag) = &etag {
            req.headers.add("If-None-Match", etag);
        }
        let conditional = etag.is_some();
        (req, Some((key, conditional)))
    }

    /// Issue a GET. Requires `&mut self` only when keep-alive is on; this
    /// immutable variant always uses a fresh connection.
    pub fn get(&self, target: &str) -> Result<Response, ClientError> {
        let (req, ctx) = self.prepare_get(target);
        let started = Instant::now();
        let mut result = self.send_fresh(&req);
        if let (Some(rc), Some((key, conditional))) = (&self.reval, &ctx) {
            result = match result {
                Ok(r) if r.status == Status::NOT_MODIFIED && *conditional => {
                    match rc.take_revalidated(key) {
                        Some(full) => {
                            if let Some(inst) = &self.inst {
                                inst.not_modified.inc();
                            }
                            Ok(full)
                        }
                        // Entry evicted since the ETag was read: refetch
                        // unconditionally (still one logical request).
                        None => {
                            let plain = self.build(Request::get(target));
                            let refetched = self.send_fresh(&plain);
                            if let Ok(r2) = &refetched {
                                rc.store(key, r2);
                            }
                            refetched
                        }
                    }
                }
                Ok(r) => {
                    rc.store(key, &r);
                    Ok(r)
                }
                e => e,
            };
        }
        if let Some(inst) = &self.inst {
            inst.observe(started, &result);
        }
        result
    }

    /// Issue a GET over the persistent connection (establishing one on
    /// demand; transparently reconnecting once if the pooled connection
    /// died).
    pub fn get_keep_alive(&mut self, target: &str) -> Result<Response, ClientError> {
        if !self.keep_alive {
            return self.get(target);
        }
        let (req, ctx) = self.prepare_get(target);
        let started = Instant::now();
        // Counted as ONE wire attempt even when a stale pooled connection
        // forces a transparent resend — staleness depends on scheduling,
        // and counters must replay identically for identical seeds.
        let mut result = self.send_pooled(&req);
        if let Some((key, conditional)) = &ctx {
            let rc = self.reval.clone().expect("ctx implies cache");
            result = match result {
                Ok(r) if r.status == Status::NOT_MODIFIED && *conditional => {
                    match rc.take_revalidated(key) {
                        Some(full) => {
                            if let Some(inst) = &self.inst {
                                inst.not_modified.inc();
                            }
                            Ok(full)
                        }
                        None => {
                            let plain = self.build(Request::get(target));
                            let refetched = self.send_pooled(&plain);
                            if let Ok(r2) = &refetched {
                                rc.store(key, r2);
                            }
                            refetched
                        }
                    }
                }
                Ok(r) => {
                    rc.store(key, &r);
                    Ok(r)
                }
                e => e,
            };
        }
        if let Some(inst) = &self.inst {
            inst.observe(started, &result);
        }
        result
    }

    /// Send over the pool: check out a (possibly reused) connection,
    /// transparently retrying once on a fresh one if the exchange fails —
    /// a reused socket may have been closed server-side at any point.
    /// Only a successful exchange returns the connection to the pool.
    fn send_pooled(&mut self, req: &Request) -> Result<Response, ClientError> {
        let (conn, _reused) =
            self.pool.acquire(self.addr, self.timeout).map_err(ClientError::Connect)?;
        match self.send_on_conn(conn, req) {
            Ok(r) => Ok(r),
            Err(_) => {
                // Stale pooled connection (or transient failure): one
                // retry on a fresh connection, still ONE logical request.
                let fresh = self
                    .pool
                    .connect_fresh(self.addr, self.timeout)
                    .map_err(ClientError::Connect)?;
                self.send_on_conn(fresh, req)
            }
        }
    }

    /// Resilient GET scheduled by the retry policy configured at build
    /// time ([`ClientBuilder::retry_policy`]).
    pub fn get_retrying(&mut self, target: &str) -> Result<Response, ClientError> {
        let policy = self.policy;
        self.get_with_policy(target, &policy)
    }

    /// Resilient GET over the persistent connection: retries on transport
    /// errors *and* on retryable statuses (5xx, 429 — a fault-injected
    /// server error is as transient as a dropped connection). The §4.3.1
    /// re-request loop, scheduled by `policy`: exponential backoff with
    /// seeded jitter, `Retry-After` honoring, and a total-elapsed cap.
    ///
    /// On exhaustion the *last failure is preserved*: a transport fault
    /// comes back as [`ClientError::Wire`]/[`ClientError::Connect`], and a
    /// retryable status as [`ClientError::Http`] carrying the final
    /// response.
    pub fn get_with_policy(
        &mut self,
        target: &str,
        policy: &RetryPolicy,
    ) -> Result<Response, ClientError> {
        let started = Instant::now();
        let mut rng = policy.jitter_rng();
        let mut last_err: Option<ClientError> = None;
        for attempt in 0..=policy.max_retries {
            let delay = match self.get_keep_alive(target) {
                Ok(r) => match classify_status(r.status) {
                    StatusClass::Deliver => return Ok(r),
                    StatusClass::Retryable | StatusClass::Throttled => {
                        if let (Some(inst), Some(_)) = (&self.inst, parse_retry_after(&r)) {
                            inst.retry_after_waits.inc();
                        }
                        let d = policy.delay_for_response(&r, attempt, &mut rng);
                        last_err = Some(ClientError::Http(r));
                        d
                    }
                },
                Err(e) => {
                    last_err = Some(e);
                    policy.backoff(attempt, &mut rng)
                }
            };
            if attempt == policy.max_retries {
                break;
            }
            if started.elapsed() + delay > policy.max_elapsed {
                break; // budget spent: report the last failure
            }
            if let Some(inst) = &self.inst {
                inst.retries.inc();
            }
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        Err(last_err.expect("at least one attempt"))
    }

    /// [`Self::get_with_policy`] with the legacy `(retries, backoff)`
    /// shape: `backoff` seeds the exponential schedule.
    pub fn get_resilient(
        &mut self,
        target: &str,
        retries: usize,
        backoff: Duration,
    ) -> Result<Response, ClientError> {
        let policy = RetryPolicy {
            max_retries: retries,
            base_backoff: backoff,
            ..RetryPolicy::default()
        };
        self.get_with_policy(target, &policy)
    }

    /// GET with `retries` extra attempts and fixed `backoff` between them —
    /// the timeout-re-request loop of §4.3.1.
    pub fn get_with_retries(
        &self,
        target: &str,
        retries: usize,
        backoff: Duration,
    ) -> Result<Response, ClientError> {
        let mut last_err = None;
        for attempt in 0..=retries {
            match self.get(target) {
                Ok(r) => return Ok(r),
                Err(e) => {
                    last_err = Some(e);
                    if attempt < retries && !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
        Err(last_err.expect("at least one attempt"))
    }

    fn build(&self, mut req: Request) -> Request {
        req.headers.add("Host", "sim.local");
        if !self.cookies.is_empty() {
            let cookie = self
                .cookies
                .iter()
                .map(|(n, v)| format!("{n}={v}"))
                .collect::<Vec<_>>()
                .join("; ");
            req.headers.add("Cookie", &cookie);
        }
        if !self.keep_alive {
            req.headers.add("Connection", "close");
        }
        req
    }

    fn connect(&self) -> Result<TcpStream, ClientError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)
            .map_err(ClientError::Connect)?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(ClientError::Connect)?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    fn send_fresh(&self, req: &Request) -> Result<Response, ClientError> {
        let stream = self.connect()?;
        let mut write_half = stream.try_clone().map_err(ClientError::Connect)?;
        write_request(req, &mut write_half).map_err(|e| ClientError::Wire(WireError::Io(e)))?;
        let mut reader = BufReader::new(stream);
        read_response(&mut reader).map_err(ClientError::Wire)
    }

    /// One request/response exchange on `conn`. On success the connection
    /// is checked back into the pool; on failure it is dropped (its wire
    /// state is unknown).
    fn send_on_conn(
        &self,
        mut conn: BufReader<TcpStream>,
        req: &Request,
    ) -> Result<Response, ClientError> {
        conn.get_ref()
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| ClientError::Wire(WireError::Io(e)))?;
        {
            let stream = conn.get_mut();
            write_request(req, stream).map_err(|e| ClientError::Wire(WireError::Io(e)))?;
        }
        match read_response(&mut conn) {
            Ok(r) => {
                self.pool.release(self.addr, conn);
                Ok(r)
            }
            Err(e) => Err(ClientError::Wire(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Status;
    use crate::server::{Handler, Server, ServerConfig};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn cookie_header_is_sent() {
        let handler: Arc<dyn Handler> = Arc::new(|req: &Request| {
            let auth = req.cookie("session").unwrap_or("none").to_owned();
            Response::html(auth)
        });
        let server = Server::start(handler, ServerConfig::default()).unwrap();
        let mut client = Client::builder(server.addr()).build();
        assert_eq!(client.get("/").unwrap().text(), "none");
        client.set_cookie("session", "tok123");
        assert_eq!(client.get("/").unwrap().text(), "tok123");
        client.clear_cookies();
        assert_eq!(client.get("/").unwrap().text(), "none");
    }

    #[test]
    fn retries_eventually_succeed_against_flaky_server() {
        // Server drops the first 2 of every 3 requests.
        let counter = Arc::new(AtomicU32::new(0));
        let c2 = counter.clone();
        let handler: Arc<dyn Handler> = Arc::new(move |_: &Request| {
            c2.fetch_add(1, Ordering::SeqCst);
            Response::html("ok".into())
        });
        let cfg = ServerConfig {
            faults: crate::fault::FaultConfig { drop_prob: 0.66, seed: 3, ..Default::default() },
            ..Default::default()
        };
        let server = Server::start(handler, cfg).unwrap();
        let client = Client::builder(server.addr()).build();
        let resp = client
            .get_with_retries("/x", 20, Duration::ZERO)
            .expect("retries should eventually land");
        assert_eq!(resp.status, Status::OK);
    }

    #[test]
    fn exhausted_retries_preserve_the_5xx_response() {
        // Regression: the old loop discarded the 5xx response and
        // reported a fabricated Malformed("server error") wire error.
        let handler: Arc<dyn Handler> = Arc::new(|_: &Request| Response::html("x".into()));
        let cfg = ServerConfig {
            faults: crate::fault::FaultConfig { error_prob: 1.0, seed: 1, ..Default::default() },
            ..Default::default()
        };
        let server = Server::start(handler, cfg).unwrap();
        let mut client = Client::builder(server.addr()).build();
        match client.get_resilient("/x", 2, Duration::ZERO) {
            Err(ClientError::Http(r)) => assert_eq!(r.status, Status::INTERNAL),
            other => panic!("expected Http(500), got {other:?}"),
        }
    }

    #[test]
    fn policy_retries_ride_out_a_flaky_5xx_server() {
        // 500 on the first two requests, then healthy.
        let counter = Arc::new(AtomicU32::new(0));
        let c2 = counter.clone();
        let handler: Arc<dyn Handler> = Arc::new(move |_: &Request| {
            if c2.fetch_add(1, Ordering::SeqCst) < 2 {
                Response::status(Status::INTERNAL)
            } else {
                Response::html("recovered".into())
            }
        });
        let server = Server::start(handler, ServerConfig::default()).unwrap();
        let mut client = Client::builder(server.addr()).build();
        let policy = crate::retry::RetryPolicy::immediate(3);
        let resp = client.get_with_policy("/x", &policy).expect("third attempt lands");
        assert_eq!(resp.text(), "recovered");
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn throttled_responses_honor_retry_after() {
        // One 429 advertising a 60 ms pause, then healthy: the policy must
        // wait at least that long before the retry that succeeds.
        let counter = Arc::new(AtomicU32::new(0));
        let c2 = counter.clone();
        let handler: Arc<dyn Handler> = Arc::new(move |_: &Request| {
            if c2.fetch_add(1, Ordering::SeqCst) == 0 {
                let mut r = Response::status(Status::TOO_MANY);
                r.headers.add("Retry-After", "0.06");
                r
            } else {
                Response::html("ok".into())
            }
        });
        let server = Server::start(handler, ServerConfig::default()).unwrap();
        let mut client = Client::builder(server.addr()).build();
        let policy = crate::retry::RetryPolicy {
            base_backoff: Duration::ZERO,
            jitter: 0.0,
            ..Default::default()
        };
        let started = std::time::Instant::now();
        let resp = client.get_with_policy("/x", &policy).expect("retry lands");
        assert_eq!(resp.text(), "ok");
        assert!(
            started.elapsed() >= Duration::from_millis(55),
            "must have slept the advertised Retry-After, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn max_elapsed_cap_stops_retrying() {
        let handler: Arc<dyn Handler> =
            Arc::new(|_: &Request| Response::status(Status::INTERNAL));
        let server = Server::start(handler, ServerConfig::default()).unwrap();
        let mut client = Client::builder(server.addr()).build();
        let policy = crate::retry::RetryPolicy {
            max_retries: 1_000,
            base_backoff: Duration::from_millis(40),
            multiplier: 1.0,
            jitter: 0.0,
            max_elapsed: Duration::from_millis(120),
            ..Default::default()
        };
        let started = std::time::Instant::now();
        let err = client.get_with_policy("/x", &policy).unwrap_err();
        assert_eq!(err.status(), Some(Status::INTERNAL));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the elapsed cap must cut 1000 retries short"
        );
    }

    #[test]
    fn four_oh_four_is_delivered_not_retried() {
        // The §3.1 probe *reads* 404s; retrying them would be both wrong
        // and slow.
        let counter = Arc::new(AtomicU32::new(0));
        let c2 = counter.clone();
        let handler: Arc<dyn Handler> = Arc::new(move |_: &Request| {
            c2.fetch_add(1, Ordering::SeqCst);
            Response::not_found()
        });
        let server = Server::start(handler, ServerConfig::default()).unwrap();
        let mut client = Client::builder(server.addr()).build();
        let resp = client
            .get_with_policy("/missing", &crate::retry::RetryPolicy::immediate(5))
            .expect("404 is a delivered response");
        assert_eq!(resp.status, Status::NOT_FOUND);
        assert_eq!(counter.load(Ordering::SeqCst), 1, "exactly one attempt");
    }

    #[test]
    fn connect_error_reported() {
        // Port 1 on localhost is almost certainly closed.
        let client = Client::builder("127.0.0.1:1".parse().unwrap()).build();
        match client.get("/") {
            Err(ClientError::Connect(_)) => {}
            other => panic!("expected connect error, got {other:?}"),
        }
    }

    #[test]
    fn keep_alive_reconnects_after_server_side_close() {
        let handler: Arc<dyn Handler> =
            Arc::new(|_: &Request| Response::html("pong".into()));
        let cfg = ServerConfig { max_requests_per_conn: 1, ..Default::default() };
        let server = Server::start(handler, cfg).unwrap();
        let mut client = Client::builder(server.addr()).build();
        client.keep_alive(true);
        // Server closes after every request; client must transparently
        // reconnect.
        for _ in 0..3 {
            assert_eq!(client.get_keep_alive("/p").unwrap().text(), "pong");
        }
    }

    #[test]
    fn instrumented_client_counts_requests_and_latency() {
        let handler: Arc<dyn Handler> = Arc::new(|_: &Request| Response::html("ok".into()));
        let server = Server::start(handler, ServerConfig::default()).unwrap();
        let registry = obs::Registry::new();
        let mut client = Client::builder(server.addr()).build();
        client.instrument(&registry, "gab");
        for _ in 0..5 {
            client.get("/x").unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("http.gab.requests"), Some(5));
        assert_eq!(snap.counter("http.gab.wire_faults"), Some(0));
        let hist = snap.histogram("http.gab.latency").expect("latency histogram");
        assert_eq!(hist.count, 5);
        assert!(hist.sum_ns > 0, "loopback round-trips take nonzero time");
    }

    #[test]
    fn instrumented_retries_and_retry_after_are_counted() {
        // First response: 429 with Retry-After. Second: 500. Third: ok.
        // Expect requests=3, retries=2, retry_after_waits=1, status_429=1,
        // status_5xx=1 — all seed-independent facts of the exchange.
        let counter = Arc::new(AtomicU32::new(0));
        let c2 = counter.clone();
        let handler: Arc<dyn Handler> = Arc::new(move |_: &Request| {
            match c2.fetch_add(1, Ordering::SeqCst) {
                0 => {
                    let mut r = Response::status(Status::TOO_MANY);
                    r.headers.add("Retry-After", "0.01");
                    r
                }
                1 => Response::status(Status::INTERNAL),
                _ => Response::html("ok".into()),
            }
        });
        let server = Server::start(handler, ServerConfig::default()).unwrap();
        let registry = obs::Registry::new();
        let mut client = Client::builder(server.addr()).build();
        client.instrument(&registry, "api");
        let policy = crate::retry::RetryPolicy {
            base_backoff: Duration::ZERO,
            jitter: 0.0,
            ..Default::default()
        };
        assert_eq!(client.get_with_policy("/x", &policy).unwrap().text(), "ok");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("http.api.requests"), Some(3));
        assert_eq!(snap.counter("http.api.retries"), Some(2));
        assert_eq!(snap.counter("http.api.retry_after_waits"), Some(1));
        assert_eq!(snap.counter("http.api.status_429"), Some(1));
        assert_eq!(snap.counter("http.api.status_5xx"), Some(1));
    }

    /// A conditional server: tags every 200 with a fixed ETag and
    /// answers 304 to a matching If-None-Match. Returns the handler and
    /// a counter of full (non-304) renders.
    fn conditional_server() -> (Server, Arc<AtomicU32>) {
        let renders = Arc::new(AtomicU32::new(0));
        let r2 = renders.clone();
        let etag = crate::http::format_etag(0xabcd);
        let handler: Arc<dyn Handler> = Arc::new(move |req: &Request| {
            if let Some(inm) = req.headers.get("if-none-match") {
                if crate::http::if_none_match(inm, &etag) {
                    let mut h = crate::http::Headers::new();
                    h.add("ETag", &etag);
                    return Response::not_modified(h);
                }
            }
            r2.fetch_add(1, Ordering::SeqCst);
            let mut resp = Response::html(format!("full body for {}", req.path()));
            resp.headers.add("ETag", &etag);
            resp
        });
        (Server::start(handler, ServerConfig::default()).unwrap(), renders)
    }

    #[test]
    fn revalidation_cache_turns_304_into_the_full_response() {
        let (server, renders) = conditional_server();
        let registry = obs::Registry::new();
        let cache = RevalidationCache::new(64);
        let mut client = Client::builder(server.addr())
            .keep_alive(true)
            .metrics(&registry, "cond")
            .revalidation_cache(cache.clone())
            .build();
        let first = client.get_keep_alive("/page").unwrap();
        let second = client.get_keep_alive("/page").unwrap();
        // The caller sees identical full 200s both times…
        assert_eq!(first.status, Status::OK);
        assert_eq!(second.status, Status::OK);
        assert_eq!(first.text(), second.text());
        // …but the server only rendered once.
        assert_eq!(renders.load(Ordering::SeqCst), 1);
        assert_eq!(cache.stats().revalidated, 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("http.cond.not_modified"), Some(1));
        assert_eq!(snap.counter("http.cond.requests"), Some(2));
    }

    #[test]
    fn revalidation_is_scoped_by_cookie_context() {
        // Same target, different session cookie: the second session must
        // NOT revalidate against the first session's entry.
        let (server, renders) = conditional_server();
        let cache = RevalidationCache::new(64);
        let mut client =
            Client::builder(server.addr()).revalidation_cache(cache.clone()).build();
        client.set_cookie("session", "a");
        client.get("/page").unwrap();
        client.set_cookie("session", "b");
        client.get("/page").unwrap();
        assert_eq!(renders.load(Ordering::SeqCst), 2, "one full render per session");
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn evicted_entry_forces_transparent_unconditional_refetch() {
        let (server, renders) = conditional_server();
        let cache = RevalidationCache::new(1);
        let client = Client::builder(server.addr()).revalidation_cache(cache.clone()).build();
        client.get("/a").unwrap();
        client.get("/b").unwrap(); // evicts /a (capacity 1)
        let again = client.get("/a").unwrap();
        assert_eq!(again.status, Status::OK);
        assert!(again.text().contains("/a"), "full body delivered after eviction");
        assert_eq!(renders.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn pooled_keep_alive_reconciles_with_server_requests_served() {
        // Lifecycle satellite: every logical request rides exactly one
        // pooled checkout, so open + reuse == server.requests_served.
        let handler: Arc<dyn Handler> = Arc::new(|_: &Request| Response::html("pong".into()));
        let server = Server::start(handler, ServerConfig::default()).unwrap();
        let mut client = Client::builder(server.addr()).keep_alive(true).build();
        for _ in 0..10 {
            assert_eq!(client.get_keep_alive("/p").unwrap().text(), "pong");
        }
        let stats = client.pool().stats();
        assert_eq!(stats.open, 1, "one connect for the whole run");
        assert_eq!(stats.reuse, 9);
        assert_eq!(stats.open + stats.reuse, server.requests_served());
    }

    #[test]
    fn shared_pool_reuses_across_client_instances() {
        let handler: Arc<dyn Handler> = Arc::new(|_: &Request| Response::html("pong".into()));
        let server = Server::start(handler, ServerConfig::default()).unwrap();
        let pool = crate::cpool::ConnPool::new(crate::cpool::PoolConfig::default());
        for _ in 0..3 {
            // A fresh Client per sweep, as the crawler builds them.
            let mut client =
                Client::builder(server.addr()).keep_alive(true).pool(pool.clone()).build();
            assert_eq!(client.get_keep_alive("/p").unwrap().text(), "pong");
        }
        let stats = pool.stats();
        assert_eq!(stats.open, 1, "later clients reuse the first client's connection");
        assert_eq!(stats.reuse, 2);
    }

    #[test]
    fn pool_idle_timeout_evicts_between_requests() {
        let handler: Arc<dyn Handler> = Arc::new(|_: &Request| Response::html("pong".into()));
        let server = Server::start(handler, ServerConfig::default()).unwrap();
        let pool = crate::cpool::ConnPool::new(crate::cpool::PoolConfig {
            idle_timeout: Duration::from_millis(20),
            ..Default::default()
        });
        let mut client =
            Client::builder(server.addr()).keep_alive(true).pool(pool.clone()).build();
        client.get_keep_alive("/p").unwrap();
        std::thread::sleep(Duration::from_millis(60));
        client.get_keep_alive("/p").unwrap();
        let stats = pool.stats();
        assert_eq!(stats.evicted, 1, "cold connection evicted, not reused");
        assert_eq!(stats.open, 2);
        assert_eq!(stats.reuse, 0);
    }

    #[test]
    fn transparent_retry_reconciles_pool_and_server_counters() {
        // Server closes after every request, so each logical request
        // after the first burns one stale reuse and opens one fresh
        // connection — yet requests/served counters see one request each.
        let handler: Arc<dyn Handler> = Arc::new(|_: &Request| Response::html("pong".into()));
        let cfg = ServerConfig { max_requests_per_conn: 1, ..Default::default() };
        let server = Server::start(handler, cfg).unwrap();
        let registry = obs::Registry::new();
        let mut client = Client::builder(server.addr())
            .keep_alive(true)
            .metrics(&registry, "ka")
            .build();
        for _ in 0..4 {
            assert_eq!(client.get_keep_alive("/p").unwrap().text(), "pong");
        }
        let stats = client.pool().stats();
        assert_eq!(stats.open, 4, "every logical request ends on a fresh connection");
        assert_eq!(stats.reuse, 3, "stale checkouts before each transparent retry");
        assert_eq!(server.requests_served(), 4, "server saw exactly the logical requests");
        assert_eq!(registry.snapshot().counter("http.ka.requests"), Some(4));
    }

    #[test]
    fn keep_alive_reconnect_counts_one_logical_request() {
        // The transparent stale-connection resend must NOT double-count:
        // counters are part of the deterministic replay surface and
        // connection staleness depends on scheduling.
        let handler: Arc<dyn Handler> = Arc::new(|_: &Request| Response::html("pong".into()));
        let cfg = ServerConfig { max_requests_per_conn: 1, ..Default::default() };
        let server = Server::start(handler, cfg).unwrap();
        let registry = obs::Registry::new();
        let mut client = Client::builder(server.addr()).build();
        client.keep_alive(true);
        client.instrument(&registry, "ka");
        for _ in 0..4 {
            assert_eq!(client.get_keep_alive("/p").unwrap().text(), "pong");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("http.ka.requests"), Some(4));
        assert_eq!(snap.histogram("http.ka.latency").unwrap().count, 4);
    }
}
