//! Longitudinal sweep bench: run the same evolving-world study both
//! ways — composed incremental sweeps vs a one-shot retrospective
//! crawl — and emit the comparison as `BENCH_PR9.json` (produced in CI
//! by `scripts/bench_pr9.sh`).
//!
//! ```text
//! sweepbench [--out FILE] [--epochs N] [--drift <f64>] [--scale <f64>]
//!            [--seed N] [--workers N]
//! ```
//!
//! Self-validating gates (exit 1 on any failure):
//! * **oracle** — every artifact (render, longitudinal section, the
//!   three windowed CSVs, figure CSVs, persisted JSONL mirror) is
//!   byte-identical between the composed and one-shot runs. Unlike the
//!   simcheck family this is checked at *nonzero* drift: both modes
//!   apply the same declared revision timeline, so the equality must
//!   hold regardless.
//! * **amortization** — every *incremental* sweep (all but the base)
//!   finishes within 1.5× the one-shot crawl's wall-clock (plus a
//!   250 ms jitter floor), even though it re-covers a strictly larger
//!   world than any sweep before it: validator reuse plus the
//!   enumeration hint must keep a re-sweep at parity with a cold crawl
//!   (measured ~0.9×, where a hint-free re-sweep lands well above 1×).
//!   The composed *total* necessarily contains `epochs + 1`
//!   full-coverage crawls and is reported (`crawl_ratio`) rather than
//!   gated.
//! * **revalidation reuse** — every post-base sweep answers more
//!   requests with `304 Not Modified` than the base sweep did and at
//!   least a quarter of its requests from cache; the per-sweep
//!   304-served fraction is reported.
//! * **drift detection** — at the configured nonzero drift the report
//!   carries exactly one version boundary, rescored on a nonempty
//!   calibration sample, with a nonzero max per-comment delta and the
//!   boundary flagged as conclusion-threatening.

use dissenter_core::longitudinal::{
    artifacts, run_composed, run_one_shot, LongitudinalConfig,
};
use std::time::Instant;
use synth::config::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: sweepbench [--out FILE] [--epochs N] [--drift <f64>] [--scale <f64>] \
         [--seed N] [--workers N]"
    );
    std::process::exit(2);
}

trait ParseOk {
    fn parse_ok<T: std::str::FromStr>(&self, name: &str) -> T;
}

impl ParseOk for String {
    fn parse_ok<T: std::str::FromStr>(&self, name: &str) -> T {
        self.parse().unwrap_or_else(|_| {
            eprintln!("sweepbench: invalid value {self:?} for {name}");
            usage()
        })
    }
}

fn main() {
    let mut out_path = std::path::PathBuf::from("BENCH_PR9.json");
    let mut epochs: u32 = 2;
    let mut drift: f64 = 0.25;
    let mut scale: f64 = 0.003;
    let mut seed: u64 = 0x10_6601;
    let mut workers: usize = 8;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| args.next().unwrap_or_else(|| usage()).parse_ok::<String>(name);
        match arg.as_str() {
            "--out" => out_path = val("--out").into(),
            "--epochs" => epochs = val("--epochs").parse_ok("--epochs"),
            "--drift" => drift = val("--drift").parse_ok("--drift"),
            "--scale" => scale = val("--scale").parse_ok("--scale"),
            "--seed" => seed = val("--seed").parse_ok("--seed"),
            "--workers" => workers = val("--workers").parse_ok("--workers"),
            _ => usage(),
        }
    }
    assert!(epochs >= 1, "sweepbench needs at least one epoch of evolution");
    assert!(drift > 0.0, "sweepbench gates on drift detection; pass --drift > 0");

    let study = dissenter_core::Study::builder()
        .seed(seed)
        .scale(Scale::Custom(scale))
        .workers(workers)
        .svm(false)
        .build()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    let cfg = LongitudinalConfig {
        study,
        epochs,
        drift,
        drift_seed: seed,
        calibration: 256,
        durable_root: None,
        kill_sweep: None,
    };

    eprintln!("sweepbench: one-shot crawl of the final epoch state ...");
    let t0 = Instant::now();
    let one_shot = run_one_shot(&cfg);
    let one_shot_total = t0.elapsed();
    let one_shot_crawl_ms = one_shot.sweep_wall[0].as_secs_f64() * 1e3;

    eprintln!("sweepbench: composed run, {} sweeps ...", epochs + 1);
    let t1 = Instant::now();
    let composed = run_composed(&cfg);
    let composed_total = t1.elapsed();
    let composed_crawl_ms: f64 =
        composed.sweep_wall.iter().map(|w| w.as_secs_f64() * 1e3).sum();

    // Gate 1: the differential oracle, at nonzero drift.
    let a = artifacts(&composed);
    let b = artifacts(&one_shot);
    assert_eq!(
        a.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        b.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        "artifact sets differ"
    );
    let mut bytes_compared = 0usize;
    for ((name, left), (_, right)) in a.iter().zip(&b) {
        assert!(left == right, "artifact {name} differs between composed and one-shot");
        bytes_compared += left.len();
    }

    let boundaries = &composed.drift.boundaries;
    let boundary = boundaries.first().expect("the schedule guarantees one version boundary");

    let sweeps: Vec<jsonlite::Value> = composed
        .sweep_wall
        .iter()
        .zip(&composed.sweep_not_modified)
        .zip(&composed.sweep_requests)
        .enumerate()
        .map(|(i, ((wall, &nm), &req))| {
            jsonlite::Value::object()
                .with("sweep", i as i64)
                .with("wall_ms", wall.as_secs_f64() * 1e3)
                .with("not_modified", nm as f64)
                .with("requests", req as f64)
                .with("not_modified_fraction", if req > 0 { nm as f64 / req as f64 } else { 0.0 })
                .with("ratio_to_one_shot", wall.as_secs_f64() * 1e3 / one_shot_crawl_ms.max(1e-9))
        })
        .collect();
    let report = jsonlite::Value::object()
        .with(
            "config",
            jsonlite::Value::object()
                .with("epochs", epochs as i64)
                .with("drift", drift)
                .with("scale", scale)
                .with("seed", format!("{seed:#x}"))
                .with("workers", workers as i64),
        )
        .with(
            "one_shot",
            jsonlite::Value::object()
                .with("crawl_wall_ms", one_shot_crawl_ms)
                .with("total_wall_ms", one_shot_total.as_secs_f64() * 1e3)
                .with("requests", one_shot.sweep_requests[0] as f64),
        )
        .with(
            "composed",
            jsonlite::Value::object()
                .with("sweeps", jsonlite::Value::Array(sweeps))
                .with("crawl_wall_ms", composed_crawl_ms)
                .with("total_wall_ms", composed_total.as_secs_f64() * 1e3)
                .with("crawl_ratio", composed_crawl_ms / one_shot_crawl_ms.max(1e-9))
                .with("sweep_gate_ratio", 1.5),
        )
        .with(
            "oracle",
            jsonlite::Value::object()
                .with("artifacts", a.len() as i64)
                .with("bytes_compared", bytes_compared as i64)
                .with("equal", true),
        )
        .with(
            "drift",
            jsonlite::Value::object()
                .with("boundaries", boundaries.len() as i64)
                .with("window", boundary.window as i64)
                .with("calibration_n", boundary.calibration_n as i64)
                .with("mean_severe_delta", boundary.mean_severe_delta)
                .with("mean_reject_delta", boundary.mean_reject_delta)
                .with("max_abs_comment_delta", boundary.max_abs_comment_delta)
                .with("flagged", boundary.flagged),
        );
    std::fs::write(&out_path, jsonlite::to_string_pretty(&report))
        .expect("write bench report");

    // Gate 2: amortization, per incremental sweep.
    let wall_gate_ms = one_shot_crawl_ms * 1.5 + 250.0;
    for (i, wall) in composed.sweep_wall.iter().enumerate().skip(1) {
        let wall_ms = wall.as_secs_f64() * 1e3;
        assert!(
            wall_ms <= wall_gate_ms,
            "incremental sweep {i} took {wall_ms:.0} ms, over gate {wall_gate_ms:.0} ms \
             (one-shot {one_shot_crawl_ms:.0} ms)"
        );
    }

    // Gate 3: revalidation reuse.
    let base_304 = composed.sweep_not_modified[0];
    for (i, (&nm, &req)) in
        composed.sweep_not_modified.iter().zip(&composed.sweep_requests).enumerate().skip(1)
    {
        assert!(
            nm > base_304,
            "sweep {i} answered {nm} 304s, not more than the base sweep's {base_304}"
        );
        let fraction = nm as f64 / (req as f64).max(1.0);
        assert!(
            fraction >= 0.25,
            "sweep {i} served only {:.1}% of its {req} requests as 304s",
            fraction * 100.0
        );
    }

    // Gate 4: drift detection.
    assert_eq!(boundaries.len(), 1, "expected exactly one version boundary");
    assert!(boundary.calibration_n > 0, "empty calibration sample");
    assert!(boundary.max_abs_comment_delta > 0.0, "drift moved no calibration comment");
    assert!(boundary.flagged, "drift {drift} was not flagged as conclusion-threatening");

    let sweep_ratios: Vec<String> = composed
        .sweep_wall
        .iter()
        .skip(1)
        .map(|w| format!("{:.2}x", w.as_secs_f64() * 1e3 / one_shot_crawl_ms.max(1e-9)))
        .collect();
    eprintln!(
        "sweepbench: OK — incremental sweeps at [{}] of the one-shot crawl \
         ({one_shot_crawl_ms:.0} ms; composed total {composed_crawl_ms:.0} ms over {} sweeps), \
         {} artifacts equal ({bytes_compared} bytes), drift flagged (max |delta| {:.4}); wrote {}",
        sweep_ratios.join(", "),
        epochs + 1,
        a.len(),
        boundary.max_abs_comment_delta,
        out_path.display()
    );
}
